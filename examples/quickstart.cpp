// Quickstart: the smallest end-to-end use of the fallsense public API.
//
//   1. synthesize a small labeled IMU dataset (two profiles, aligned+merged)
//   2. train the paper's lightweight CNN subject-independently
//   3. score held-out subjects and print segment-level metrics
//
// Runs in well under a minute at tiny scale.
#include <cstdio>

#include "core/experiment.hpp"
#include "util/env.hpp"

int main() {
    using namespace fallsense;

    const std::uint64_t seed = util::env_seed();
    core::experiment_scale scale = core::scale_preset(util::run_scale::tiny);
    scale.max_epochs = 8;

    std::printf("fallsense quickstart — pre-impact fall detection\n");
    std::printf("generating synthetic KFall-like + self-collected datasets...\n");
    const data::dataset merged = core::make_merged_dataset(scale, seed);
    std::printf("  %zu trials from %zu subjects (%zu fall trials)\n",
                merged.trial_count(), merged.subject_ids().size(),
                merged.fall_trial_count());

    std::printf("training the proposed CNN (400 ms windows, 50%% overlap, "
                "150 ms pre-impact truncation)...\n");
    const core::windowing_config windows = core::standard_windowing(400.0);
    const core::cross_validation_result cv = core::run_cross_validation(
        core::model_kind::cnn, merged, windows, scale, seed);

    std::printf("held-out segment-level results: %s\n",
                eval::to_string(cv.pooled).c_str());

    const eval::event_counts events = eval::count_events(cv.all_records);
    std::printf("event level: %zu/%zu falls detected, %zu/%zu ADLs false-alarmed\n",
                events.falls_detected, events.falls_total, events.adl_false_alarms,
                events.adl_total);
    std::printf("done. see examples/train_and_quantize.cpp for deployment.\n");
    return 0;
}
