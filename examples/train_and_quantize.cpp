// Train → save → reload → quantize → compare: the model-lifecycle example.
//
//   1. train the CNN on synthetic data
//   2. save float weights to disk and reload them into a fresh network
//   3. post-training int8 quantization with calibration data
//   4. report float-vs-int8 agreement (the paper: "performance unchanged")
#include <cstdio>
#include <filesystem>

#include "core/experiment.hpp"
#include "nn/serialize.hpp"
#include "quant/quantized_cnn.hpp"
#include "util/env.hpp"

int main() {
    using namespace fallsense;
    const std::uint64_t seed = util::env_seed();

    core::experiment_scale scale = core::scale_preset(util::run_scale::tiny);
    scale.max_epochs = 8;
    const data::dataset merged = core::make_merged_dataset(scale, seed);

    const core::windowing_config windows = core::standard_windowing(200.0);
    const std::size_t window_samples = windows.segmentation.window_samples;
    const auto all_windows = core::extract_windows(merged.trials, windows);
    nn::labeled_data data = core::to_labeled_data(all_windows, window_samples);
    std::printf("extracted %zu windows (%.1f%% falling)\n", data.size(),
                100.0 * data.positive_fraction());

    auto cnn = core::build_fallsense_cnn(window_samples, seed);
    std::printf("model: %zu parameters\n%s\n", cnn->parameter_count(),
                cnn->summary().c_str());
    nn::train_config tc;
    tc.max_epochs = scale.max_epochs;
    tc.early_stop_patience = scale.early_stop_patience;
    const nn::train_history history = nn::fit(*cnn, data, {}, tc);
    std::printf("trained %zu epochs, final loss %.4f (class weights %.2f / %.2f)\n",
                history.train_loss.size(), history.train_loss.back(),
                history.weight_positive, history.weight_negative);

    // Save / reload round trip.
    const auto path = std::filesystem::temp_directory_path() / "fallsense_cnn.fsnn";
    nn::save_weights_file(*cnn, path);
    auto reloaded = core::build_fallsense_cnn(window_samples, seed + 1);
    nn::load_weights_file(*reloaded, path);
    std::printf("weights saved to %s and reloaded\n", path.c_str());

    // Quantize using the training windows for calibration.
    const quant::cnn_spec spec = quant::extract_cnn_spec(*reloaded, window_samples);
    const quant::quantized_cnn qmodel(spec, data.features);
    std::printf("quantized: %zu weight bytes + %zu bias bytes, arena %zu bytes\n",
                qmodel.weight_bytes(), qmodel.bias_bytes(),
                qmodel.activation_arena_bytes());

    // Decision agreement between float and int8 paths.
    std::size_t agree = 0;
    const std::size_t n = data.size();
    for (std::size_t i = 0; i < n; ++i) {
        const std::span<const float> seg(data.features.data() + i * window_samples * 9,
                                         window_samples * 9);
        const bool fd = spec.forward_logit(seg) >= 0.0f;
        const bool qd = qmodel.predict_logit(seg) >= 0.0f;
        agree += (fd == qd) ? 1 : 0;
    }
    std::printf("float vs int8 decision agreement: %.2f%% over %zu segments\n",
                100.0 * static_cast<double>(agree) / static_cast<double>(n), n);
    std::filesystem::remove(path);
    return 0;
}
