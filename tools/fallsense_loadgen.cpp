// fallsense_loadgen — fleet-traffic generator for the serving engine.
//
//   fallsense_loadgen [--sessions N] [--ticks T] [--seed S]
//                     [--window-ms 400] [--threshold 0.5] [--consecutive 1]
//                     [--feed-rate 1] [--samples-per-tick 1]
//                     [--queue-capacity 64] [--drop-policy oldest|reject]
//                     [--churn-every 0] [--int8] [--weights FILE]
//                     [--metrics-json FILE] [--metrics-timings]
//
// Synthesizes --sessions independent wearers from the motion-profile
// library, replays them through one serve::session_engine for --ticks
// ticks, and prints the deterministic traffic summary plus measured
// throughput.  With --metrics-json the obs registry records the run and a
// manifest is written; without --metrics-timings that manifest is
// byte-identical for any FALLSENSE_THREADS (the serving determinism
// contract, docs/serving.md).
#include <cstdio>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "serve/loadgen.hpp"
#include "util/args.hpp"
#include "util/env.hpp"

namespace {

using namespace fallsense;

constexpr const char* k_config_options[] = {
    "sessions",      "ticks",      "seed",           "window-ms",  "threshold",
    "consecutive",   "feed-rate",  "samples-per-tick", "queue-capacity",
    "drop-policy",   "churn-every", "weights"};

int run(const util::arg_parser& args) {
    serve::loadgen_config config;
    config.sessions = static_cast<std::size_t>(args.integer_or("sessions", 64));
    config.ticks = static_cast<std::size_t>(args.integer_or("ticks", 1000));
    config.seed = args.option("seed") ? static_cast<std::uint64_t>(args.integer_or("seed", 42))
                                      : util::env_seed();
    config.feed_rate = static_cast<std::size_t>(args.integer_or("feed-rate", 1));
    config.churn_every_ticks = static_cast<std::size_t>(args.integer_or("churn-every", 0));
    config.engine.queue_capacity =
        static_cast<std::size_t>(args.integer_or("queue-capacity", 64));
    config.engine.samples_per_tick =
        static_cast<std::size_t>(args.integer_or("samples-per-tick", 1));
    config.engine.policy = serve::parse_drop_policy(args.option_or("drop-policy", "oldest"));

    const double window_ms = args.number_or("window-ms", 400.0);
    const std::size_t window =
        static_cast<std::size_t>(window_ms * config.engine.detector.sample_rate_hz / 1000.0);
    config.engine.detector.window_samples = window;
    config.engine.detector.threshold = args.number_or("threshold", 0.5);
    config.engine.detector.consecutive_required =
        static_cast<std::size_t>(args.integer_or("consecutive", 1));

    const std::string weights = args.option_or("weights", "");
    const std::unique_ptr<serve::batch_scorer> scorer =
        args.has_flag("int8") ? serve::make_int8_scorer(window, config.seed, weights)
                              : serve::make_cnn_scorer(window, config.seed, weights);

    const serve::loadgen_report report = serve::run_loadgen(config, *scorer);
    std::fputs(report.deterministic_summary().c_str(), stdout);
    std::printf("wall_seconds: %.3f\n", report.wall_seconds);
    std::printf("throughput: %.0f ticks/s, %.0f session-ticks/s, %.0f windows/s\n",
                report.ticks_per_second(), report.session_ticks_per_second(),
                report.windows_per_second());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    util::arg_parser args;
    for (const char* opt : k_config_options) args.add_option(opt);
    args.add_option("metrics-json");
    args.add_flag("metrics-timings");
    args.add_flag("int8");
    try {
        args.parse(argc, argv, 1);
        const auto metrics_json = args.option("metrics-json");
        if (metrics_json) obs::set_enabled(true);

        const int rc = run(args);

        if (metrics_json) {
            obs::run_manifest manifest;
            manifest.command = "loadgen";
            for (const char* opt : k_config_options) {
                if (const auto value = args.option(opt)) manifest.config.emplace_back(opt, *value);
            }
            if (args.has_flag("int8")) manifest.config.emplace_back("int8", "1");
            manifest.seed = args.option("seed")
                                ? static_cast<std::uint64_t>(args.integer_or("seed", 42))
                                : util::env_seed();
            manifest.scale = util::run_scale_name(util::env_run_scale());
            obs::manifest_options options;
            options.include_timings = args.has_flag("metrics-timings");
            obs::write_manifest_file(*metrics_json, manifest, obs::snapshot(), options);
            std::printf("metrics manifest -> %s\n", metrics_json->c_str());
        }
        return rc;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fallsense_loadgen: %s\n", e.what());
        return 1;
    }
}
