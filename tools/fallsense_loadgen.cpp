// fallsense_loadgen — fleet-traffic generator for the serving layer.
//
//   fallsense_loadgen [--sessions N] [--ticks T] [--seed S]
//                     [--shards K] [--score-mode fused|per_shard] [--swap-after T]
//                     [--window-ms 400] [--threshold 0.5] [--consecutive 1]
//                     [--feed-rate 1] [--samples-per-tick 1]
//                     [--max-samples-per-tick 0] [--drain-watermark 0]
//                     [--queue-capacity 64] [--drop-policy oldest|reject]
//                     [--churn-every 0] [--int8] [--weights FILE]
//                     [--simd scalar|native]
//                     [--scenario NAME] [--stream-eval]
//                     [--cost-ratios CSV] [--grace-ms MS]
//                     [--snapshot-every N --snapshot-path FILE]
//                     [--restore-from FILE]
//                     [--metrics-json FILE] [--metrics-timings]
//   fallsense_loadgen --list-scenarios
//   fallsense_loadgen --client HOST:PORT [--sessions N] [--ticks T]
//                     [--seed S] [--feed-rate R] [--connections K]
//                     [--restore-from FILE]
//
// Synthesizes --sessions independent wearers from the motion-profile
// library, replays them through a serve::fleet_router with --shards
// session_engine shards for --ticks ticks, and prints the deterministic
// traffic summary plus measured throughput.  --swap-after T hot-swaps the
// fleet's scorer after T ticks (a model rollout under live traffic).
// With --metrics-json the obs registry records the run and a manifest is
// written; without --metrics-timings that manifest is byte-identical for
// any FALLSENSE_THREADS (the serving determinism contract,
// docs/serving.md).
//
// --snapshot-every N writes a durable checkpoint (docs/checkpoint.md)
// to --snapshot-path after every N completed ticks (atomic
// rename-on-write, so the published file is never torn);
// --restore-from resumes a run from such a file — the restored process
// replays exactly the remaining ticks, bit-identical to a run that
// never stopped.
//
// --scenario NAME draws the fleet's traffic from a named adversarial
// profile (data::list_profiles; --list-scenarios prints the catalogue)
// and turns on the event-level streaming evaluator: triggers are tapped
// from every fleet tick, matched against the synthesizer's ground-truth
// fall annotations, and reported as detection lead time, misses, false
// alarms per hour, and a miss/false-alarm cost curve (--cost-ratios, a
// comma-separated grid; --grace-ms bounds how late after impact a
// trigger still attributes to the fall).  --stream-eval turns the
// evaluator on for the default baseline traffic.  Eval results print as
// eval_* summary lines and land in the manifest under eval/*
// (docs/evaluation.md), byte-identical across FALLSENSE_THREADS.
//
// --client sends the identical traffic over the wire protocol
// (docs/wire_protocol.md) to a `fallsense serve --listen` endpoint
// instead of feeding an in-process fleet: engine, scorer, and rollout
// knobs then belong to the server process and are rejected here.
// --connections K splits the fleet across K sockets (session i rides
// socket i mod K); in client mode --restore-from resumes the traffic
// side against a server restored from the same snapshot.
#include <cstdio>

#include "ckpt/store.hpp"
#include "net/loadgen_client.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "serve/serve.hpp"
#include "tool_common.hpp"
#include "util/args.hpp"
#include "util/env.hpp"

namespace {

using namespace fallsense;

constexpr const char* k_config_options[] = {
    "sessions",    "ticks",       "seed",          "shards",
    "score-mode",  "swap-after",  "window-ms",     "threshold",
    "consecutive", "feed-rate",   "samples-per-tick", "max-samples-per-tick",
    "drain-watermark", "queue-capacity", "drop-policy", "churn-every",
    "weights", "simd", "client", "connections",
    "scenario", "cost-ratios", "grace-ms",
    "snapshot-every", "snapshot-path", "restore-from"};

int usage() {
    std::fprintf(stderr,
                 "usage: fallsense_loadgen [--sessions N] [--ticks T] [--seed S]\n"
                 "                         [--shards K] [--score-mode fused|per_shard]\n"
                 "                         [--swap-after T] [--window-ms MS]\n"
                 "                         [--threshold P] [--consecutive N] [--feed-rate R]\n"
                 "                         [--samples-per-tick N] [--max-samples-per-tick N]\n"
                 "                         [--drain-watermark N] [--queue-capacity N]\n"
                 "                         [--drop-policy oldest|reject] [--churn-every T]\n"
                 "                         [--int8] [--weights FILE]\n"
                 "                         [--simd scalar|native]\n"
                 "                         [--scenario NAME] [--stream-eval]\n"
                 "                         [--cost-ratios CSV] [--grace-ms MS]\n"
                 "                         [--snapshot-every N --snapshot-path FILE]\n"
                 "                         [--restore-from FILE]\n"
                 "                         [--metrics-json FILE] [--metrics-timings]\n"
                 "       fallsense_loadgen --list-scenarios\n"
                 "       fallsense_loadgen --client HOST:PORT [--sessions N] [--ticks T]\n"
                 "                         [--seed S] [--feed-rate R] [--connections K]\n"
                 "                         [--restore-from FILE]\n");
    return 2;
}

int run_client(const util::arg_parser& args) {
    // Everything beyond traffic shaping configures the *server's* fleet:
    // the wire carries samples, ticks, and closes — not engine knobs.
    for (const char* opt : {"shards", "score-mode", "swap-after", "window-ms",
                            "threshold", "consecutive", "samples-per-tick",
                            "max-samples-per-tick", "drain-watermark",
                            "queue-capacity", "drop-policy", "churn-every",
                            "weights", "simd", "snapshot-every", "snapshot-path"}) {
        if (args.option(opt)) {
            throw tools::usage_error(std::string("--") + opt +
                                     " configures the serve --listen process, "
                                     "not the wire client");
        }
    }
    if (args.has_flag("int8")) {
        throw tools::usage_error("--int8 configures the serve --listen process, "
                                 "not the wire client");
    }
    // Streaming evaluation pairs triggers with the synthesizer's ground
    // truth — state only the in-process side holds.  The wire carries
    // samples, not annotations, so scenario evaluation is in-process only.
    for (const char* opt : {"scenario", "cost-ratios", "grace-ms"}) {
        if (args.option(opt)) {
            throw tools::usage_error(std::string("--") + opt +
                                     " needs the in-process loadgen: the wire "
                                     "carries samples, not ground truth");
        }
    }
    if (args.has_flag("stream-eval")) {
        throw tools::usage_error("--stream-eval needs the in-process loadgen: the "
                                 "wire carries samples, not ground truth");
    }
    const std::string spec = *args.option("client");
    const auto where = net::parse_endpoint(spec);
    if (!where) tools::bad_option("--client", spec, "HOST:PORT");

    serve::loadgen_config config;
    config.sessions = tools::count_option(args, "sessions", 64);
    config.ticks = tools::count_option(args, "ticks", 1000);
    config.seed = args.option("seed")
                      ? static_cast<std::uint64_t>(tools::integer_option(args, "seed", 42))
                      : util::env_seed();
    config.feed_rate = tools::count_option(args, "feed-rate", 1);

    net::client_options options;
    options.connections = tools::count_option(args, "connections", 1);
    if (const auto restore_from = args.option("restore-from")) {
        // The server restores the fleet from this snapshot; the client
        // reads the same file to resume the TRAFFIC — which tick the run
        // stopped at and each session's next wire sequence number.
        const ckpt::fleet_snapshot snap = ckpt::read_snapshot_file(*restore_from);
        if (snap.fleet.sessions.size() != config.sessions) {
            throw tools::usage_error("--restore-from snapshot carries " +
                                     std::to_string(snap.fleet.sessions.size()) +
                                     " live sessions, --sessions says " +
                                     std::to_string(config.sessions));
        }
        options.start_tick = static_cast<std::size_t>(snap.fleet.ticks);
        options.start_sequences.reserve(config.sessions);
        for (const ckpt::session_handoff& h : ckpt::session_handoffs(snap)) {
            // Client-mode sessions never churn, so the live ids must be
            // exactly the wire ids this client sends (0..N-1).
            if (h.session != options.start_sequences.size()) {
                throw tools::usage_error(
                    "--restore-from snapshot has churned session ids; "
                    "client mode replays sessions 0..N-1 only");
            }
            options.start_sequences.push_back(h.next_sequence);
        }
    }

    const net::loadgen_client_report report =
        net::run_loadgen_client(config, *where, options);
    std::fputs(report.deterministic_summary().c_str(), stdout);
    std::printf("wall_seconds: %.3f\n", report.wall_seconds);
    const double samples_per_second =
        report.wall_seconds > 0.0
            ? static_cast<double>(report.samples_offered) / report.wall_seconds
            : 0.0;
    std::printf("throughput: %.0f samples/s over the wire\n", samples_per_second);
    return 0;
}

int run(const util::arg_parser& args) {
    if (args.option("connections")) {
        throw tools::usage_error("--connections applies to --client mode only");
    }
    // Explicit --simd wins over the FALLSENSE_SIMD environment override;
    // without the flag, whatever the environment resolved stays in force.
    if (args.option("simd")) {
        nn::set_simd_mode(tools::simd_mode_option(args, "simd", nn::simd_mode::scalar));
    }
    serve::loadgen_config config;
    config.sessions = tools::count_option(args, "sessions", 64);
    config.ticks = tools::count_option(args, "ticks", 1000);
    config.seed = args.option("seed")
                      ? static_cast<std::uint64_t>(tools::integer_option(args, "seed", 42))
                      : util::env_seed();
    config.shards = tools::count_option(args, "shards", 1);
    config.mode = tools::score_mode_option(args, "score-mode", serve::score_mode::fused);
    config.swap_after_ticks = tools::count_option(args, "swap-after", 0);
    config.feed_rate = tools::count_option(args, "feed-rate", 1);
    config.churn_every_ticks = tools::count_option(args, "churn-every", 0);
    config.engine.queue_capacity = tools::count_option(args, "queue-capacity", 64);
    config.engine.samples_per_tick = tools::count_option(args, "samples-per-tick", 1);
    config.engine.max_samples_per_tick =
        tools::count_option(args, "max-samples-per-tick", 0);
    config.engine.drain_watermark = tools::count_option(args, "drain-watermark", 0);
    config.engine.policy =
        tools::drop_policy_option(args, "drop-policy", serve::drop_policy::drop_oldest);

    const double window_ms = tools::number_option(args, "window-ms", 400.0);
    config.engine.detector.window_samples =
        static_cast<std::size_t>(window_ms * config.engine.detector.sample_rate_hz / 1000.0);
    config.engine.detector.threshold = tools::number_option(args, "threshold", 0.5);
    config.engine.detector.consecutive_required = tools::count_option(args, "consecutive", 1);

    config.scorer.backend = args.has_flag("int8") ? serve::scorer_backend::int8
                                                  : serve::scorer_backend::float32;
    config.scorer.seed = config.seed;
    config.scorer.weights_path = args.option_or("weights", "");

    // Naming a scenario implies evaluating it; --stream-eval evaluates
    // the default baseline traffic.
    config.scenario = tools::scenario_option(args, "scenario", "baseline");
    config.stream_eval = args.has_flag("stream-eval") || args.option("scenario").has_value();
    config.eval_config.sample_rate_hz = config.engine.detector.sample_rate_hz;
    config.eval_config.detection_grace_s =
        tools::number_option(args, "grace-ms",
                             config.eval_config.detection_grace_s * 1000.0) /
        1000.0;
    config.eval_config.cost_ratios =
        tools::number_list_option(args, "cost-ratios", config.eval_config.cost_ratios);
    if (!config.stream_eval && (args.option("cost-ratios") || args.option("grace-ms"))) {
        throw tools::usage_error(
            "--cost-ratios/--grace-ms tune the evaluator; add --scenario NAME "
            "or --stream-eval");
    }

    // Checkpointing: serve stays codec-free, so the tool supplies the
    // ckpt:: lambdas the loadgen hooks call (docs/checkpoint.md).
    config.snapshot_every_ticks = tools::count_option(args, "snapshot-every", 0);
    const auto snapshot_path = args.option("snapshot-path");
    if (config.snapshot_every_ticks > 0) {
        if (!snapshot_path) {
            throw tools::usage_error("--snapshot-every needs --snapshot-path FILE");
        }
        config.snapshot_sink = [path = *snapshot_path](const serve::fleet_router& fleet) {
            ckpt::snapshot_to_file(fleet, path);
        };
    } else if (snapshot_path) {
        throw tools::usage_error("--snapshot-path needs --snapshot-every N");
    }
    if (const auto restore_from = args.option("restore-from")) {
        config.restore = [path = *restore_from](serve::fleet_router& fleet) {
            ckpt::restore_from_file(fleet, path);
        };
    }

    const serve::loadgen_report report = serve::run_loadgen(config);
    std::fputs(report.deterministic_summary().c_str(), stdout);
    std::printf("wall_seconds: %.3f\n", report.wall_seconds);
    std::printf("throughput: %.0f ticks/s, %.0f session-ticks/s, %.0f windows/s\n",
                report.ticks_per_second(), report.session_ticks_per_second(),
                report.windows_per_second());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    util::arg_parser args;
    for (const char* opt : k_config_options) args.add_option(opt);
    args.add_option("metrics-json");
    args.add_flag("metrics-timings");
    args.add_flag("int8");
    args.add_flag("stream-eval");
    args.add_flag("list-scenarios");
    try {
        try {
            args.parse(argc, argv, 1);
        } catch (const std::invalid_argument& e) {
            // Unknown flags / missing values are usage errors too.
            throw tools::usage_error(e.what());
        }
        if (args.has_flag("list-scenarios")) {
            for (const std::string& name : data::list_profiles()) {
                const data::scenario_profile profile = data::make_profile(name);
                std::printf("%s: %s\n", profile.name.c_str(), profile.summary.c_str());
            }
            return 0;
        }
        const auto metrics_json = args.option("metrics-json");
        if (metrics_json) obs::set_enabled(true);

        const int rc = args.option("client") ? run_client(args) : run(args);

        if (metrics_json) {
            obs::run_manifest manifest;
            manifest.command = "loadgen";
            for (const char* opt : k_config_options) {
                const auto value = args.option(opt);
                if (!value) continue;
                // --simd echoes the RESOLVED backend (scalar / neon /
                // avx2-fma / avx512), not the requested mode; omitted
                // without the flag so env-only runs stay byte-diffable.
                if (std::string(opt) == "simd") {
                    manifest.config.emplace_back(opt, nn::active_simd_backend_name());
                } else {
                    manifest.config.emplace_back(opt, *value);
                }
            }
            if (args.has_flag("int8")) manifest.config.emplace_back("int8", "1");
            manifest.seed = args.option("seed")
                                ? static_cast<std::uint64_t>(args.integer_or("seed", 42))
                                : util::env_seed();
            manifest.scale = util::run_scale_name(util::env_run_scale());
            obs::manifest_options options;
            options.include_timings = args.has_flag("metrics-timings");
            obs::write_manifest_file(*metrics_json, manifest, obs::snapshot(), options);
            std::printf("metrics manifest -> %s\n", metrics_json->c_str());
        }
        return rc;
    } catch (const tools::usage_error& e) {
        std::fprintf(stderr, "fallsense_loadgen: %s\n", e.what());
        return usage();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fallsense_loadgen: %s\n", e.what());
        return 1;
    }
}
