// fallsense — command-line interface to the library.
//
//   fallsense generate --out DIR [--dataset merged|kfall|protechto]
//                      [--scale tiny|quick|full] [--seed N]
//   fallsense train    --data DIR --out weights.fsnn [--window-ms 400]
//                      [--epochs 30] [--seed N]
//   fallsense evaluate --data DIR --weights weights.fsnn [--window-ms 400]
//                      [--threshold 0.5]
//   fallsense deploy   --weights weights.fsnn --calib DIR --out blob.bin
//                      [--window-ms 400] [--c-array NAME]
//   fallsense replay   --file trial.csv --weights weights.fsnn
//                      [--window-ms 400] [--threshold 0.5]
//   fallsense serve    [--sessions 64] [--ticks 1000] [--seed N]
//                      [--shards 1] [--score-mode fused|per_shard]
//                      [--swap-after 0]
//                      [--window-ms 400] [--threshold 0.5]
//                      [--feed-rate 1] [--samples-per-tick 1]
//                      [--max-samples-per-tick 0] [--drain-watermark 0]
//                      [--queue-capacity 64] [--drop-policy oldest|reject]
//                      [--churn-every 0] [--int8] [--weights weights.fsnn]
//                      [--snapshot-every N --snapshot-path FILE]
//                      [--restore-from FILE]
//   fallsense serve --listen [HOST:]PORT [engine/scorer flags as above]
//                      network front-end: accepts wire-protocol clients
//                      (docs/wire_protocol.md), ticks on client tick
//                      frames, answers reject-newest saturation with
//                      queue-full status frames; traffic flags
//                      (--sessions/--ticks/--feed-rate/--churn-every)
//                      belong to fallsense_loadgen --client.
//                      --snapshot-every/--snapshot-path checkpoint the
//                      fleet every N ticks (docs/checkpoint.md);
//                      --restore-from resumes a restarted server and
//                      re-adopts the clients' wire sessions
//
// Any command additionally accepts
//   --metrics-json FILE   enable the obs metrics registry and write a run
//                         manifest (docs/observability.md) when done
//   --metrics-timings     include wall/CPU timings, thread count, and
//                         latency histograms in the manifest (these vary
//                         run to run; without them the manifest is
//                         byte-identical for any FALLSENSE_THREADS)
//   --simd scalar|native  select the float GEMM / int8 kernel dispatch
//                         (docs/performance.md); overrides FALLSENSE_SIMD.
//                         Default scalar — the bit-exact reference kernels
//
// Weights files store parameters only; the window size used at training
// time must be passed again (kept explicit rather than guessed).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>

#include "ckpt/store.hpp"
#include "core/airbag.hpp"
#include "core/experiment.hpp"
#include "data/dataset_io.hpp"
#include "data/trial_io.hpp"
#include "eval/eval.hpp"
#include "mcu/cost_model.hpp"
#include "mcu/deployment.hpp"
#include "mcu/memory_planner.hpp"
#include "net/server.hpp"
#include "nn/activations.hpp"
#include "nn/serialize.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "quant/quantized_cnn.hpp"
#include "serve/serve.hpp"
#include "tool_common.hpp"
#include "util/args.hpp"
#include "util/env.hpp"

namespace {

using namespace fallsense;

int usage() {
    std::fprintf(stderr,
                 "usage: fallsense <generate|train|evaluate|deploy|replay|serve> [options]\n"
                 "see the header of tools/fallsense_cli.cpp for the full synopsis\n");
    return 2;
}

core::windowing_config windowing_from(const util::arg_parser& args) {
    return core::standard_windowing(args.number_or("window-ms", 400.0));
}

/// Trials of a dataset restricted to standard units (the CLI trains and
/// evaluates in the reference frame; run alignment upstream).
void require_standard_units(const data::dataset& d) {
    for (const data::trial& t : d.trials) {
        if (t.accel_units != data::accel_unit::g ||
            t.gyro_units != data::gyro_unit::rad_per_s) {
            throw std::runtime_error(
                "dataset contains non-standard units; regenerate with --dataset merged "
                "or align it first");
        }
    }
}

int cmd_generate(const util::arg_parser& args) {
    const std::string out = args.option_or("out", "");
    if (out.empty()) throw std::invalid_argument("generate: --out DIR is required");
    const std::string which = args.option_or("dataset", "merged");
    const auto seed = static_cast<std::uint64_t>(args.integer_or("seed", 42));
    const core::experiment_scale scale =
        core::scale_preset(util::parse_run_scale(args.option_or("scale", "quick")));

    data::dataset d;
    if (which == "merged") {
        d = core::make_merged_dataset(scale, seed);
    } else if (which == "kfall") {
        data::dataset_profile p = data::kfall_profile();
        p.n_subjects = scale.kfall_subjects;
        p.tuning = scale.tuning;
        d = data::generate_dataset(p, seed);
    } else if (which == "protechto") {
        data::dataset_profile p = data::protechto_profile();
        p.n_subjects = scale.protechto_subjects;
        p.tuning = scale.tuning;
        d = data::generate_dataset(p, seed);
    } else {
        throw std::invalid_argument("generate: unknown --dataset " + which);
    }
    data::write_dataset_dir(d, out);
    std::printf("wrote %zu trials (%zu falls, %zu subjects) to %s\n", d.trial_count(),
                d.fall_trial_count(), d.subject_ids().size(), out.c_str());
    return 0;
}

int cmd_train(const util::arg_parser& args) {
    const std::string data_dir = args.option_or("data", "");
    const std::string out = args.option_or("out", "");
    if (data_dir.empty() || out.empty()) {
        throw std::invalid_argument("train: --data DIR and --out FILE are required");
    }
    const auto seed = static_cast<std::uint64_t>(args.integer_or("seed", 42));
    const auto epochs = static_cast<std::size_t>(args.integer_or("epochs", 30));
    const core::windowing_config wc = windowing_from(args);
    const std::size_t window = wc.segmentation.window_samples;

    const data::dataset d = data::read_dataset_dir(data_dir);
    require_standard_units(d);

    // Hold out the last ~20 % of subjects for early stopping.
    const std::vector<int> subjects = d.subject_ids();
    const std::size_t holdout = std::max<std::size_t>(1, subjects.size() / 5);
    const std::vector<int> val_subjects(subjects.end() - static_cast<std::ptrdiff_t>(holdout),
                                        subjects.end());
    const std::vector<int> train_subjects(subjects.begin(),
                                          subjects.end() - static_cast<std::ptrdiff_t>(holdout));

    std::vector<data::trial> train_trials;
    for (const data::trial& t : d.trials) {
        if (std::find(train_subjects.begin(), train_subjects.end(), t.subject_id) !=
            train_subjects.end()) {
            train_trials.push_back(t);
        }
    }
    util::rng aug_gen(util::derive_seed(seed, "augment"));
    augment::augment_fall_trials(train_trials, 2, augment::trial_augment_config{}, aug_gen);

    nn::labeled_data train =
        core::to_labeled_data(core::extract_windows(train_trials, wc), window);
    nn::labeled_data val = core::to_labeled_data(
        core::extract_windows(d.trials, wc, &val_subjects), window);
    std::printf("training on %zu windows (%.1f%% falling), validating on %zu\n",
                train.size(), 100.0 * train.positive_fraction(), val.size());

    auto cnn = core::build_fallsense_cnn(window, util::derive_seed(seed, "model"));
    nn::train_config tc;
    tc.max_epochs = epochs;
    tc.early_stop_patience = std::max<std::size_t>(3, epochs / 8);
    const nn::train_history h = nn::fit(*cnn, train, val, tc);
    std::printf("trained %zu epochs (best %zu%s)\n", h.train_loss.size(), h.best_epoch + 1,
                h.stopped_early ? ", early-stopped" : "");
    nn::save_weights_file(*cnn, out);
    std::printf("weights -> %s\n", out.c_str());
    return 0;
}

int cmd_evaluate(const util::arg_parser& args) {
    const std::string data_dir = args.option_or("data", "");
    const std::string weights = args.option_or("weights", "");
    if (data_dir.empty() || weights.empty()) {
        throw std::invalid_argument("evaluate: --data DIR and --weights FILE are required");
    }
    const double threshold = args.number_or("threshold", 0.5);
    const core::windowing_config wc = windowing_from(args);
    const std::size_t window = wc.segmentation.window_samples;

    const data::dataset d = data::read_dataset_dir(data_dir);
    require_standard_units(d);
    auto cnn = core::build_fallsense_cnn(window, 0);
    nn::load_weights_file(*cnn, weights);

    const auto windows = core::extract_windows(d.trials, wc);
    nn::labeled_data batch = core::to_labeled_data(windows, window);
    const std::vector<float> probs = nn::predict_proba(*cnn, batch.features);

    // The segment + event views come from one per-window evaluator built
    // through the factory — the same construction path the loadgen's
    // streaming evaluation uses (eval/evaluator.hpp).
    eval::evaluator_spec spec;
    spec.kind = eval::evaluator_kind::per_window;
    spec.threshold = threshold;
    const std::unique_ptr<eval::evaluator> evaluator = eval::make_evaluator(spec);
    evaluator->add_segments(core::to_segment_records(windows, probs));
    const eval::evaluation_report evaluated = evaluator->finish();
    std::printf("segments (%zu): %s, AUC %.4f\n", windows.size(),
                eval::to_string(*evaluated.classification).c_str(),
                eval::roc_auc(probs, batch.labels));

    const eval::event_analysis& events = *evaluated.events;
    std::printf("events: %.2f%% falls missed, %.2f%% ADL false alarms "
                "(red %.2f%%, green %.2f%%)\n",
                events.fall_miss_percent_avg, events.adl_false_percent_avg,
                events.red_adl_false_percent, events.green_adl_false_percent);
    return 0;
}

int cmd_deploy(const util::arg_parser& args) {
    const std::string weights = args.option_or("weights", "");
    const std::string calib_dir = args.option_or("calib", "");
    const std::string out = args.option_or("out", "");
    if (weights.empty() || calib_dir.empty() || out.empty()) {
        throw std::invalid_argument(
            "deploy: --weights FILE, --calib DIR and --out FILE are required");
    }
    const core::windowing_config wc = windowing_from(args);
    const std::size_t window = wc.segmentation.window_samples;

    auto cnn = core::build_fallsense_cnn(window, 0);
    nn::load_weights_file(*cnn, weights);
    const data::dataset calib = data::read_dataset_dir(calib_dir);
    require_standard_units(calib);
    nn::labeled_data calib_data =
        core::to_labeled_data(core::extract_windows(calib.trials, wc), window);

    const quant::cnn_spec spec = quant::extract_cnn_spec(*cnn, window);
    const quant::quantized_cnn qmodel(spec, calib_data.features);
    const auto blob = mcu::serialize_deployment_blob(qmodel);

    std::ofstream os(out, std::ios::binary);
    if (!os) throw std::runtime_error("cannot write " + out);
    os.write(reinterpret_cast<const char*>(blob.data()),
             static_cast<std::streamsize>(blob.size()));
    std::printf("blob -> %s (%.2f KiB)\n", out.c_str(),
                static_cast<double>(blob.size()) / 1024.0);

    if (const auto name = args.option("c-array")) {
        const std::string c_path = out + ".c";
        std::ofstream cs(c_path);
        cs << mcu::render_c_array(blob, *name);
        std::printf("C array -> %s\n", c_path.c_str());
    }

    const mcu::device_spec device = mcu::stm32f722();
    const mcu::deployment_plan plan = mcu::plan_deployment(qmodel, device);
    std::printf("%s\n", plan.summary().c_str());
    std::printf("estimated inference: %.2f ms on %s\n",
                mcu::estimate_inference(qmodel, device).milliseconds, device.name);
    return 0;
}

int cmd_replay(const util::arg_parser& args) {
    const std::string file = args.option_or("file", "");
    const std::string weights = args.option_or("weights", "");
    if (file.empty() || weights.empty()) {
        throw std::invalid_argument("replay: --file CSV and --weights FILE are required");
    }
    const double threshold = args.number_or("threshold", 0.5);
    const core::windowing_config wc = windowing_from(args);
    const std::size_t window = wc.segmentation.window_samples;

    auto cnn = core::build_fallsense_cnn(window, 0);
    nn::load_weights_file(*cnn, weights);
    const data::trial t = data::read_trial_csv(file, args.number_or("sample-rate", 100.0));

    core::detector_config dc;
    dc.window_samples = window;
    dc.overlap_fraction = 0.75;
    dc.threshold = threshold;
    dc.sample_rate_hz = t.sample_rate_hz;
    core::streaming_detector detector(dc, [&](std::span<const float> w) {
        const nn::tensor x({1, window, core::k_feature_channels},
                           std::vector<float>(w.begin(), w.end()));
        const nn::tensor logit = cnn->forward(x, false);
        return nn::sigmoid_scalar(logit[0]);
    });

    std::size_t triggers = 0;
    for (std::size_t i = 0; i < t.sample_count(); ++i) {
        if (const auto d = detector.push(t.samples[i])) {
            std::printf("t=%.2fs trigger (confidence %.2f)\n",
                        static_cast<double>(d->sample_index) / t.sample_rate_hz,
                        d->probability);
            ++triggers;
        }
    }
    std::printf("%zu samples, %zu trigger(s)\n", t.sample_count(), triggers);
    return 0;
}

/// serve --listen: the networked front-end.  The same engine/scorer
/// flags as the in-process path configure the fleet, but traffic comes
/// from wire-protocol clients (docs/wire_protocol.md) instead of the
/// loadgen loop — sessions are admitted on first sample frame, ticks
/// are paced by client tick frames, and the run ends on a bye frame.
/// Traffic-shaping flags are client-side and rejected here.
int cmd_serve_listen(const util::arg_parser& args, const net::endpoint& where,
                     serve::loadgen_config config) {
    for (const char* banned : {"sessions", "ticks", "feed-rate", "churn-every"}) {
        if (args.option(banned)) {
            throw tools::usage_error(std::string("--") + banned +
                                     " is traffic-shaping (client-side); pass it to "
                                     "fallsense_loadgen --client instead");
        }
    }
    const std::size_t snapshot_every = tools::count_option(args, "snapshot-every", 0);
    const auto snapshot_path = args.option("snapshot-path");
    if (snapshot_every > 0 && !snapshot_path) {
        throw tools::usage_error("--snapshot-every needs --snapshot-path FILE");
    }
    if (snapshot_every == 0 && snapshot_path) {
        throw tools::usage_error("--snapshot-path needs --snapshot-every N");
    }

    serve::scorer_spec spec = config.scorer;
    spec.window_samples = config.engine.detector.window_samples;

    serve::fleet_config fc;
    fc.engine = config.engine;
    fc.shards = config.shards;
    fc.mode = config.mode;
    serve::fleet_router fleet(fc, serve::make_scorer(spec));

    // --swap-after T hot-swaps between ticks T-1 and T, exactly where
    // the in-process loadgen swaps, so networked and in-process runs
    // stay manifest-identical.  ticks_done counts from the restored
    // checkpoint on a resume, so snapshot cadence and swap timing line
    // up with the uninterrupted run.
    std::uint64_t ticks_done = 0;
    net::ingest_server server(where, fleet, [&](const serve::tick_result&) {
        ++ticks_done;
        if (config.swap_after_ticks > 0 && ticks_done == config.swap_after_ticks) {
            serve::scorer_spec next = spec;
            next.seed = util::derive_seed(spec.seed, "serve/swap");
            fleet.swap_scorer(serve::make_scorer(next));
        }
        if (snapshot_every > 0 && ticks_done % snapshot_every == 0) {
            ckpt::snapshot_to_file(fleet, *snapshot_path);
        }
    });
    if (const auto restore_from = args.option("restore-from")) {
        const ckpt::fleet_snapshot snap = ckpt::restore_from_file(fleet, *restore_from);
        ticks_done = snap.fleet.ticks;
        // Reinstall the scorer generation the snapshot was taken under
        // (no generation bump: the restored counter already carries it).
        if (fleet.swap_generation() > 0) {
            serve::scorer_spec current = spec;
            for (std::uint64_t g = 0; g < fleet.swap_generation(); ++g) {
                current.seed = util::derive_seed(current.seed, "serve/swap");
            }
            fleet.install_scorer(serve::make_scorer(current));
        }
        // Hand the live sessions to the gateway: a reconnecting sender's
        // first sample frame re-adopts its pre-restart router session
        // (wire ids are the router-global ids the loadgen client sends).
        std::vector<net::restored_session> rebinds;
        for (const ckpt::session_handoff& h : ckpt::session_handoffs(snap)) {
            rebinds.push_back({static_cast<std::uint32_t>(h.session), h.session,
                               h.next_sequence});
        }
        server.gateway().restore_wire_sessions(rebinds);
    }
    // The loopback smoke waits for this line before starting the client.
    std::printf("listening on %s:%u\n", where.host.c_str(), server.port());
    std::fflush(stdout);
    server.run();

    const serve::engine_stats totals = fleet.totals();
    const net::gateway_stats& gs = server.gateway().stats();
    std::printf("connections: %llu\nframes_in: %llu\nsamples_in: %llu\n"
                "samples_rejected: %llu\nreject_frames_out: %llu\nticks: %llu\n"
                "windows_scored: %llu\ntriggers: %llu\nswap_generation: %llu\n",
                static_cast<unsigned long long>(gs.connections_opened),
                static_cast<unsigned long long>(gs.frames_in),
                static_cast<unsigned long long>(gs.samples_in),
                static_cast<unsigned long long>(gs.samples_rejected),
                static_cast<unsigned long long>(gs.reject_frames_out),
                static_cast<unsigned long long>(gs.ticks),
                static_cast<unsigned long long>(totals.windows_scored),
                static_cast<unsigned long long>(totals.triggers),
                static_cast<unsigned long long>(fleet.swap_generation()));
    return 0;
}

int cmd_serve(const util::arg_parser& args) {
    serve::loadgen_config config;
    config.sessions = tools::count_option(args, "sessions", 64);
    config.ticks = tools::count_option(args, "ticks", 1000);
    config.seed = args.option("seed")
                      ? static_cast<std::uint64_t>(tools::integer_option(args, "seed", 42))
                      : util::env_seed();
    config.shards = tools::count_option(args, "shards", 1);
    config.mode = tools::score_mode_option(args, "score-mode", serve::score_mode::fused);
    config.swap_after_ticks = tools::count_option(args, "swap-after", 0);
    config.feed_rate = tools::count_option(args, "feed-rate", 1);
    config.churn_every_ticks = tools::count_option(args, "churn-every", 0);
    config.engine.queue_capacity = tools::count_option(args, "queue-capacity", 64);
    config.engine.samples_per_tick = tools::count_option(args, "samples-per-tick", 1);
    config.engine.max_samples_per_tick =
        tools::count_option(args, "max-samples-per-tick", 0);
    config.engine.drain_watermark = tools::count_option(args, "drain-watermark", 0);
    config.engine.policy =
        tools::drop_policy_option(args, "drop-policy", serve::drop_policy::drop_oldest);
    const core::windowing_config wc = windowing_from(args);
    config.engine.detector.window_samples = wc.segmentation.window_samples;
    config.engine.detector.threshold = tools::number_option(args, "threshold", 0.5);

    config.scorer.backend = args.has_flag("int8") ? serve::scorer_backend::int8
                                                  : serve::scorer_backend::float32;
    config.scorer.seed = config.seed;
    config.scorer.weights_path = args.option_or("weights", "");

    if (const auto listen = args.option("listen")) {
        const auto where = net::parse_endpoint(*listen);
        if (!where) tools::bad_option("--listen", *listen, "[HOST:]PORT");
        return cmd_serve_listen(args, *where, config);
    }

    // Checkpointing: serve stays codec-free, so the tool supplies the
    // ckpt:: lambdas the loadgen hooks call (docs/checkpoint.md).
    config.snapshot_every_ticks = tools::count_option(args, "snapshot-every", 0);
    const auto snapshot_path = args.option("snapshot-path");
    if (config.snapshot_every_ticks > 0) {
        if (!snapshot_path) {
            throw tools::usage_error("--snapshot-every needs --snapshot-path FILE");
        }
        config.snapshot_sink = [path = *snapshot_path](const serve::fleet_router& fleet) {
            ckpt::snapshot_to_file(fleet, path);
        };
    } else if (snapshot_path) {
        throw tools::usage_error("--snapshot-path needs --snapshot-every N");
    }
    if (const auto restore_from = args.option("restore-from")) {
        config.restore = [path = *restore_from](serve::fleet_router& fleet) {
            ckpt::restore_from_file(fleet, path);
        };
    }

    const serve::loadgen_report report = serve::run_loadgen(config);
    std::fputs(report.deterministic_summary().c_str(), stdout);
    std::printf("wall_seconds: %.3f\n", report.wall_seconds);
    std::printf("throughput: %.0f ticks/s, %.0f session-ticks/s, %.0f windows/s\n",
                report.ticks_per_second(), report.session_ticks_per_second(),
                report.windows_per_second());
    return 0;
}

/// Options whose values are echoed into the run manifest's config section
/// (the metrics options themselves are not part of the run's config).
constexpr const char* k_config_options[] = {"out",     "dataset",   "scale", "seed",
                                            "data",    "epochs",    "window-ms", "weights",
                                            "threshold", "calib",   "c-array", "file",
                                            "sample-rate", "sessions", "ticks", "feed-rate",
                                            "samples-per-tick", "max-samples-per-tick",
                                            "drain-watermark", "queue-capacity",
                                            "drop-policy", "churn-every", "shards",
                                            "score-mode", "swap-after", "simd", "listen",
                                            "snapshot-every", "snapshot-path",
                                            "restore-from"};

void write_metrics_manifest(const util::arg_parser& args, const std::string& command,
                            const std::string& path) {
    obs::run_manifest run;
    run.command = command;
    for (const char* opt : k_config_options) {
        const auto value = args.option(opt);
        if (!value) continue;
        // --simd records the backend the dispatcher RESOLVED on this host
        // (scalar / neon / avx2-fma / avx512), not the requested mode —
        // the manifest names what actually ran.  Without the flag the
        // entry is omitted entirely, so manifests from runs differing
        // only in the FALLSENSE_SIMD environment stay byte-identical
        // (the int8 scoring path is exact in every mode; CI diffs on it).
        if (std::string(opt) == "simd") {
            run.config.emplace_back(opt, nn::active_simd_backend_name());
        } else {
            run.config.emplace_back(opt, *value);
        }
    }
    run.seed = args.option("seed")
                   ? static_cast<std::uint64_t>(args.integer_or("seed", 42))
                   : util::env_seed();
    run.scale = args.option_or("scale", util::run_scale_name(util::env_run_scale()));
    obs::manifest_options options;
    options.include_timings = args.has_flag("metrics-timings");
    obs::write_manifest_file(path, run, obs::snapshot(), options);
    std::printf("metrics manifest -> %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    util::arg_parser args;
    for (const char* opt : k_config_options) args.add_option(opt);
    args.add_option("metrics-json");
    args.add_flag("metrics-timings");
    args.add_flag("int8");
    try {
        try {
            args.parse(argc, argv, 2);
        } catch (const std::invalid_argument& e) {
            // Unknown flags / missing values are usage errors too.
            throw tools::usage_error(e.what());
        }
        const auto metrics_json = args.option("metrics-json");
        if (metrics_json) obs::set_enabled(true);
        // Explicit --simd wins over the FALLSENSE_SIMD environment
        // override; without the flag the environment's choice stands.
        if (args.option("simd")) {
            nn::set_simd_mode(tools::simd_mode_option(args, "simd", nn::simd_mode::scalar));
        }

        int rc = 2;
        if (command == "generate") rc = cmd_generate(args);
        else if (command == "train") rc = cmd_train(args);
        else if (command == "evaluate") rc = cmd_evaluate(args);
        else if (command == "deploy") rc = cmd_deploy(args);
        else if (command == "replay") rc = cmd_replay(args);
        else if (command == "serve") rc = cmd_serve(args);
        else return usage();

        if (metrics_json) write_metrics_manifest(args, command, *metrics_json);
        return rc;
    } catch (const tools::usage_error& e) {
        std::fprintf(stderr, "fallsense %s: %s\n", command.c_str(), e.what());
        return usage();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fallsense %s: %s\n", command.c_str(), e.what());
        return 1;
    }
}
