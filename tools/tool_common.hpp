// Shared helpers for the fallsense command-line tools.
//
// Option values that fail to parse are user errors, not bugs: they should
// print the offending flag and value plus the usage synopsis and exit 2 —
// never surface as an uncaught exception.  Tools throw `usage_error`
// (directly or via the typed option helpers below) and catch it in main:
//
//     } catch (const tools::usage_error& e) {
//         std::fprintf(stderr, "%s: %s\n", k_tool, e.what());
//         return usage();
//     }
//
// The helpers wrap the util::parse_long / parse_double optional-returning
// parsers and the serve-layer enum parsers (parse_drop_policy) with that
// reporting.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/motion_profile.hpp"
#include "nn/simd.hpp"
#include "serve/serve.hpp"
#include "util/args.hpp"

namespace fallsense::tools {

/// A bad command line: the message names the flag, the offending value,
/// and what was expected.  Tools catch this, print it with the usage
/// synopsis, and exit 2.
struct usage_error : std::runtime_error {
    using std::runtime_error::runtime_error;
};

[[noreturn]] inline void bad_option(const std::string& flag, const std::string& value,
                                    const std::string& expected) {
    throw usage_error("invalid " + flag + " '" + value + "' (expected " + expected + ")");
}

inline long integer_option(const util::arg_parser& args, const std::string& name,
                           long fallback) {
    const auto text = args.option(name);
    if (!text) return fallback;
    const auto value = util::parse_long(*text);
    if (!value) bad_option("--" + name, *text, "an integer");
    return *value;
}

/// Integer option that must be >= 0 (session counts, tick counts, ...).
inline std::size_t count_option(const util::arg_parser& args, const std::string& name,
                                std::size_t fallback) {
    const auto text = args.option(name);
    if (!text) return fallback;
    const auto value = util::parse_long(*text);
    if (!value || *value < 0) bad_option("--" + name, *text, "a non-negative integer");
    return static_cast<std::size_t>(*value);
}

inline double number_option(const util::arg_parser& args, const std::string& name,
                            double fallback) {
    const auto text = args.option(name);
    if (!text) return fallback;
    const auto value = util::parse_double(*text);
    if (!value) bad_option("--" + name, *text, "a number");
    return *value;
}

inline serve::drop_policy drop_policy_option(const util::arg_parser& args,
                                             const std::string& name,
                                             serve::drop_policy fallback) {
    const auto text = args.option(name);
    if (!text) return fallback;
    const auto policy = serve::parse_drop_policy(*text);
    if (!policy) bad_option("--" + name, *text, "oldest|reject");
    return *policy;
}

inline serve::score_mode score_mode_option(const util::arg_parser& args,
                                           const std::string& name,
                                           serve::score_mode fallback) {
    const auto text = args.option(name);
    if (!text) return fallback;
    const auto mode = serve::parse_score_mode(*text);
    if (!mode) bad_option("--" + name, *text, "fused|per_shard");
    return *mode;
}

inline nn::simd_mode simd_mode_option(const util::arg_parser& args, const std::string& name,
                                      nn::simd_mode fallback) {
    const auto text = args.option(name);
    if (!text) return fallback;
    const auto mode = nn::parse_simd_mode(*text);
    if (!mode) bad_option("--" + name, *text, "scalar|native");
    return *mode;
}

/// Scenario-profile name, validated against the data-layer registry.  The
/// data layer's typed unknown_profile_error (which lists the registered
/// names) is translated into the tool-layer usage_error here, so an
/// unknown --scenario prints the catalogue and the usage synopsis.
inline std::string scenario_option(const util::arg_parser& args, const std::string& name,
                                   const std::string& fallback) {
    const std::string value = args.option_or(name, fallback);
    try {
        (void)data::make_profile(value);
    } catch (const data::unknown_profile_error& e) {
        throw usage_error(e.what());
    }
    return value;
}

/// Comma-separated list of positive numbers (the --cost-ratios grid).
inline std::vector<double> number_list_option(const util::arg_parser& args,
                                              const std::string& name,
                                              const std::vector<double>& fallback) {
    const auto text = args.option(name);
    if (!text) return fallback;
    std::vector<double> values;
    std::size_t pos = 0;
    while (pos <= text->size()) {
        const std::size_t comma = std::min(text->find(',', pos), text->size());
        const auto value = util::parse_double(text->substr(pos, comma - pos));
        if (!value || *value <= 0.0) {
            bad_option("--" + name, *text, "comma-separated positive numbers");
        }
        values.push_back(*value);
        pos = comma + 1;
    }
    return values;
}

}  // namespace fallsense::tools
