#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fallsense::util {
namespace {

/// RAII capture of std::clog for the duration of a test.
class clog_capture {
public:
    clog_capture() : old_(std::clog.rdbuf(buffer_.rdbuf())) {}
    ~clog_capture() { std::clog.rdbuf(old_); }
    std::string text() const { return buffer_.str(); }

private:
    std::ostringstream buffer_;
    std::streambuf* old_;
};

class LoggingTest : public ::testing::Test {
protected:
    void SetUp() override { old_level_ = get_log_level(); }
    void TearDown() override { set_log_level(old_level_); }
    log_level old_level_ = log_level::info;
};

TEST_F(LoggingTest, RecordFormat) {
    set_log_level(log_level::info);
    clog_capture capture;
    FS_LOG_INFO("mymodule") << "value=" << 42;
    EXPECT_EQ(capture.text(), "[info mymodule] value=42\n");
}

TEST_F(LoggingTest, LevelFiltering) {
    set_log_level(log_level::warn);
    clog_capture capture;
    FS_LOG_INFO("m") << "hidden";
    FS_LOG_DEBUG("m") << "hidden too";
    EXPECT_TRUE(capture.text().empty());
}

TEST_F(LoggingTest, OffSilencesEverything) {
    set_log_level(log_level::off);
    clog_capture capture;
    FS_LOG_INFO("m") << "nothing";
    EXPECT_TRUE(capture.text().empty());
}

TEST_F(LoggingTest, ParseLevels) {
    EXPECT_EQ(parse_log_level("debug"), log_level::debug);
    EXPECT_EQ(parse_log_level("info"), log_level::info);
    EXPECT_EQ(parse_log_level("warn"), log_level::warn);
    EXPECT_EQ(parse_log_level("error"), log_level::error);
    EXPECT_EQ(parse_log_level("off"), log_level::off);
    EXPECT_EQ(parse_log_level("nonsense"), log_level::info);
}

TEST_F(LoggingTest, StreamBuilderSkipsWorkWhenDisabled) {
    set_log_level(log_level::error);
    clog_capture capture;
    int evaluations = 0;
    auto expensive = [&] {
        ++evaluations;
        return std::string("x");
    };
    FS_LOG_INFO("m") << expensive();
    // The argument IS evaluated (C++ semantics), but nothing is emitted.
    EXPECT_EQ(evaluations, 1);
    EXPECT_TRUE(capture.text().empty());
}

}  // namespace
}  // namespace fallsense::util
