#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace fallsense::util {
namespace {

TEST(EnvTest, ParseRunScale) {
    EXPECT_EQ(parse_run_scale("tiny"), run_scale::tiny);
    EXPECT_EQ(parse_run_scale("quick"), run_scale::quick);
    EXPECT_EQ(parse_run_scale("full"), run_scale::full);
    EXPECT_EQ(parse_run_scale(""), run_scale::quick);
    EXPECT_EQ(parse_run_scale("bogus"), run_scale::quick);
}

TEST(EnvTest, ScaleNames) {
    EXPECT_STREQ(run_scale_name(run_scale::tiny), "tiny");
    EXPECT_STREQ(run_scale_name(run_scale::quick), "quick");
    EXPECT_STREQ(run_scale_name(run_scale::full), "full");
}

TEST(EnvTest, SeedDefaultsTo42) {
    ::unsetenv("FALLSENSE_SEED");
    EXPECT_EQ(env_seed(), 42u);
}

TEST(EnvTest, SeedReadsEnvironment) {
    ::setenv("FALLSENSE_SEED", "12345", 1);
    EXPECT_EQ(env_seed(), 12345u);
    ::unsetenv("FALLSENSE_SEED");
}

TEST(EnvTest, ScaleReadsEnvironment) {
    ::setenv("FALLSENSE_SCALE", "tiny", 1);
    EXPECT_EQ(env_run_scale(), run_scale::tiny);
    ::unsetenv("FALLSENSE_SCALE");
    EXPECT_EQ(env_run_scale(), run_scale::quick);
}

TEST(EnvTest, EnvStringEmptyWhenUnset) {
    ::unsetenv("FALLSENSE_BOGUS_VAR");
    EXPECT_TRUE(env_string("FALLSENSE_BOGUS_VAR").empty());
}

}  // namespace
}  // namespace fallsense::util
