#include "util/args.hpp"

#include <gtest/gtest.h>

namespace fallsense::util {
namespace {

arg_parser make_parser() {
    arg_parser p;
    p.add_flag("verbose");
    p.add_option("out");
    p.add_option("count");
    return p;
}

TEST(ArgsTest, ParsesFlagsOptionsAndPositionals) {
    arg_parser p = make_parser();
    p.parse({"--verbose", "--out", "file.bin", "pos1", "pos2"});
    EXPECT_TRUE(p.has_flag("verbose"));
    EXPECT_EQ(p.option_or("out", ""), "file.bin");
    EXPECT_EQ(p.positionals(), (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(ArgsTest, EqualsSyntax) {
    arg_parser p = make_parser();
    p.parse({"--out=path/with=equals"});
    EXPECT_EQ(p.option_or("out", ""), "path/with=equals");
}

TEST(ArgsTest, MissingOptionUsesFallback) {
    arg_parser p = make_parser();
    p.parse({});
    EXPECT_EQ(p.option_or("out", "default"), "default");
    EXPECT_FALSE(p.option("out").has_value());
    EXPECT_FALSE(p.has_flag("verbose"));
}

TEST(ArgsTest, NumericOptions) {
    arg_parser p = make_parser();
    p.parse({"--count", "42"});
    EXPECT_EQ(p.integer_or("count", 0), 42);
    EXPECT_DOUBLE_EQ(p.number_or("count", 0.0), 42.0);
}

TEST(ArgsTest, NumericParseFailureThrows) {
    arg_parser p = make_parser();
    p.parse({"--count", "forty"});
    EXPECT_THROW(p.integer_or("count", 0), std::invalid_argument);
    EXPECT_THROW(p.number_or("count", 0.0), std::invalid_argument);
}

TEST(ArgsTest, ParseLongAcceptsWholeIntegersOnly) {
    EXPECT_EQ(parse_long("42"), 42);
    EXPECT_EQ(parse_long("-7"), -7);
    EXPECT_EQ(parse_long("0"), 0);
    EXPECT_EQ(parse_long(""), std::nullopt);
    EXPECT_EQ(parse_long("forty"), std::nullopt);
    EXPECT_EQ(parse_long("42x"), std::nullopt);  // trailing junk rejected
    EXPECT_EQ(parse_long("4.2"), std::nullopt);
    EXPECT_EQ(parse_long(" 42"), std::nullopt);  // no whitespace trimming
}

TEST(ArgsTest, ParseDoubleAcceptsWholeNumbersOnly) {
    EXPECT_EQ(parse_double("0.65"), 0.65);
    EXPECT_EQ(parse_double("-3"), -3.0);
    EXPECT_EQ(parse_double("1e3"), 1000.0);
    EXPECT_EQ(parse_double(""), std::nullopt);
    EXPECT_EQ(parse_double("half"), std::nullopt);
    EXPECT_EQ(parse_double("0.5pt"), std::nullopt);  // trailing junk rejected
}

TEST(ArgsTest, UnknownArgumentThrows) {
    arg_parser p = make_parser();
    EXPECT_THROW(p.parse({"--bogus"}), std::invalid_argument);
}

TEST(ArgsTest, OptionWithoutValueThrows) {
    arg_parser p = make_parser();
    EXPECT_THROW(p.parse({"--out"}), std::invalid_argument);
}

TEST(ArgsTest, FlagWithValueThrows) {
    arg_parser p = make_parser();
    EXPECT_THROW(p.parse({"--verbose=1"}), std::invalid_argument);
}

TEST(ArgsTest, ArgvStyleParsing) {
    arg_parser p = make_parser();
    const char* argv[] = {"prog", "cmd", "--verbose", "x"};
    p.parse(4, argv, 2);
    EXPECT_TRUE(p.has_flag("verbose"));
    ASSERT_EQ(p.positionals().size(), 1u);
    EXPECT_EQ(p.positionals()[0], "x");
}

}  // namespace
}  // namespace fallsense::util
