#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace fallsense::util {
namespace {

TEST(StatsTest, MeanOfKnownValues) {
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(StatsTest, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(StatsTest, VarianceOfConstantIsZero) {
    const std::vector<double> v{5.0, 5.0, 5.0};
    EXPECT_DOUBLE_EQ(variance(v), 0.0);
}

TEST(StatsTest, VariancePopulationConvention) {
    const std::vector<double> v{1.0, 3.0};
    EXPECT_DOUBLE_EQ(variance(v), 1.0);  // ((1-2)^2 + (3-2)^2) / 2
}

TEST(StatsTest, StddevIsSqrtVariance) {
    const std::vector<double> v{0.0, 2.0, 4.0, 6.0};
    EXPECT_DOUBLE_EQ(stddev(v), std::sqrt(variance(v)));
}

TEST(StatsTest, MinMax) {
    const std::vector<double> v{3.0, -1.0, 7.0, 2.0};
    EXPECT_DOUBLE_EQ(min_value(v), -1.0);
    EXPECT_DOUBLE_EQ(max_value(v), 7.0);
}

TEST(StatsTest, MinMaxThrowOnEmpty) {
    EXPECT_THROW(min_value({}), std::invalid_argument);
    EXPECT_THROW(max_value({}), std::invalid_argument);
}

TEST(StatsTest, PercentileEndpoints) {
    const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
}

TEST(StatsTest, PercentileInterpolates) {
    const std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
}

TEST(StatsTest, PercentileUnsortedInput) {
    const std::vector<double> v{30.0, 10.0, 20.0};
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 20.0);
}

TEST(StatsTest, PercentileRejectsBadArgs) {
    const std::vector<double> v{1.0};
    EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
    EXPECT_THROW(percentile(v, -1.0), std::invalid_argument);
    EXPECT_THROW(percentile(v, 101.0), std::invalid_argument);
}

TEST(RunningStatsTest, MatchesBatchComputation) {
    const std::vector<double> v{1.5, 2.5, -3.0, 0.0, 7.25};
    running_stats rs;
    for (const double x : v) rs.add(x);
    EXPECT_EQ(rs.count(), v.size());
    EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
    EXPECT_NEAR(rs.variance(), variance(v), 1e-12);
    EXPECT_DOUBLE_EQ(rs.min(), -3.0);
    EXPECT_DOUBLE_EQ(rs.max(), 7.25);
}

TEST(RunningStatsTest, EmptyBehaviour) {
    running_stats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
    EXPECT_THROW(rs.min(), std::logic_error);
}

TEST(RunningStatsTest, SingleValue) {
    running_stats rs;
    rs.add(42.0);
    EXPECT_DOUBLE_EQ(rs.mean(), 42.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
    EXPECT_DOUBLE_EQ(rs.min(), 42.0);
    EXPECT_DOUBLE_EQ(rs.max(), 42.0);
}

}  // namespace
}  // namespace fallsense::util
