#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace fallsense::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
    rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
    rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64()) ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsStream) {
    rng a(99);
    const std::uint64_t first = a.next_u64();
    a.next_u64();
    a.reseed(99);
    EXPECT_EQ(a.next_u64(), first);
}

TEST(RngTest, UniformInUnitInterval) {
    rng gen(7);
    for (int i = 0; i < 10'000; ++i) {
        const double u = gen.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformRangeRespectsBounds) {
    rng gen(7);
    for (int i = 0; i < 1'000; ++i) {
        const double u = gen.uniform(-2.5, 3.5);
        EXPECT_GE(u, -2.5);
        EXPECT_LT(u, 3.5);
    }
}

TEST(RngTest, UniformMeanIsCentered) {
    rng gen(11);
    double sum = 0.0;
    constexpr int n = 100'000;
    for (int i = 0; i < n; ++i) sum += gen.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
    rng gen(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1'000; ++i) {
        const std::int64_t v = gen.uniform_int(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);  // all five values appear in 1000 draws
}

TEST(RngTest, UniformIntSingletonRange) {
    rng gen(5);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(gen.uniform_int(42, 42), 42);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
    rng gen(5);
    EXPECT_THROW(gen.uniform_int(3, 2), std::invalid_argument);
}

TEST(RngTest, NormalMomentsAreStandard) {
    rng gen(13);
    constexpr int n = 200'000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = gen.normal();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, NormalWithParamsScales) {
    rng gen(17);
    constexpr int n = 50'000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += gen.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, NormalRejectsNegativeStddev) {
    rng gen(17);
    EXPECT_THROW(gen.normal(0.0, -1.0), std::invalid_argument);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
    rng gen(19);
    int hits = 0;
    constexpr int n = 100'000;
    for (int i = 0; i < n; ++i) hits += gen.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliRejectsOutOfRange) {
    rng gen(19);
    EXPECT_THROW(gen.bernoulli(1.5), std::invalid_argument);
    EXPECT_THROW(gen.bernoulli(-0.1), std::invalid_argument);
}

TEST(RngTest, ShufflePreservesElements) {
    rng gen(23);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto shuffled = v;
    gen.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleActuallyPermutes) {
    rng gen(29);
    std::vector<int> v(64);
    for (int i = 0; i < 64; ++i) v[i] = i;
    auto shuffled = v;
    gen.shuffle(shuffled);
    EXPECT_NE(shuffled, v);
}

TEST(DeriveSeedTest, StableAndTagSensitive) {
    const auto s1 = derive_seed(42, {1, 2, 3});
    const auto s2 = derive_seed(42, {1, 2, 3});
    const auto s3 = derive_seed(42, {1, 2, 4});
    const auto s4 = derive_seed(43, {1, 2, 3});
    EXPECT_EQ(s1, s2);
    EXPECT_NE(s1, s3);
    EXPECT_NE(s1, s4);
}

TEST(DeriveSeedTest, StringTagsDiffer) {
    EXPECT_NE(derive_seed(42, "alpha"), derive_seed(42, "beta"));
    EXPECT_EQ(derive_seed(42, "alpha"), derive_seed(42, "alpha"));
}

TEST(DeriveSeedTest, OrderMatters) {
    EXPECT_NE(derive_seed(42, {1, 2}), derive_seed(42, {2, 1}));
}

}  // namespace
}  // namespace fallsense::util
