#include "util/check.hpp"

#include <gtest/gtest.h>

namespace fallsense::util {
namespace {

TEST(CheckTest, PassingConditionsAreSilent) {
    EXPECT_NO_THROW(FS_CHECK(1 + 1 == 2, "math"));
    EXPECT_NO_THROW(FS_ARG_CHECK(true, "fine"));
}

TEST(CheckTest, FailingCheckThrowsLogicError) {
    EXPECT_THROW(FS_CHECK(false, "boom"), std::logic_error);
}

TEST(CheckTest, FailingArgCheckThrowsInvalidArgument) {
    EXPECT_THROW(FS_ARG_CHECK(false, "bad arg"), std::invalid_argument);
}

TEST(CheckTest, MessageContainsExpressionAndContext) {
    try {
        FS_CHECK(2 < 1, "ordering violated");
        FAIL() << "expected throw";
    } catch (const std::logic_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("2 < 1"), std::string::npos);
        EXPECT_NE(what.find("ordering violated"), std::string::npos);
        EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
    }
}

}  // namespace
}  // namespace fallsense::util
