// The thread pool's contract: every index exactly once, static assignment,
// inline nesting, exception propagation, and chunk boundaries that depend
// only on the grain — never on the thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "util/thread_pool.hpp"

namespace fallsense {
namespace {

struct thread_guard {
    ~thread_guard() { util::set_global_threads(0); }
};

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
    thread_guard guard;
    util::set_global_threads(4);
    const std::size_t n = 1000;
    std::vector<int> hits(n, 0);
    util::parallel_for(0, n, 8, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForHonorsBeginOffset) {
    std::vector<int> hits(20, 0);
    util::parallel_for(5, 15, 2, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < 20; ++i) ASSERT_EQ(hits[i], (i >= 5 && i < 15) ? 1 : 0);
}

TEST(ThreadPoolTest, ExceptionInTaskPropagatesToCaller) {
    thread_guard guard;
    util::set_global_threads(4);
    EXPECT_THROW(util::parallel_for(0, 100, 1,
                                    [&](std::size_t i) {
                                        if (i == 37) throw std::runtime_error("task 37");
                                    }),
                 std::runtime_error);
}

TEST(ThreadPoolTest, NestedRegionsRunInlineWithoutDeadlock) {
    thread_guard guard;
    util::set_global_threads(4);
    std::atomic<int> inner_total{0};
    std::atomic<bool> saw_region_flag{false};
    util::parallel_for(0, 8, 1, [&](std::size_t) {
        if (util::thread_pool::in_parallel_region()) saw_region_flag = true;
        util::parallel_for(0, 10, 1, [&](std::size_t) { ++inner_total; });
    });
    EXPECT_EQ(inner_total.load(), 80);
    EXPECT_TRUE(saw_region_flag.load());
    EXPECT_FALSE(util::thread_pool::in_parallel_region());
}

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount) {
    thread_guard guard;
    using chunk = std::tuple<std::size_t, std::size_t, std::size_t>;
    auto collect = [&](std::size_t threads) {
        util::set_global_threads(threads);
        std::mutex mu;
        std::vector<chunk> chunks;
        util::parallel_for_chunks(0, 1003, 97,
                                  [&](std::size_t ci, std::size_t lo, std::size_t hi) {
                                      std::lock_guard<std::mutex> lock(mu);
                                      chunks.emplace_back(ci, lo, hi);
                                  });
        std::sort(chunks.begin(), chunks.end());
        return chunks;
    };
    const std::vector<chunk> one = collect(1);
    const std::vector<chunk> four = collect(4);
    ASSERT_EQ(one.size(), (1003 + 96) / 97u);
    ASSERT_EQ(one, four);
    // Every chunk is exactly the grain except the ragged tail.
    for (std::size_t i = 0; i < one.size(); ++i) {
        const auto [ci, lo, hi] = one[i];
        EXPECT_EQ(ci, i);
        EXPECT_EQ(lo, i * 97);
        EXPECT_EQ(hi, std::min<std::size_t>(1003, lo + 97));
    }
}

TEST(ThreadPoolTest, SetGlobalThreadsResizesPool) {
    thread_guard guard;
    util::set_global_threads(3);
    EXPECT_EQ(util::global_thread_count(), 3u);
    util::set_global_threads(1);
    EXPECT_EQ(util::global_thread_count(), 1u);
    util::set_global_threads(0);  // back to the FALLSENSE_THREADS / hw default
    EXPECT_GE(util::global_thread_count(), 1u);
    EXPECT_EQ(util::global_thread_count(), util::env_thread_count());
}

TEST(ThreadPoolTest, EmptyAndSingleRangesRunInline) {
    int calls = 0;
    util::parallel_for(4, 4, 1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    util::parallel_for(4, 5, 1, [&](std::size_t i) {
        ++calls;
        EXPECT_EQ(i, 4u);
    });
    EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace fallsense
