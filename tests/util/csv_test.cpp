#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace fallsense::util {
namespace {

TEST(CsvTest, ParseWithHeader) {
    const csv_table t = parse_csv("a,b,c\n1,2,3\n4,5,6\n", true);
    ASSERT_EQ(t.header.size(), 3u);
    EXPECT_EQ(t.header[1], "b");
    ASSERT_EQ(t.rows.size(), 2u);
    EXPECT_EQ(t.rows[1][2], "6");
}

TEST(CsvTest, ParseWithoutHeader) {
    const csv_table t = parse_csv("1,2\n3,4\n", false);
    EXPECT_TRUE(t.header.empty());
    ASSERT_EQ(t.rows.size(), 2u);
}

TEST(CsvTest, SkipsEmptyLines) {
    const csv_table t = parse_csv("a,b\n\n1,2\n\n", true);
    EXPECT_EQ(t.rows.size(), 1u);
}

TEST(CsvTest, HandlesCrLf) {
    const csv_table t = parse_csv("a,b\r\n1,2\r\n", true);
    ASSERT_EQ(t.rows.size(), 1u);
    EXPECT_EQ(t.rows[0][1], "2");
}

TEST(CsvTest, ColumnIndexLookup) {
    const csv_table t = parse_csv("x,y,z\n1,2,3\n", true);
    EXPECT_EQ(t.column_index("z"), 2u);
    EXPECT_THROW(t.column_index("w"), std::out_of_range);
}

TEST(CsvTest, NumberAtParsesDoubles) {
    const csv_table t = parse_csv("v\n-1.5\n2.25e2\n", true);
    EXPECT_DOUBLE_EQ(t.number_at(0, 0), -1.5);
    EXPECT_DOUBLE_EQ(t.number_at(1, 0), 225.0);
}

TEST(CsvTest, NumberAtRejectsGarbage) {
    const csv_table t = parse_csv("v\nabc\n", true);
    EXPECT_THROW(t.number_at(0, 0), std::runtime_error);
}

TEST(CsvTest, NumberAtRangeChecks) {
    const csv_table t = parse_csv("v\n1\n", true);
    EXPECT_THROW(t.number_at(1, 0), std::invalid_argument);
    EXPECT_THROW(t.number_at(0, 1), std::invalid_argument);
}

TEST(CsvTest, RoundTripThroughText) {
    const std::vector<std::string> header{"a", "b"};
    const std::vector<std::vector<std::string>> rows{{"1", "2"}, {"3", "4"}};
    const csv_table t = parse_csv(to_csv(header, rows), true);
    EXPECT_EQ(t.header, header);
    EXPECT_EQ(t.rows, rows);
}

TEST(CsvTest, FileRoundTrip) {
    const auto path = std::filesystem::temp_directory_path() / "fallsense_csv_test.csv";
    write_csv_file(path, {"x"}, {{"1.5"}, {"2.5"}});
    const csv_table t = read_csv_file(path, true);
    EXPECT_DOUBLE_EQ(t.number_at(1, 0), 2.5);
    std::filesystem::remove(path);
}

TEST(CsvTest, MissingFileThrows) {
    EXPECT_THROW(read_csv_file("/nonexistent/path/file.csv", true), std::runtime_error);
}

}  // namespace
}  // namespace fallsense::util
