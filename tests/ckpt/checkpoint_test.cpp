// Codec-level tests for the v1 checkpoint byte format: the CRC vector,
// round-trips, the golden worked example from docs/checkpoint.md, and the
// malformed-input table (every decode_status reachable, truncation at
// every byte boundary, nothing read out of bounds).
#include "ckpt/checkpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "ckpt/store.hpp"
#include "data/synthesizer.hpp"
#include "serve/scorer_factory.hpp"

namespace fallsense::ckpt {
namespace {

float freefall_scorer(std::span<const float> window) {
    double mag = 0.0;
    const std::size_t n = window.size() / core::k_feature_channels;
    for (std::size_t i = n / 2; i < n; ++i) {
        const float ax = window[i * 9 + 0];
        const float ay = window[i * 9 + 1];
        const float az = window[i * 9 + 2];
        mag += std::sqrt(static_cast<double>(ax) * ax + ay * ay + az * az);
    }
    mag /= static_cast<double>(n - n / 2);
    return static_cast<float>(std::clamp(1.3 - mag, 0.0, 1.0));
}

std::unique_ptr<serve::batch_scorer> freefall() {
    serve::scorer_spec spec;
    spec.backend = serve::scorer_backend::callback;
    spec.window_samples = 20;
    spec.callback = freefall_scorer;
    spec.label = "freefall";
    return serve::make_scorer(spec);
}

serve::fleet_config make_config(std::size_t shards = 2) {
    serve::fleet_config c;
    c.engine.detector.window_samples = 20;
    c.engine.detector.overlap_fraction = 0.5;
    c.engine.detector.threshold = 0.65;
    c.engine.queue_capacity = 4;
    c.shards = shards;
    return c;
}

data::trial make_trial(int task, std::uint64_t seed) {
    util::rng gen(seed);
    data::subject_profile subject;
    subject.id = 1;
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.5;
    tuning.locomotion_s = 2.0;
    tuning.post_fall_hold_s = 1.0;
    return data::synthesize_task(task, subject, tuning, data::synthesis_config{}, gen);
}

/// A snapshot with real mileage on it: churned sessions (evicted ids in
/// the routing table), queued samples, warm filter/ring state, and a
/// hand-planted obs image.
fleet_snapshot populated_snapshot() {
    serve::fleet_router fleet(make_config(), freefall());
    std::vector<data::trial> trials = {make_trial(20, 7), make_trial(6, 8),
                                       make_trial(1, 9)};
    std::vector<serve::session_id> ids;
    for (std::size_t i = 0; i < trials.size(); ++i) ids.push_back(fleet.create_session());
    std::vector<std::size_t> cursors(trials.size(), 0);
    for (std::size_t t = 0; t < 25; ++t) {
        for (std::size_t i = 0; i < trials.size(); ++i) {
            if (!fleet.is_live(ids[i])) continue;
            const auto& samples = trials[i].samples;
            fleet.feed(ids[i], samples[cursors[i]++ % samples.size()]);
            fleet.feed(ids[i], samples[cursors[i]++ % samples.size()]);
        }
        fleet.tick();
        if (t == 9) fleet.evict_session(ids[1]);  // leave a hole in the table
    }
    fleet.swap_scorer(freefall());
    fleet_snapshot snap = capture(fleet);
    snap.obs.counters.emplace_back("serve/ticks", 25);
    snap.obs.counters.emplace_back("serve/triggers", 2);
    snap.obs.gauges.emplace_back("serve/live_sessions", 2.0);
    snap.obs.stage_counts.emplace_back("ingest", 25);
    return snap;
}

TEST(CheckpointCodecTest, Crc32MatchesTheStandardCheckVector) {
    const std::string check = "123456789";
    const std::span<const std::uint8_t> bytes{
        reinterpret_cast<const std::uint8_t*>(check.data()), check.size()};
    EXPECT_EQ(crc32(bytes), 0xCBF43926u);
    EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(CheckpointCodecTest, EncodeDecodeRoundTripsANontrivialSnapshot) {
    const fleet_snapshot snap = populated_snapshot();
    ASSERT_GE(snap.fleet.sessions.size(), 2u);
    ASSERT_GT(snap.fleet.live.size(), snap.fleet.sessions.size());  // evicted hole

    const std::vector<std::uint8_t> bytes = encode_snapshot(snap);
    fleet_snapshot decoded;
    ASSERT_EQ(decode_snapshot(bytes, decoded), decode_status::ok);

    EXPECT_EQ(decoded.config, snap.config);
    EXPECT_EQ(decoded.fleet.ticks, snap.fleet.ticks);
    EXPECT_EQ(decoded.fleet.swap_generation, snap.fleet.swap_generation);
    EXPECT_EQ(decoded.fleet.shard_count, snap.fleet.shard_count);
    EXPECT_EQ(decoded.fleet.live, snap.fleet.live);
    EXPECT_EQ(decoded.obs.counters, snap.obs.counters);
    EXPECT_EQ(decoded.obs.gauges, snap.obs.gauges);
    EXPECT_EQ(decoded.obs.stage_counts, snap.obs.stage_counts);
    // Field-by-field equality is already pinned above for everything with
    // an operator==; the sessions round-trip is pinned bit-exactly by
    // re-encoding the decoded value.
    EXPECT_EQ(encode_snapshot(decoded), bytes);
}

// --- the golden worked example from docs/checkpoint.md ------------------

/// Exactly the snapshot docs/checkpoint.md walks through byte by byte: a
/// 1-shard fleet at tick 3 after one swap, two sessions admitted and both
/// evicted, and a single obs counter.  Keep in lockstep with the doc.
fleet_snapshot doc_example_snapshot() {
    fleet_snapshot snap;
    snap.config.window_samples = 2;
    snap.config.overlap_fraction = 0.5;
    snap.config.threshold = 0.65;
    snap.config.consecutive_required = 1;
    snap.config.sample_rate_hz = 25.0;
    snap.config.filter_order = 2;
    snap.config.cutoff_hz = 7.6;
    snap.config.gyro_weight = 0.02;
    snap.config.queue_capacity = 4;
    snap.config.drop_policy = 1;
    snap.config.samples_per_tick = 1;
    snap.config.max_samples_per_tick = 0;
    snap.config.drain_watermark = 0;
    snap.fleet.ticks = 3;
    snap.fleet.swap_generation = 1;
    snap.fleet.shard_count = 1;
    snap.fleet.live = {0, 0};
    serve::session_stats retired;
    retired.accepted = 6;
    retired.dropped = 0;
    retired.rejected = 1;
    retired.ingested = 6;
    retired.windows_scored = 2;
    retired.triggers = 1;
    snap.fleet.retired = {retired};
    snap.obs.counters.emplace_back("serve/ticks", 3);
    return snap;
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
    std::string hex;
    hex.reserve(bytes.size() * 2);
    for (const std::uint8_t b : bytes) {
        char buf[3];
        std::snprintf(buf, sizeof(buf), "%02x", b);
        hex += buf;
    }
    return hex;
}

// The encoding of doc_example_snapshot(), verbatim from the worked example
// in docs/checkpoint.md.  If this test breaks, the format changed: bump
// k_checkpoint_version and rewrite the doc — never silently re-golden.
constexpr const char* k_doc_example_hex =
    "4653434b01000400"                  // file header: FSCK v1 res=0 sections=4
    "4d4554419100000071ac4e9c"          // META len=0x91 crc
    "0300000000000000"                  // ticks=3
    "0100000000000000"                  // swap_generation=1
    "01000000"                          // shard_count=1
    "02000000"                          // total_sessions=2
    "00000000"                          // live_sessions=0
    "02000000"                          // window_samples=2
    "000000000000e03f"                  // overlap_fraction=0.5
    "cdcccccccccce43f"                  // threshold=0.65
    "01000000"                          // consecutive_required=1
    "0000000000003940"                  // sample_rate_hz=25.0
    "02000000"                          // filter_order=2
    "6666666666661e40"                  // cutoff_hz=7.6
    "7b14ae47e17a943f"                  // gyro_weight=0.02
    "04000000"                          // queue_capacity=4
    "01"                                // drop_policy=1 (drop-oldest)
    "01000000"                          // samples_per_tick=1
    "00000000"                          // max_samples_per_tick=0
    "00000000"                          // drain_watermark=0
    "0600000000000000"                  // retired[0].accepted=6
    "0000000000000000"                  // retired[0].dropped=0
    "0100000000000000"                  // retired[0].rejected=1
    "0600000000000000"                  // retired[0].ingested=6
    "0200000000000000"                  // retired[0].windows_scored=2
    "0100000000000000"                  // retired[0].triggers=1
    "524f555402000000ff12d941"          // ROUT len=2 crc
    "0000"                              // live flags: both evicted
    "534553530000000000000000"          // SESS len=0 crc(empty)=0
    "4f42534321000000a354f10f"          // OBSC len=0x21 crc
    "01000000"                          // counter count=1
    "0b00"                              // name len=11
    "73657276652f7469636b73"            // "serve/ticks"
    "0300000000000000"                  // value=3
    "00000000"                          // gauge count=0
    "00000000";                         // stage count=0

TEST(CheckpointCodecTest, GoldenBytesMatchTheDocWorkedExample) {
    const std::vector<std::uint8_t> bytes = encode_snapshot(doc_example_snapshot());
    EXPECT_EQ(to_hex(bytes), k_doc_example_hex);
    fleet_snapshot decoded;
    ASSERT_EQ(decode_snapshot(bytes, decoded), decode_status::ok);
    EXPECT_EQ(decoded.fleet.ticks, 3u);
    EXPECT_EQ(decoded.fleet.live, (std::vector<std::uint8_t>{0, 0}));
}

// --- malformed-input table ---------------------------------------------

/// Patch one payload byte and re-frame its section CRC so the corruption
/// reaches the payload parser instead of tripping the CRC gate.
void patch_payload_byte(std::vector<std::uint8_t>& bytes, std::size_t section_start,
                        std::size_t payload_offset, std::uint8_t value) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
        len |= static_cast<std::uint32_t>(bytes[section_start + 4 + i]) << (8 * i);
    }
    ASSERT_LT(payload_offset, len);
    const std::size_t payload = section_start + k_section_header_bytes;
    bytes[payload + payload_offset] = value;
    const std::uint32_t crc =
        crc32(std::span<const std::uint8_t>{bytes.data() + payload, len});
    for (int i = 0; i < 4; ++i) {
        bytes[section_start + 8 + i] = static_cast<std::uint8_t>((crc >> (8 * i)) & 0xff);
    }
}

TEST(CheckpointCodecTest, EveryStrictPrefixDecodesAsTruncated) {
    const std::vector<std::uint8_t> full = encode_snapshot(doc_example_snapshot());
    for (std::size_t len = 0; len < full.size(); ++len) {
        fleet_snapshot out;
        const std::span<const std::uint8_t> prefix{full.data(), len};
        EXPECT_EQ(decode_snapshot(prefix, out), decode_status::truncated)
            << "prefix length " << len;
    }
}

TEST(CheckpointCodecTest, MalformedInputsMapToTheirStatuses) {
    const std::vector<std::uint8_t> good = encode_snapshot(doc_example_snapshot());
    fleet_snapshot out;

    {  // wrong magic
        std::vector<std::uint8_t> b = good;
        b[0] = 'X';
        EXPECT_EQ(decode_snapshot(b, out), decode_status::bad_magic);
    }
    {  // future version
        std::vector<std::uint8_t> b = good;
        b[4] = 2;
        EXPECT_EQ(decode_snapshot(b, out), decode_status::bad_version);
    }
    {  // reserved byte set
        std::vector<std::uint8_t> b = good;
        b[5] = 1;
        EXPECT_EQ(decode_snapshot(b, out), decode_status::bad_payload);
    }
    {  // wrong section count
        std::vector<std::uint8_t> b = good;
        b[6] = 3;
        EXPECT_EQ(decode_snapshot(b, out), decode_status::bad_section);
    }
    {  // wrong first tag ("META" -> "XETA")
        std::vector<std::uint8_t> b = good;
        b[k_file_header_bytes] = 'X';
        EXPECT_EQ(decode_snapshot(b, out), decode_status::bad_section);
    }
    {  // payload bit flip without re-framing the CRC
        std::vector<std::uint8_t> b = good;
        b[k_file_header_bytes + k_section_header_bytes] ^= 0x01;
        EXPECT_EQ(decode_snapshot(b, out), decode_status::bad_crc);
    }
    {  // trailing garbage after the last section
        std::vector<std::uint8_t> b = good;
        b.push_back(0);
        EXPECT_EQ(decode_snapshot(b, out), decode_status::bad_payload);
    }
    {  // well-framed but nonsense content: drop_policy=9, CRC fixed up
        std::vector<std::uint8_t> b = good;
        // drop_policy sits after the 28-byte fleet prefix and 56 bytes of
        // fingerprint fields inside META (docs/checkpoint.md field table).
        patch_payload_byte(b, k_file_header_bytes, 28 + 56, 9);
        EXPECT_EQ(decode_snapshot(b, out), decode_status::bad_payload);
    }
    {  // live flag out of range, CRC fixed up (ROUT follows META)
        std::vector<std::uint8_t> b = good;
        std::uint32_t meta_len = 0;
        for (int i = 0; i < 4; ++i) {
            meta_len |= static_cast<std::uint32_t>(b[k_file_header_bytes + 4 + i]) << (8 * i);
        }
        const std::size_t rout = k_file_header_bytes + k_section_header_bytes + meta_len;
        patch_payload_byte(b, rout, 0, 2);
        EXPECT_EQ(decode_snapshot(b, out), decode_status::bad_payload);
    }

    // A failed decode consumes nothing and poisons nothing: the pristine
    // buffer still decodes cleanly afterwards.
    EXPECT_EQ(decode_snapshot(good, out), decode_status::ok);
}

TEST(CheckpointCodecTest, EncodedSectionCrcsVerifyIndependently) {
    const std::vector<std::uint8_t> bytes = encode_snapshot(populated_snapshot());
    std::size_t cursor = k_file_header_bytes;
    for (int s = 0; s < 4; ++s) {
        ASSERT_LE(cursor + k_section_header_bytes, bytes.size());
        std::uint32_t len = 0;
        std::uint32_t stored = 0;
        for (int i = 0; i < 4; ++i) {
            len |= static_cast<std::uint32_t>(bytes[cursor + 4 + i]) << (8 * i);
            stored |= static_cast<std::uint32_t>(bytes[cursor + 8 + i]) << (8 * i);
        }
        cursor += k_section_header_bytes;
        ASSERT_LE(cursor + len, bytes.size());
        EXPECT_EQ(crc32(std::span<const std::uint8_t>{bytes.data() + cursor, len}), stored);
        cursor += len;
    }
    EXPECT_EQ(cursor, bytes.size());
}

}  // namespace
}  // namespace fallsense::ckpt
