// State-level checkpoint tests: snapshot/restore bit-parity, kill/restore
// through the loadgen hooks, deterministic rebalance, obs-manifest parity,
// and the file store's failure modes.
#include "ckpt/store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "data/synthesizer.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "serve/loadgen.hpp"
#include "serve/scorer_factory.hpp"

namespace fallsense::ckpt {
namespace {

float freefall_scorer(std::span<const float> window) {
    double mag = 0.0;
    const std::size_t n = window.size() / core::k_feature_channels;
    for (std::size_t i = n / 2; i < n; ++i) {
        const float ax = window[i * 9 + 0];
        const float ay = window[i * 9 + 1];
        const float az = window[i * 9 + 2];
        mag += std::sqrt(static_cast<double>(ax) * ax + ay * ay + az * az);
    }
    mag /= static_cast<double>(n - n / 2);
    return static_cast<float>(std::clamp(1.3 - mag, 0.0, 1.0));
}

std::unique_ptr<serve::batch_scorer> freefall() {
    serve::scorer_spec spec;
    spec.backend = serve::scorer_backend::callback;
    spec.window_samples = 20;
    spec.callback = freefall_scorer;
    spec.label = "freefall";
    return serve::make_scorer(spec);
}

serve::fleet_config make_config(std::size_t shards = 2) {
    serve::fleet_config c;
    c.engine.detector.window_samples = 20;
    c.engine.detector.overlap_fraction = 0.5;
    c.engine.detector.threshold = 0.65;
    c.engine.queue_capacity = 4;
    c.shards = shards;
    return c;
}

data::trial make_trial(int task, std::uint64_t seed) {
    util::rng gen(seed);
    data::subject_profile subject;
    subject.id = 1;
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.5;
    tuning.locomotion_s = 2.0;
    tuning.post_fall_hold_s = 1.0;
    return data::synthesize_task(task, subject, tuning, data::synthesis_config{}, gen);
}

using trigger_key = std::tuple<serve::session_id, std::size_t, float>;

void collect(const serve::tick_result& result, std::vector<trigger_key>& out) {
    for (const serve::trigger_event& e : result.triggers) {
        out.emplace_back(e.session, e.sample_index, e.probability);
    }
}

struct fixed_traffic {
    std::vector<data::trial> trials = {make_trial(20, 31), make_trial(6, 32),
                                       make_trial(13, 33), make_trial(1, 34)};
    std::vector<std::size_t> cursors = std::vector<std::size_t>(4, 0);

    /// Feed every session two samples, advancing shared cursors — the
    /// same byte stream regardless of which fleet object consumes it.
    void feed_tick(serve::fleet_router& fleet, const std::vector<serve::session_id>& ids) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
            const auto& samples = trials[i].samples;
            fleet.feed(ids[i], samples[cursors[i]++ % samples.size()]);
            fleet.feed(ids[i], samples[cursors[i]++ % samples.size()]);
        }
    }
};

std::string temp_path(const char* name) {
    return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SnapshotRestoreTest, RestoredFleetContinuesBitIdentically) {
    // Reference: 60 uninterrupted ticks.
    fixed_traffic ref_traffic;
    std::vector<trigger_key> ref_triggers;
    serve::engine_stats ref_totals;
    {
        serve::fleet_router fleet(make_config(), freefall());
        std::vector<serve::session_id> ids;
        for (std::size_t i = 0; i < 4; ++i) ids.push_back(fleet.create_session());
        for (std::size_t t = 0; t < 60; ++t) {
            ref_traffic.feed_tick(fleet, ids);
            collect(fleet.tick(), ref_triggers);
        }
        ref_totals = fleet.totals();
    }

    // Interrupted: 30 ticks, capture, restore into a FRESH router (which
    // already holds unrelated sessions — restore must discard them), then
    // the remaining 30 ticks of the same traffic.
    fixed_traffic traffic;
    std::vector<trigger_key> triggers;
    serve::engine_stats totals;
    {
        fleet_snapshot snap;
        {
            serve::fleet_router fleet(make_config(), freefall());
            std::vector<serve::session_id> ids;
            for (std::size_t i = 0; i < 4; ++i) ids.push_back(fleet.create_session());
            for (std::size_t t = 0; t < 30; ++t) {
                traffic.feed_tick(fleet, ids);
                collect(fleet.tick(), triggers);
            }
            snap = capture(fleet);
        }
        serve::fleet_router fleet(make_config(), freefall());
        fleet.create_session();  // pre-restore state that must not survive
        restore(fleet, snap);
        EXPECT_EQ(fleet.live_session_count(), 4u);
        EXPECT_EQ(fleet.totals().ticks, 30u);
        std::vector<serve::session_id> ids = {0, 1, 2, 3};
        for (std::size_t t = 30; t < 60; ++t) {
            traffic.feed_tick(fleet, ids);
            collect(fleet.tick(), triggers);
        }
        totals = fleet.totals();
    }

    EXPECT_EQ(triggers, ref_triggers);
    EXPECT_EQ(totals.accepted, ref_totals.accepted);
    EXPECT_EQ(totals.rejected, ref_totals.rejected);
    EXPECT_EQ(totals.ingested, ref_totals.ingested);
    EXPECT_EQ(totals.windows_scored, ref_totals.windows_scored);
    EXPECT_EQ(totals.triggers, ref_totals.triggers);
}

TEST(SnapshotRestoreTest, RebalancedRestoreMatchesAFreshShardCount) {
    // 4-shard fleet snapshotted mid-run and restored into 8 shards must
    // continue exactly like a fleet that was 8-sharded from tick 0.
    fixed_traffic ref_traffic;
    std::vector<trigger_key> ref_triggers;
    {
        serve::fleet_router fleet(make_config(8), freefall());
        std::vector<serve::session_id> ids;
        for (std::size_t i = 0; i < 4; ++i) ids.push_back(fleet.create_session());
        for (std::size_t t = 0; t < 60; ++t) {
            ref_traffic.feed_tick(fleet, ids);
            collect(fleet.tick(), ref_triggers);
        }
    }

    fixed_traffic traffic;
    std::vector<trigger_key> triggers;
    fleet_snapshot snap;
    {
        serve::fleet_router fleet(make_config(4), freefall());
        std::vector<serve::session_id> ids;
        for (std::size_t i = 0; i < 4; ++i) ids.push_back(fleet.create_session());
        for (std::size_t t = 0; t < 30; ++t) {
            traffic.feed_tick(fleet, ids);
            collect(fleet.tick(), triggers);
        }
        snap = capture(fleet);
    }
    serve::fleet_router fleet(make_config(8), freefall());
    restore(fleet, snap);  // current shard count (8) wins: a rebalance
    EXPECT_EQ(fleet.shard_count(), 8u);
    std::vector<serve::session_id> ids = {0, 1, 2, 3};
    for (std::size_t t = 30; t < 60; ++t) {
        traffic.feed_tick(fleet, ids);
        collect(fleet.tick(), triggers);
    }
    EXPECT_EQ(triggers, ref_triggers);
}

TEST(SnapshotRestoreTest, InPlaceRebalanceMatchesAFreshShardCount) {
    fixed_traffic ref_traffic;
    std::vector<trigger_key> ref_triggers;
    {
        serve::fleet_router fleet(make_config(8), freefall());
        std::vector<serve::session_id> ids;
        for (std::size_t i = 0; i < 4; ++i) ids.push_back(fleet.create_session());
        for (std::size_t t = 0; t < 60; ++t) {
            ref_traffic.feed_tick(fleet, ids);
            collect(fleet.tick(), ref_triggers);
        }
    }

    fixed_traffic traffic;
    std::vector<trigger_key> triggers;
    serve::fleet_router fleet(make_config(4), freefall());
    std::vector<serve::session_id> ids;
    for (std::size_t i = 0; i < 4; ++i) ids.push_back(fleet.create_session());
    for (std::size_t t = 0; t < 30; ++t) {
        traffic.feed_tick(fleet, ids);
        collect(fleet.tick(), triggers);
    }
    fleet.rebalance(8);
    EXPECT_EQ(fleet.shard_count(), 8u);
    for (std::size_t t = 30; t < 60; ++t) {
        traffic.feed_tick(fleet, ids);
        collect(fleet.tick(), triggers);
    }
    EXPECT_EQ(triggers, ref_triggers);
}

TEST(SnapshotRestoreTest, LoadgenKillRestoreReplaysToTheSameSummary) {
    // The full operational drill through the serve-layer hooks: churn,
    // saturation, a mid-run scorer swap, a snapshot at tick 40, and a
    // resumed run that must reproduce the uninterrupted summary verbatim.
    serve::loadgen_config config;
    config.sessions = 6;
    config.ticks = 80;
    config.seed = 11;
    config.feed_rate = 2;
    config.churn_every_ticks = 10;
    config.shards = 2;
    config.swap_after_ticks = 25;
    config.scorer.backend = serve::scorer_backend::callback;
    config.scorer.callback = freefall_scorer;
    config.scorer.label = "freefall";
    config.engine.detector.window_samples = 20;
    config.engine.detector.overlap_fraction = 0.5;
    config.engine.detector.threshold = 0.65;
    config.engine.queue_capacity = 8;

    const std::string reference = serve::run_loadgen(config).deterministic_summary();

    const std::string path = temp_path("fallsense_ckpt_loadgen_test.bin");
    serve::loadgen_config first = config;
    first.ticks = 40;
    first.snapshot_every_ticks = 40;
    first.snapshot_sink = [&path](const serve::fleet_router& fleet) {
        snapshot_to_file(fleet, path);
    };
    serve::run_loadgen(first);

    serve::loadgen_config second = config;  // ticks back at the TOTAL (80)
    second.restore = [&path](serve::fleet_router& fleet) { restore_from_file(fleet, path); };
    const std::string resumed = serve::run_loadgen(second).deterministic_summary();

    EXPECT_EQ(resumed, reference);
    std::filesystem::remove(path);
}

TEST(SnapshotRestoreTest, ObsManifestSurvivesARestoreAcrossProcessReset) {
    // The deterministic manifest of run-then-restore must equal the
    // uninterrupted run's: the snapshot's obs image carries the first
    // half's counters across the obs::reset() standing in for a process
    // exit.  capture/restore are used directly (not the *_to_file
    // wrappers) so no ckpt/* counters enter the comparison.
    fixed_traffic ref_traffic;
    std::string ref_manifest;
    {
        obs::reset();
        obs::set_enabled(true);
        serve::fleet_router fleet(make_config(), freefall());
        std::vector<serve::session_id> ids;
        for (std::size_t i = 0; i < 4; ++i) ids.push_back(fleet.create_session());
        for (std::size_t t = 0; t < 40; ++t) {
            ref_traffic.feed_tick(fleet, ids);
            fleet.tick();
        }
        ref_manifest = obs::manifest_json(obs::run_manifest{}, obs::snapshot());
        obs::set_enabled(false);
    }

    fixed_traffic traffic;
    fleet_snapshot snap;
    {
        obs::reset();
        obs::set_enabled(true);
        serve::fleet_router fleet(make_config(), freefall());
        std::vector<serve::session_id> ids;
        for (std::size_t i = 0; i < 4; ++i) ids.push_back(fleet.create_session());
        for (std::size_t t = 0; t < 20; ++t) {
            traffic.feed_tick(fleet, ids);
            fleet.tick();
        }
        snap = capture(fleet);
        obs::set_enabled(false);
    }
    ASSERT_FALSE(snap.obs.counters.empty());

    std::string manifest;
    {
        obs::reset();  // the process died; the registry starts cold
        obs::set_enabled(true);
        serve::fleet_router fleet(make_config(), freefall());
        restore(fleet, snap);
        std::vector<serve::session_id> ids = {0, 1, 2, 3};
        for (std::size_t t = 20; t < 40; ++t) {
            traffic.feed_tick(fleet, ids);
            fleet.tick();
        }
        manifest = obs::manifest_json(obs::run_manifest{}, obs::snapshot());
        obs::set_enabled(false);
    }
    EXPECT_EQ(manifest, ref_manifest);
}

TEST(SnapshotRestoreTest, SessionHandoffsCarryNextSequences) {
    serve::fleet_router fleet(make_config(), freefall());
    std::vector<serve::session_id> ids;
    for (std::size_t i = 0; i < 3; ++i) ids.push_back(fleet.create_session());
    const data::trial trial = make_trial(20, 51);
    for (std::size_t t = 0; t < 10; ++t) {
        for (const serve::session_id id : ids) {
            fleet.feed(id, trial.samples[t % trial.samples.size()]);
        }
        fleet.tick();
    }
    fleet.evict_session(ids[1]);
    const fleet_snapshot snap = capture(fleet);

    const std::vector<session_handoff> handoffs = session_handoffs(snap);
    ASSERT_EQ(handoffs.size(), 2u);
    EXPECT_EQ(handoffs[0].session, ids[0]);
    EXPECT_EQ(handoffs[1].session, ids[2]);
    for (const session_handoff& h : handoffs) {
        const serve::session_stats& s = fleet.stats(h.session);
        EXPECT_EQ(h.next_sequence,
                  static_cast<std::uint32_t>(s.accepted + s.rejected));
    }
}

TEST(SnapshotRestoreTest, FileStoreRoundTripsAndRejectsGarbage) {
    const std::string path = temp_path("fallsense_ckpt_store_test.bin");
    serve::fleet_router fleet(make_config(), freefall());
    fleet.create_session();
    const data::trial trial = make_trial(6, 61);
    for (std::size_t t = 0; t < 8; ++t) {
        fleet.feed(0, trial.samples[t]);
        fleet.tick();
    }

    const fleet_snapshot written = capture(fleet);
    const std::size_t bytes = write_snapshot_file(path, written);
    EXPECT_EQ(std::filesystem::file_size(path), bytes);
    const fleet_snapshot read = read_snapshot_file(path);
    EXPECT_EQ(encode_snapshot(read), encode_snapshot(written));

    EXPECT_THROW(read_snapshot_file(path + ".does-not-exist"), checkpoint_error);

    std::ofstream(path, std::ios::binary | std::ios::trunc) << "not a checkpoint";
    EXPECT_THROW(read_snapshot_file(path), checkpoint_error);
    std::filesystem::remove(path);
}

TEST(SnapshotRestoreTest, RestoreRefusesAMismatchedFingerprint) {
    serve::fleet_router source(make_config(), freefall());
    source.create_session();
    source.tick();
    const fleet_snapshot snap = capture(source);

    serve::fleet_config other = make_config();
    other.engine.detector.window_samples = 40;  // different detector shape
    serve::scorer_spec spec;
    spec.backend = serve::scorer_backend::callback;
    spec.window_samples = 40;
    spec.callback = freefall_scorer;
    spec.label = "freefall";
    serve::fleet_router target(other, serve::make_scorer(spec));
    EXPECT_THROW(restore(target, snap), checkpoint_error);
}

}  // namespace
}  // namespace fallsense::ckpt
