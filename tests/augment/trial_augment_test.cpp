#include "augment/trial_augment.hpp"

#include <gtest/gtest.h>

#include "data/synthesizer.hpp"

namespace fallsense::augment {
namespace {

data::trial make_fall_trial(std::uint64_t seed) {
    util::rng gen(seed);
    data::subject_profile subject;
    subject.id = 1;
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.0;
    tuning.locomotion_s = 1.5;
    tuning.post_fall_hold_s = 0.8;
    return data::synthesize_task(30, subject, tuning, data::synthesis_config{}, gen);
}

data::trial make_adl_trial(std::uint64_t seed) {
    util::rng gen(seed);
    data::subject_profile subject;
    subject.id = 1;
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.0;
    tuning.locomotion_s = 1.5;
    return data::synthesize_task(6, subject, tuning, data::synthesis_config{}, gen);
}

TEST(TrialAugmentTest, TimeWarpKeepsAnnotationValid) {
    util::rng gen(1);
    const data::trial src = make_fall_trial(2);
    const data::trial aug =
        augment_fall_trial(src, augmentation_kind::time_warp, trial_augment_config{}, gen);
    EXPECT_NO_THROW(aug.validate());
    ASSERT_TRUE(aug.is_fall_trial());
    EXPECT_LT(aug.fall->onset_index, aug.fall->impact_index);
    EXPECT_EQ(aug.sample_count(), src.sample_count());  // time warp keeps length
}

TEST(TrialAugmentTest, WindowWarpKeepsAnnotationValid) {
    util::rng gen(3);
    const data::trial src = make_fall_trial(4);
    const data::trial aug =
        augment_fall_trial(src, augmentation_kind::window_warp, trial_augment_config{}, gen);
    EXPECT_NO_THROW(aug.validate());
    ASSERT_TRUE(aug.is_fall_trial());
}

TEST(TrialAugmentTest, AnnotationStaysNearOriginalPosition) {
    util::rng gen(5);
    const data::trial src = make_fall_trial(6);
    const data::trial aug =
        augment_fall_trial(src, augmentation_kind::time_warp, trial_augment_config{}, gen);
    // Time warp moves indices by at most a modest fraction of the trial.
    const auto drift = static_cast<double>(
        std::abs(static_cast<long>(aug.fall->onset_index) -
                 static_cast<long>(src.fall->onset_index)));
    EXPECT_LT(drift, 0.35 * static_cast<double>(src.sample_count()));
}

TEST(TrialAugmentTest, SignalDiffersFromOriginal) {
    util::rng gen(7);
    const data::trial src = make_fall_trial(8);
    const data::trial aug =
        augment_fall_trial(src, augmentation_kind::time_warp, trial_augment_config{}, gen);
    double diff = 0.0;
    const std::size_t n = std::min(src.sample_count(), aug.sample_count());
    for (std::size_t i = 0; i < n; ++i) {
        diff += std::abs(static_cast<double>(src.samples[i].accel[0]) -
                         aug.samples[i].accel[0]);
    }
    EXPECT_GT(diff / static_cast<double>(n), 1e-4);
}

TEST(TrialAugmentTest, MetadataCopied) {
    util::rng gen(9);
    const data::trial src = make_fall_trial(10);
    const data::trial aug =
        augment_fall_trial(src, augmentation_kind::window_warp, trial_augment_config{}, gen);
    EXPECT_EQ(aug.subject_id, src.subject_id);
    EXPECT_EQ(aug.task_id, src.task_id);
    EXPECT_EQ(aug.accel_units, src.accel_units);
}

TEST(TrialAugmentTest, RejectsAdlTrial) {
    util::rng gen(11);
    const data::trial adl = make_adl_trial(12);
    EXPECT_THROW(
        augment_fall_trial(adl, augmentation_kind::time_warp, trial_augment_config{}, gen),
        std::invalid_argument);
}

TEST(AugmentFallTrialsTest, AppendsOnlyFallCopies) {
    util::rng gen(13);
    std::vector<data::trial> trials{make_fall_trial(14), make_adl_trial(15),
                                    make_fall_trial(16)};
    const std::size_t original = trials.size();
    augment_fall_trials(trials, 2, trial_augment_config{}, gen);
    EXPECT_EQ(trials.size(), original + 2u * 2u);  // 2 falls x 2 copies
    for (std::size_t i = original; i < trials.size(); ++i) {
        EXPECT_TRUE(trials[i].is_fall_trial());
    }
}

TEST(AugmentFallTrialsTest, ZeroCopiesIsNoOp) {
    util::rng gen(17);
    std::vector<data::trial> trials{make_fall_trial(18)};
    augment_fall_trials(trials, 0, trial_augment_config{}, gen);
    EXPECT_EQ(trials.size(), 1u);
    EXPECT_THROW(augment_fall_trials(trials, -1, trial_augment_config{}, gen),
                 std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::augment
