#include "augment/warping.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fallsense::augment {
namespace {

std::vector<float> make_ramp(std::size_t frames, std::size_t channels) {
    std::vector<float> out(frames * channels);
    for (std::size_t t = 0; t < frames; ++t) {
        for (std::size_t c = 0; c < channels; ++c) {
            out[t * channels + c] = static_cast<float>(t) + 100.0f * static_cast<float>(c);
        }
    }
    return out;
}

TEST(ResampleTest, IdentityWhenSameLength) {
    const auto src = make_ramp(10, 2);
    const auto out = resample_linear(src, 2, 10);
    ASSERT_EQ(out.size(), src.size());
    for (std::size_t i = 0; i < src.size(); ++i) EXPECT_NEAR(out[i], src[i], 1e-5);
}

TEST(ResampleTest, EndpointsPreserved) {
    const auto src = make_ramp(10, 1);
    const auto out = resample_linear(src, 1, 25);
    EXPECT_NEAR(out.front(), src.front(), 1e-5);
    EXPECT_NEAR(out.back(), src.back(), 1e-5);
}

TEST(ResampleTest, LinearSignalStaysLinear) {
    const auto src = make_ramp(10, 1);
    const auto out = resample_linear(src, 1, 19);
    // A ramp resampled remains a ramp: midpoint value is midway.
    EXPECT_NEAR(out[9], 4.5f, 1e-5);
}

TEST(ResampleTest, Validation) {
    const auto src = make_ramp(10, 2);
    EXPECT_THROW(resample_linear(src, 2, 1), std::invalid_argument);
    EXPECT_THROW(resample_linear(src, 3, 10), std::invalid_argument);  // size mismatch
    EXPECT_THROW(resample_linear({1.0f, 2.0f}, 2, 5), std::invalid_argument);  // 1 frame
}

TEST(TimeWarpTest, PreservesLength) {
    util::rng gen(1);
    const auto src = make_ramp(50, 3);
    const warp_result r = time_warp(src, 3, time_warp_config{}, {}, gen);
    EXPECT_EQ(r.series.size(), src.size());
}

TEST(TimeWarpTest, EndpointsApproximatelyPreserved) {
    util::rng gen(2);
    const auto src = make_ramp(50, 1);
    const warp_result r = time_warp(src, 1, time_warp_config{}, {}, gen);
    EXPECT_NEAR(r.series.front(), src.front(), 1e-4);
    EXPECT_NEAR(r.series.back(), src.back(), 1e-4);
}

TEST(TimeWarpTest, ValuesStayWithinInputRange) {
    // Linear interpolation cannot overshoot the data range.
    util::rng gen(3);
    const auto src = make_ramp(60, 2);
    const warp_result r = time_warp(src, 2, {4, 0.4}, {}, gen);
    for (std::size_t t = 0; t < 60; ++t) {
        EXPECT_GE(r.series[t * 2], 0.0f);
        EXPECT_LE(r.series[t * 2], 59.0f);
    }
}

TEST(TimeWarpTest, ActuallyWarps) {
    util::rng gen(4);
    const auto src = make_ramp(60, 1);
    const warp_result r = time_warp(src, 1, {4, 0.4}, {}, gen);
    double diff = 0.0;
    for (std::size_t i = 0; i < src.size(); ++i) diff += std::abs(r.series[i] - src[i]);
    EXPECT_GT(diff, 1.0);
}

TEST(TimeWarpTest, TrackedIndicesMapMonotonically) {
    util::rng gen(5);
    const auto src = make_ramp(100, 1);
    const std::vector<std::size_t> tracked{10, 50, 90};
    const warp_result r = time_warp(src, 1, time_warp_config{}, tracked, gen);
    ASSERT_EQ(r.mapped_indices.size(), 3u);
    EXPECT_LT(r.mapped_indices[0], r.mapped_indices[1]);
    EXPECT_LT(r.mapped_indices[1], r.mapped_indices[2]);
    for (const std::size_t m : r.mapped_indices) EXPECT_LT(m, 100u);
}

TEST(TimeWarpTest, MappedIndexPointsAtSimilarValue) {
    // For a ramp, series[mapped] ~ src[tracked] (the warp moves the sample,
    // the mapping follows it).
    util::rng gen(6);
    const auto src = make_ramp(200, 1);
    const std::vector<std::size_t> tracked{60, 140};
    const warp_result r = time_warp(src, 1, {4, 0.3}, tracked, gen);
    for (std::size_t k = 0; k < tracked.size(); ++k) {
        EXPECT_NEAR(r.series[r.mapped_indices[k]], src[tracked[k]], 6.0f);
    }
}

TEST(WindowWarpTest, LengthChangesWithScale) {
    util::rng gen(7);
    const auto src = make_ramp(100, 2);
    window_warp_config cfg;
    cfg.scale_low = 1.4;
    cfg.scale_high = 1.6;  // always stretch
    const warp_result r = window_warp(src, 2, cfg, {}, gen);
    EXPECT_GT(r.series.size(), src.size());
    cfg.scale_low = 0.5;
    cfg.scale_high = 0.7;  // always compress
    const warp_result r2 = window_warp(src, 2, cfg, {}, gen);
    EXPECT_LT(r2.series.size(), src.size());
}

TEST(WindowWarpTest, OutsideWindowUntouched) {
    util::rng gen(8);
    const auto src = make_ramp(100, 1);
    const warp_result r = window_warp(src, 1, window_warp_config{}, {0}, gen);
    // Frame 0 is before any window start >= 0... index 0 maps to 0 only if
    // the window starts after 0; just check the mapping is in range and the
    // first/last values look like ramp values.
    EXPECT_LT(r.mapped_indices[0], r.series.size());
    EXPECT_NEAR(r.series.front(), src.front(), 1e-5);
    EXPECT_NEAR(r.series.back(), src.back(), 1e-5);
}

TEST(WindowWarpTest, TrackedMappingMonotone) {
    util::rng gen(9);
    const auto src = make_ramp(120, 1);
    const std::vector<std::size_t> tracked{10, 60, 110};
    const warp_result r = window_warp(src, 1, window_warp_config{}, tracked, gen);
    EXPECT_LE(r.mapped_indices[0], r.mapped_indices[1]);
    EXPECT_LE(r.mapped_indices[1], r.mapped_indices[2]);
}

TEST(WindowWarpTest, Validation) {
    util::rng gen(10);
    const auto src = make_ramp(6, 1);
    EXPECT_THROW(window_warp(src, 1, window_warp_config{}, {}, gen), std::invalid_argument);
    const auto ok = make_ramp(50, 1);
    window_warp_config bad;
    bad.window_fraction = 0.0;
    EXPECT_THROW(window_warp(ok, 1, bad, {}, gen), std::invalid_argument);
    window_warp_config bad2;
    bad2.scale_low = 2.0;
    bad2.scale_high = 1.0;
    EXPECT_THROW(window_warp(ok, 1, bad2, {}, gen), std::invalid_argument);
}

TEST(TimeWarpTest, TrackedIndexOutOfRangeThrows) {
    util::rng gen(11);
    const auto src = make_ramp(20, 1);
    EXPECT_THROW(time_warp(src, 1, time_warp_config{}, {25}, gen), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::augment
