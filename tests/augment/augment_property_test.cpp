// Property sweeps over the augmentation stack: for every warp configuration
// and seed, warped fall trials must keep valid annotations, preserve value
// ranges (linear interpolation cannot extrapolate), and stay deterministic.
#include <gtest/gtest.h>

#include <cmath>

#include "augment/trial_augment.hpp"
#include "data/synthesizer.hpp"

namespace fallsense::augment {
namespace {

data::trial make_fall_trial(std::uint64_t seed, int task) {
    util::rng gen(seed);
    data::subject_profile subject;
    subject.id = 1;
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.0;
    tuning.locomotion_s = 1.5;
    tuning.post_fall_hold_s = 0.8;
    return data::synthesize_task(task, subject, tuning, data::synthesis_config{}, gen);
}

struct aug_params {
    augmentation_kind kind;
    int task;
    std::uint64_t seed;
};

class AugmentProperty : public ::testing::TestWithParam<aug_params> {};

TEST_P(AugmentProperty, AnnotationStaysValid) {
    const auto [kind, task, seed] = GetParam();
    const data::trial src = make_fall_trial(seed, task);
    util::rng gen(seed + 1000);
    const data::trial aug = augment_fall_trial(src, kind, trial_augment_config{}, gen);
    EXPECT_NO_THROW(aug.validate());
    EXPECT_TRUE(aug.is_fall_trial());
    EXPECT_LT(aug.fall->onset_index, aug.fall->impact_index);
    EXPECT_LT(aug.fall->impact_index, aug.sample_count());
}

TEST_P(AugmentProperty, ValuesWithinSourceEnvelope) {
    // Linear interpolation cannot exceed the min/max of the source series.
    const auto [kind, task, seed] = GetParam();
    const data::trial src = make_fall_trial(seed, task);
    float lo = src.samples[0].accel[0], hi = lo;
    for (const data::raw_sample& s : src.samples) {
        for (const float v : s.accel) {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
    }
    util::rng gen(seed + 2000);
    const data::trial aug = augment_fall_trial(src, kind, trial_augment_config{}, gen);
    for (const data::raw_sample& s : aug.samples) {
        for (const float v : s.accel) {
            EXPECT_GE(v, lo - 1e-4f);
            EXPECT_LE(v, hi + 1e-4f);
        }
    }
}

TEST_P(AugmentProperty, DeterministicPerSeed) {
    const auto [kind, task, seed] = GetParam();
    const data::trial src = make_fall_trial(seed, task);
    util::rng g1(seed + 3000), g2(seed + 3000);
    const data::trial a = augment_fall_trial(src, kind, trial_augment_config{}, g1);
    const data::trial b = augment_fall_trial(src, kind, trial_augment_config{}, g2);
    ASSERT_EQ(a.sample_count(), b.sample_count());
    EXPECT_EQ(a.fall->onset_index, b.fall->onset_index);
    for (std::size_t i = 0; i < a.sample_count(); i += 11) {
        EXPECT_FLOAT_EQ(a.samples[i].accel[2], b.samples[i].accel[2]);
    }
}

TEST_P(AugmentProperty, FallingDurationRoughlyPreserved) {
    // Warps change timing but must not collapse or explode the falling
    // phase (within the warp's own scale bounds plus slack).
    const auto [kind, task, seed] = GetParam();
    const data::trial src = make_fall_trial(seed, task);
    util::rng gen(seed + 4000);
    const data::trial aug = augment_fall_trial(src, kind, trial_augment_config{}, gen);
    const double ratio = static_cast<double>(aug.fall->falling_samples()) /
                         static_cast<double>(src.fall->falling_samples());
    EXPECT_GT(ratio, 0.3);
    EXPECT_LT(ratio, 3.0);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AugmentProperty,
    ::testing::Values(aug_params{augmentation_kind::time_warp, 30, 1},
                      aug_params{augmentation_kind::time_warp, 39, 2},
                      aug_params{augmentation_kind::time_warp, 25, 3},
                      aug_params{augmentation_kind::window_warp, 30, 4},
                      aug_params{augmentation_kind::window_warp, 39, 5},
                      aug_params{augmentation_kind::window_warp, 21, 6}),
    [](const ::testing::TestParamInfo<aug_params>& info) {
        return std::string(info.param.kind == augmentation_kind::time_warp ? "time" : "window") +
               "_task" + std::to_string(info.param.task) + "_s" +
               std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace fallsense::augment
