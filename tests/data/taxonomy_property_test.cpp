// Cross-module consistency properties between the taxonomy (Table II), the
// motion scripts, and the two dataset profiles.
#include <gtest/gtest.h>

#include "data/generator.hpp"
#include "data/taxonomy.hpp"

namespace fallsense::data {
namespace {

TEST(TaxonomyConsistency, KfallMembershipMatchesIdRange) {
    // The KFall protocol covers tasks 1-36; 37-44 are self-collected only.
    for (const task_info& t : all_tasks()) {
        EXPECT_EQ(t.in_kfall, t.id <= 36) << t.id;
    }
}

TEST(TaxonomyConsistency, ProfilesAgreeWithTaxonomy) {
    const dataset_profile kf = kfall_profile();
    const dataset_profile pt = protechto_profile();
    EXPECT_EQ(kf.task_ids, kfall_task_ids());
    EXPECT_EQ(pt.task_ids, self_collected_task_ids());
}

TEST(TaxonomyConsistency, ScriptFallnessMatchesTaxonomy) {
    // A task's motion script contains a falling phase iff the taxonomy says
    // the task is a fall — for several independent subjects/draws.
    const motion_tuning tuning;
    for (const task_info& info : all_tasks()) {
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            util::rng gen(seed * 1000 + static_cast<std::uint64_t>(info.id));
            subject_profile subject;
            subject.id = static_cast<int>(seed);
            const auto script = build_task_phases(info.id, subject, tuning, gen);
            bool has_falling = false;
            for (const motion_phase& p : script) {
                has_falling |= p.semantic == phase_semantic::falling;
            }
            EXPECT_EQ(has_falling, info.is_fall()) << "task " << info.id;
        }
    }
}

TEST(TaxonomyConsistency, GeneratedAnnotationsMatchTaxonomy) {
    dataset_profile p = protechto_profile();
    p.n_subjects = 1;
    p.tuning.static_hold_s = 1.0;
    p.tuning.locomotion_s = 1.2;
    p.tuning.post_fall_hold_s = 0.6;
    const dataset d = generate_dataset(p, 99);
    for (const trial& t : d.trials) {
        EXPECT_EQ(t.is_fall_trial(), task_by_id(t.task_id).is_fall()) << t.task_id;
    }
}

TEST(TaxonomyConsistency, RiskPartitionIsComplete) {
    std::size_t red = 0, green = 0, fall = 0;
    for (const task_info& t : all_tasks()) {
        switch (t.risk) {
            case risk_class::red: ++red; break;
            case risk_class::green: ++green; break;
            case risk_class::fall: ++fall; break;
        }
    }
    EXPECT_EQ(red + green, 23u);  // every ADL is exactly red or green
    EXPECT_EQ(fall, 21u);
}

}  // namespace
}  // namespace fallsense::data
