#include "data/types.hpp"

#include <gtest/gtest.h>

namespace fallsense::data {
namespace {

trial make_trial(std::size_t samples, bool with_fall) {
    trial t;
    t.subject_id = 1;
    t.task_id = with_fall ? 30 : 6;
    t.samples.resize(samples);
    if (with_fall) t.fall = fall_annotation{samples / 2, samples - 10};
    return t;
}

TEST(TrialTest, DurationFromSampleRate) {
    const trial t = make_trial(250, false);
    EXPECT_DOUBLE_EQ(t.duration_s(), 2.5);
    EXPECT_EQ(t.sample_count(), 250u);
}

TEST(TrialTest, FallTrialDetection) {
    EXPECT_TRUE(make_trial(100, true).is_fall_trial());
    EXPECT_FALSE(make_trial(100, false).is_fall_trial());
}

TEST(TrialTest, ValidationAcceptsGood) {
    EXPECT_NO_THROW(make_trial(100, true).validate());
    EXPECT_NO_THROW(make_trial(100, false).validate());
}

TEST(TrialTest, ValidationRejectsEmptyTrial) {
    trial t = make_trial(0, false);
    EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(TrialTest, ValidationRejectsInvertedAnnotation) {
    trial t = make_trial(100, true);
    t.fall = fall_annotation{60, 50};
    EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(TrialTest, ValidationRejectsImpactBeyondEnd) {
    trial t = make_trial(100, true);
    t.fall = fall_annotation{50, 100};
    EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(FallAnnotationTest, FallingSamples) {
    const fall_annotation a{100, 160};
    EXPECT_EQ(a.falling_samples(), 60u);
}

TEST(DatasetTest, FallTrialCount) {
    dataset d;
    d.trials.push_back(make_trial(100, true));
    d.trials.push_back(make_trial(100, false));
    d.trials.push_back(make_trial(100, true));
    EXPECT_EQ(d.fall_trial_count(), 2u);
    EXPECT_EQ(d.trial_count(), 3u);
}

TEST(DatasetTest, SubjectIdsSortedUnique) {
    dataset d;
    for (const int id : {5, 3, 5, 1, 3}) {
        trial t = make_trial(10, false);
        t.subject_id = id;
        d.trials.push_back(std::move(t));
    }
    EXPECT_EQ(d.subject_ids(), (std::vector<int>{1, 3, 5}));
}

TEST(UnitNamesTest, Strings) {
    EXPECT_STREQ(accel_unit_name(accel_unit::g), "g");
    EXPECT_STREQ(accel_unit_name(accel_unit::meters_per_s2), "m/s^2");
    EXPECT_STREQ(gyro_unit_name(gyro_unit::rad_per_s), "rad/s");
    EXPECT_STREQ(gyro_unit_name(gyro_unit::deg_per_s), "deg/s");
}

}  // namespace
}  // namespace fallsense::data
