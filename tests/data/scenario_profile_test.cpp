#include "data/motion_profile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "data/taxonomy.hpp"
#include "util/rng.hpp"

namespace fallsense::data {
namespace {

TEST(ScenarioProfileTest, RegistryListsBaselineFirstAndResolvesEveryName) {
    const std::vector<std::string> names = list_profiles();
    ASSERT_FALSE(names.empty());
    EXPECT_EQ(names.front(), "baseline");
    for (const std::string& name : names) {
        const scenario_profile profile = make_profile(name);
        EXPECT_EQ(profile.name, name);
        EXPECT_FALSE(profile.summary.empty()) << name;
        EXPECT_FALSE(profile.task_mix.empty()) << name;
        // Every task id in the mix must script (taxonomy or extension).
        util::rng gen(1);
        for (const int id : profile.task_mix) {
            EXPECT_NO_THROW(build_task_phases(id, subject_profile{}, motion_tuning{}, gen))
                << name << " task " << id;
        }
    }
    EXPECT_NE(std::find(names.begin(), names.end(), "near_fall"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "trip_catch"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "vehicle_vibration"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "sensor_dropout"), names.end());
}

TEST(ScenarioProfileTest, UnknownNameThrowsTypedErrorListingTheRegistry) {
    try {
        (void)make_profile("quake");
        FAIL() << "expected unknown_profile_error";
    } catch (const unknown_profile_error& e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("quake"), std::string::npos);
        EXPECT_NE(message.find("baseline"), std::string::npos);
        EXPECT_NE(message.find("near_fall"), std::string::npos);
    }
}

TEST(ScenarioProfileTest, BaselineReplaysTheOriginalLoadgenMix) {
    // The loadgen's pre-registry hard-coded Table II mix, frozen: the
    // baseline profile must keep wire-parity manifests byte-identical
    // across releases.
    const std::vector<int> original{6, 20, 12, 30, 1, 25, 18, 38};
    const scenario_profile baseline = make_profile("baseline");
    EXPECT_EQ(baseline.task_mix, original);
    EXPECT_FALSE(baseline.perturb.any());
}

TEST(ScenarioProfileTest, AdversarialProfilesStayInsideOrBesideTheTaxonomy) {
    for (const std::string& name : list_profiles()) {
        for (const int id : make_profile(name).task_mix) {
            EXPECT_TRUE((id >= 1 && id <= 44) || id == 45 || id == 46)
                << name << " task " << id;
        }
    }
}

TEST(ScenarioPerturbationTest, NoOpPerturbationLeavesSamplesAndRngUntouched) {
    std::vector<raw_sample> samples(500);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        samples[i].accel = {0.01f * static_cast<float>(i), 0.0f, 1.0f};
        samples[i].gyro = {0.0f, 0.1f, 0.0f};
    }
    const std::vector<raw_sample> before = samples;
    util::rng gen(7), untouched(7);
    apply_stream_perturbation(samples, stream_perturbation{}, 100.0, gen);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        EXPECT_EQ(samples[i].accel, before[i].accel) << i;
        EXPECT_EQ(samples[i].gyro, before[i].gyro) << i;
    }
    // No draws consumed: the generator stays in lockstep with a twin.
    EXPECT_EQ(gen.uniform(0.0, 1.0), untouched.uniform(0.0, 1.0));
}

TEST(ScenarioPerturbationTest, PerturbationIsDeterministicInTheSeed) {
    std::vector<raw_sample> a(800), b(800);
    const stream_perturbation perturb = make_profile("sensor_dropout").perturb;
    util::rng g1(11), g2(11);
    apply_stream_perturbation(a, perturb, 100.0, g1);
    apply_stream_perturbation(b, perturb, 100.0, g2);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].accel, b[i].accel) << i;
        EXPECT_EQ(a[i].gyro, b[i].gyro) << i;
    }
    std::vector<raw_sample> c(800);
    util::rng g3(12);
    apply_stream_perturbation(c, perturb, 100.0, g3);
    bool differs = false;
    for (std::size_t i = 0; i < a.size() && !differs; ++i) {
        differs = a[i].accel != c[i].accel || a[i].gyro != c[i].gyro;
    }
    EXPECT_TRUE(differs) << "different seed must corrupt differently";
}

TEST(ScenarioPerturbationTest, VibrationRidesOnTheAccelerometerOnly) {
    std::vector<raw_sample> samples(1000);
    for (raw_sample& s : samples) {
        s.accel = {0.0f, 0.0f, 1.0f};
        s.gyro = {0.0f, 0.0f, 0.0f};
    }
    const stream_perturbation perturb = make_profile("vehicle_vibration").perturb;
    ASSERT_GT(perturb.vibration_amp_g, 0.0);
    util::rng gen(3);
    apply_stream_perturbation(samples, perturb, 100.0, gen);
    float max_accel_dev = 0.0f, max_gyro_dev = 0.0f;
    for (const raw_sample& s : samples) {
        max_accel_dev = std::max(max_accel_dev, std::abs(s.accel[2] - 1.0f));
        for (int axis = 0; axis < 3; ++axis) {
            max_gyro_dev = std::max(max_gyro_dev, std::abs(s.gyro[axis]));
        }
    }
    EXPECT_GT(max_accel_dev, 0.5f * static_cast<float>(perturb.vibration_amp_g));
    EXPECT_EQ(max_gyro_dev, 0.0f);
}

TEST(ScenarioPerturbationTest, DropoutFreezesRunsOfSamples) {
    std::vector<raw_sample> samples(6000);  // one minute at 100 Hz
    for (std::size_t i = 0; i < samples.size(); ++i) {
        samples[i].accel = {static_cast<float>(i), 0.0f, 1.0f};  // strictly changing
    }
    stream_perturbation perturb;
    perturb.dropout_bursts_per_min = 4.0;
    perturb.dropout_burst_s = 0.3;
    util::rng gen(5);
    apply_stream_perturbation(samples, perturb, 100.0, gen);
    std::size_t frozen_pairs = 0;
    for (std::size_t i = 1; i < samples.size(); ++i) {
        if (samples[i].accel == samples[i - 1].accel) ++frozen_pairs;
    }
    // 4 bursts x 0.3 s x 100 Hz ~ 120 frozen samples (bursts may overlap
    // or clip at the end of the stream, so just require a healthy run).
    EXPECT_GE(frozen_pairs, 25u);
}

}  // namespace
}  // namespace fallsense::data
