#include "data/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/taxonomy.hpp"

namespace fallsense::data {
namespace {

dataset_profile small_protechto() {
    dataset_profile p = protechto_profile();
    p.n_subjects = 2;
    p.tuning.static_hold_s = 1.0;
    p.tuning.locomotion_s = 1.5;
    p.tuning.post_fall_hold_s = 0.8;
    return p;
}

dataset_profile small_kfall() {
    dataset_profile p = kfall_profile();
    p.n_subjects = 2;
    p.tuning.static_hold_s = 1.0;
    p.tuning.locomotion_s = 1.5;
    p.tuning.post_fall_hold_s = 0.8;
    return p;
}

TEST(GeneratorTest, SubjectCohortMatchesPaperAnthropometrics) {
    const auto subjects = sample_subjects(100, 0, 1);
    ASSERT_EQ(subjects.size(), 100u);
    double h = 0.0, w = 0.0;
    for (const subject_profile& s : subjects) {
        h += s.height_cm;
        w += s.weight_kg;
        EXPECT_GT(s.tempo, 0.0);
        EXPECT_GT(s.vigor, 0.0);
    }
    EXPECT_NEAR(h / 100.0, 178.0, 3.0);
    EXPECT_NEAR(w / 100.0, 71.5, 4.0);
}

TEST(GeneratorTest, SubjectIdsSequentialFromBase) {
    const auto subjects = sample_subjects(3, 200, 1);
    EXPECT_EQ(subjects[0].id, 200);
    EXPECT_EQ(subjects[2].id, 202);
}

TEST(GeneratorTest, ProtechtoCoversAllTasks) {
    const dataset d = generate_dataset(small_protechto(), 5);
    EXPECT_EQ(d.trial_count(), 2u * 44u);
    // 21 fall tasks per subject.
    EXPECT_EQ(d.fall_trial_count(), 2u * 21u);
    EXPECT_EQ(d.subject_ids().size(), 2u);
}

TEST(GeneratorTest, KfallCoversItsSubsetInItsUnits) {
    const dataset d = generate_dataset(small_kfall(), 5);
    EXPECT_EQ(d.trial_count(), 2u * 36u);
    EXPECT_EQ(d.fall_trial_count(), 2u * 15u);
    for (const trial& t : d.trials) {
        EXPECT_EQ(t.accel_units, accel_unit::meters_per_s2);
        EXPECT_EQ(t.gyro_units, gyro_unit::deg_per_s);
    }
}

TEST(GeneratorTest, KfallMagnitudesAreInMs2) {
    const dataset d = generate_dataset(small_kfall(), 5);
    // A standing trial should read ~9.8 m/s^2, not ~1.
    for (const trial& t : d.trials) {
        if (t.task_id != 1) continue;
        double mean = 0.0;
        for (const raw_sample& s : t.samples) {
            mean += std::sqrt(static_cast<double>(s.accel[0]) * s.accel[0] +
                              static_cast<double>(s.accel[1]) * s.accel[1] +
                              static_cast<double>(s.accel[2]) * s.accel[2]);
        }
        mean /= static_cast<double>(t.sample_count());
        EXPECT_NEAR(mean, 9.8, 0.6);
    }
}

TEST(GeneratorTest, SubjectIdBasesDisjoint) {
    const dataset kf = generate_dataset(small_kfall(), 5);
    const dataset pt = generate_dataset(small_protechto(), 5);
    for (const int k : kf.subject_ids()) {
        for (const int p : pt.subject_ids()) EXPECT_NE(k, p);
    }
}

TEST(GeneratorTest, DeterministicForSeed) {
    const dataset a = generate_dataset(small_protechto(), 9);
    const dataset b = generate_dataset(small_protechto(), 9);
    ASSERT_EQ(a.trial_count(), b.trial_count());
    for (std::size_t i = 0; i < a.trial_count(); ++i) {
        ASSERT_EQ(a.trials[i].sample_count(), b.trials[i].sample_count());
        EXPECT_FLOAT_EQ(a.trials[i].samples[0].accel[2], b.trials[i].samples[0].accel[2]);
    }
}

TEST(GeneratorTest, SeedChangesData) {
    const dataset a = generate_dataset(small_protechto(), 9);
    const dataset b = generate_dataset(small_protechto(), 10);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.trial_count() && !any_diff; ++i) {
        if (a.trials[i].sample_count() != b.trials[i].sample_count()) {
            any_diff = true;
            break;
        }
        for (std::size_t j = 0; j < a.trials[i].sample_count(); ++j) {
            if (a.trials[i].samples[j].accel[0] != b.trials[i].samples[j].accel[0]) {
                any_diff = true;
                break;
            }
        }
    }
    EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, TrialsPerTaskMultiplies) {
    dataset_profile p = small_protechto();
    p.trials_per_task = 3;
    const dataset d = generate_dataset(p, 5);
    EXPECT_EQ(d.trial_count(), 2u * 44u * 3u);
}

TEST(GeneratorTest, ProfileValidation) {
    dataset_profile p = small_protechto();
    p.task_ids.clear();
    EXPECT_THROW(generate_dataset(p, 5), std::invalid_argument);
    dataset_profile p2 = small_protechto();
    p2.trials_per_task = 0;
    EXPECT_THROW(generate_dataset(p2, 5), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::data
