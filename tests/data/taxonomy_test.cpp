#include "data/taxonomy.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fallsense::data {
namespace {

TEST(TaxonomyTest, FortyFourTasksOrderedById) {
    const auto tasks = all_tasks();
    ASSERT_EQ(tasks.size(), 44u);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        EXPECT_EQ(tasks[i].id, static_cast<int>(i + 1));
    }
}

TEST(TaxonomyTest, PaperTaskCounts) {
    // Paper: self-collected has 23 ADLs + 21 falls; KFall 21 ADLs + 15 falls.
    EXPECT_EQ(fall_task_ids().size(), 21u);
    EXPECT_EQ(adl_task_ids().size(), 23u);
    const auto kfall = kfall_task_ids();
    EXPECT_EQ(kfall.size(), 36u);
    std::size_t kfall_falls = 0;
    for (const int id : kfall) kfall_falls += task_by_id(id).is_fall() ? 1 : 0;
    EXPECT_EQ(kfall_falls, 15u);
    EXPECT_EQ(self_collected_task_ids().size(), 44u);
}

TEST(TaxonomyTest, FallIdsMatchTableII) {
    const std::vector<int> fall_ids = fall_task_ids();
    const std::set<int> falls(fall_ids.begin(), fall_ids.end());
    for (int id = 20; id <= 34; ++id) EXPECT_TRUE(falls.contains(id)) << id;
    for (int id = 37; id <= 42; ++id) EXPECT_TRUE(falls.contains(id)) << id;
    EXPECT_FALSE(falls.contains(10));  // stumble is an ADL
    EXPECT_FALSE(falls.contains(44));  // obstacle jump is an ADL
}

TEST(TaxonomyTest, HeightFallsAreSelfCollectedOnly) {
    for (const int id : {37, 38, 39, 40, 41, 42, 43, 44}) {
        EXPECT_FALSE(task_by_id(id).in_kfall) << id;
    }
    EXPECT_TRUE(task_by_id(36).in_kfall);
}

TEST(TaxonomyTest, RiskClassConsistency) {
    for (const task_info& t : all_tasks()) {
        if (t.is_fall()) {
            EXPECT_EQ(t.risk, risk_class::fall) << t.id;
        } else {
            EXPECT_NE(t.risk, risk_class::fall) << t.id;
        }
    }
}

TEST(TaxonomyTest, RedAdlsAreTheDynamicOnes) {
    // The paper's highest ADL false-positive sources (Table IVb).
    for (const int id : {4, 15, 19, 44}) {
        EXPECT_EQ(task_by_id(id).risk, risk_class::red) << id;
    }
    // Everyday movements stay green.
    for (const int id : {1, 6, 11, 13, 17, 43}) {
        EXPECT_EQ(task_by_id(id).risk, risk_class::green) << id;
    }
}

TEST(TaxonomyTest, LookupValidation) {
    EXPECT_THROW(task_by_id(0), std::out_of_range);
    EXPECT_THROW(task_by_id(45), std::out_of_range);
    EXPECT_EQ(task_by_id(44).id, 44);
}

TEST(TaxonomyTest, CategoriesAssigned) {
    EXPECT_EQ(task_by_id(39).category, task_category::fall_from_height);
    EXPECT_EQ(task_by_id(6).category, task_category::adl_locomotion);
    EXPECT_EQ(task_by_id(1).category, task_category::adl_static);
    EXPECT_EQ(task_by_id(10).category, task_category::adl_near_fall);
    EXPECT_EQ(task_by_id(30).category, task_category::fall_from_walking);
}

TEST(TaxonomyTest, DescriptionsNonEmpty) {
    for (const task_info& t : all_tasks()) EXPECT_FALSE(t.description.empty()) << t.id;
}

}  // namespace
}  // namespace fallsense::data
