#include "data/motion_profile.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/taxonomy.hpp"

namespace fallsense::data {
namespace {

subject_profile default_subject() {
    subject_profile s;
    s.id = 1;
    return s;
}

TEST(MotionProfileTest, EveryTaskHasAScript) {
    util::rng gen(1);
    const motion_tuning tuning;
    for (int id = 1; id <= 44; ++id) {
        EXPECT_NO_THROW(build_task_phases(id, default_subject(), tuning, gen)) << id;
    }
    // 45 and 46 are the adversarial extension scripts (near-fall arrested
    // mid-descent, trip caught on hands) — outside the 44-task taxonomy but
    // scripted for the scenario registry.
    EXPECT_NO_THROW(build_task_phases(45, default_subject(), tuning, gen));
    EXPECT_NO_THROW(build_task_phases(46, default_subject(), tuning, gen));
    EXPECT_THROW(build_task_phases(0, default_subject(), tuning, gen), std::out_of_range);
    EXPECT_THROW(build_task_phases(47, default_subject(), tuning, gen), std::out_of_range);
}

TEST(MotionProfileTest, AdversarialScriptsLookLikeFallsButAreNot) {
    // The extension scripts must contain a falling-shaped phase (so the
    // detector is tempted) yet carry no fall semantics (so the synthesizer
    // attaches no ground-truth annotation): they are pure false-alarm bait.
    util::rng gen(9);
    const motion_tuning tuning;
    for (const int id : {45, 46}) {
        const auto script = build_task_phases(id, default_subject(), tuning, gen);
        bool has_impactful_activity = false;
        for (const motion_phase& p : script) {
            EXPECT_NE(p.semantic, phase_semantic::falling) << "task " << id;
            EXPECT_NE(p.semantic, phase_semantic::post_fall) << "task " << id;
            has_impactful_activity |= p.impact_g > 1.0;
        }
        EXPECT_TRUE(has_impactful_activity) << "task " << id;
    }
}

TEST(MotionProfileTest, FallTasksContainFallingPhase) {
    util::rng gen(2);
    const motion_tuning tuning;
    for (const int id : fall_task_ids()) {
        const auto script = build_task_phases(id, default_subject(), tuning, gen);
        bool has_falling = false, has_post = false;
        for (const motion_phase& p : script) {
            has_falling |= p.semantic == phase_semantic::falling;
            has_post |= p.semantic == phase_semantic::post_fall;
        }
        EXPECT_TRUE(has_falling) << "task " << id;
        EXPECT_TRUE(has_post) << "task " << id;
    }
}

TEST(MotionProfileTest, AdlTasksHaveNoFallingPhase) {
    util::rng gen(3);
    const motion_tuning tuning;
    for (const int id : adl_task_ids()) {
        const auto script = build_task_phases(id, default_subject(), tuning, gen);
        for (const motion_phase& p : script) {
            EXPECT_NE(p.semantic, phase_semantic::falling) << "task " << id;
            EXPECT_NE(p.semantic, phase_semantic::post_fall) << "task " << id;
        }
    }
}

TEST(MotionProfileTest, FallingPhasesCarryImpact) {
    util::rng gen(4);
    const motion_tuning tuning;
    for (const int id : fall_task_ids()) {
        const auto script = build_task_phases(id, default_subject(), tuning, gen);
        for (const motion_phase& p : script) {
            if (p.semantic == phase_semantic::falling) {
                EXPECT_GT(p.impact_g, 1.0) << "task " << id;
                // Even the shallowest (fainting) falls unload noticeably.
                EXPECT_LT(p.support_to, 0.78) << "task " << id;
            }
        }
    }
}

TEST(MotionProfileTest, FallDurationsInPaperRange) {
    // Falling phases last 150-1100 ms (paper Section III).
    util::rng gen(5);
    const motion_tuning tuning;
    for (const int id : fall_task_ids()) {
        const auto script = build_task_phases(id, default_subject(), tuning, gen);
        for (const motion_phase& p : script) {
            if (p.semantic == phase_semantic::falling) {
                EXPECT_GE(p.duration_s, 0.15) << "task " << id;
                EXPECT_LE(p.duration_s, 1.1) << "task " << id;
            }
        }
    }
}

TEST(MotionProfileTest, HeightFallsUseLateAttitude) {
    // Falls from height (39-42) tip over late: the falling-phase attitude
    // target is smaller in magnitude than ground-level forward falls (30).
    util::rng gen(6);
    const motion_tuning tuning;
    auto falling_pitch = [&](int id) {
        const auto script = build_task_phases(id, default_subject(), tuning, gen);
        for (const motion_phase& p : script) {
            if (p.semantic == phase_semantic::falling) return std::abs(p.pitch_to);
        }
        return 0.0;
    };
    EXPECT_LT(falling_pitch(39), falling_pitch(30));
}

TEST(MotionProfileTest, SubjectTempoScalesDurations) {
    const motion_tuning tuning;
    subject_profile slow = default_subject();
    slow.tempo = 1.4;
    subject_profile fast = default_subject();
    fast.tempo = 0.8;
    // Average over several trials to suppress per-trial jitter.
    double slow_total = 0.0, fast_total = 0.0;
    for (int rep = 0; rep < 20; ++rep) {
        util::rng g1(100 + rep), g2(100 + rep);
        for (const motion_phase& p : build_task_phases(6, slow, tuning, g1)) {
            slow_total += p.duration_s;
        }
        for (const motion_phase& p : build_task_phases(6, fast, tuning, g2)) {
            fast_total += p.duration_s;
        }
    }
    EXPECT_GT(slow_total, fast_total * 1.2);
}

TEST(MotionProfileTest, StaticHoldRespectsTuning) {
    util::rng gen(7);
    motion_tuning tuning;
    tuning.static_hold_s = 2.0;
    const auto script = build_task_phases(1, default_subject(), tuning, gen);
    ASSERT_EQ(script.size(), 1u);
    EXPECT_NEAR(script[0].duration_s, 2.0, 0.5);
}

TEST(MotionProfileTest, RejectsBadSubject) {
    util::rng gen(8);
    subject_profile bad = default_subject();
    bad.tempo = 0.0;
    EXPECT_THROW(build_task_phases(1, bad, motion_tuning{}, gen), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::data
