#include "data/synthesizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/taxonomy.hpp"

namespace fallsense::data {
namespace {

subject_profile default_subject() {
    subject_profile s;
    s.id = 7;
    return s;
}

double accel_magnitude(const raw_sample& s) {
    return std::sqrt(static_cast<double>(s.accel[0]) * s.accel[0] +
                     static_cast<double>(s.accel[1]) * s.accel[1] +
                     static_cast<double>(s.accel[2]) * s.accel[2]);
}

TEST(SynthesizerTest, StandingMeasuresOneG) {
    util::rng gen(1);
    const trial t = synthesize_task(1, default_subject(), motion_tuning{}, synthesis_config{},
                                    gen);
    ASSERT_GT(t.sample_count(), 100u);
    double mean_mag = 0.0;
    for (const raw_sample& s : t.samples) mean_mag += accel_magnitude(s);
    mean_mag /= static_cast<double>(t.sample_count());
    EXPECT_NEAR(mean_mag, 1.0, 0.05);
}

TEST(SynthesizerTest, FallTrialsAnnotated) {
    util::rng gen(2);
    for (const int id : fall_task_ids()) {
        const trial t = synthesize_task(id, default_subject(), motion_tuning{},
                                        synthesis_config{}, gen);
        ASSERT_TRUE(t.is_fall_trial()) << "task " << id;
        EXPECT_LT(t.fall->onset_index, t.fall->impact_index) << "task " << id;
        EXPECT_LT(t.fall->impact_index, t.sample_count()) << "task " << id;
        EXPECT_NO_THROW(t.validate());
    }
}

TEST(SynthesizerTest, AdlTrialsNotAnnotated) {
    util::rng gen(3);
    for (const int id : adl_task_ids()) {
        const trial t = synthesize_task(id, default_subject(), motion_tuning{},
                                        synthesis_config{}, gen);
        EXPECT_FALSE(t.is_fall_trial()) << "task " << id;
    }
}

TEST(SynthesizerTest, FreeFallDropsAccelMagnitude) {
    util::rng gen(4);
    const trial t = synthesize_task(30, default_subject(), motion_tuning{},
                                    synthesis_config{}, gen);
    ASSERT_TRUE(t.is_fall_trial());
    // Near the end of the falling phase, |a| should be well below 1 g.
    const std::size_t probe = t.fall->impact_index - 3;
    EXPECT_LT(accel_magnitude(t.samples[probe]), 0.6);
}

TEST(SynthesizerTest, ImpactSpikeFollowsFalling) {
    util::rng gen(5);
    const trial t = synthesize_task(31, default_subject(), motion_tuning{},
                                    synthesis_config{}, gen);
    ASSERT_TRUE(t.is_fall_trial());
    double peak = 0.0;
    for (std::size_t i = t.fall->impact_index;
         i < std::min(t.fall->impact_index + 10, t.sample_count()); ++i) {
        peak = std::max(peak, accel_magnitude(t.samples[i]));
    }
    EXPECT_GT(peak, 3.0);  // jogging trip impact is >= ~5 g nominal
}

TEST(SynthesizerTest, FallingDurationInPaperRange) {
    util::rng gen(6);
    for (const int id : {20, 28, 39}) {
        const trial t = synthesize_task(id, default_subject(), motion_tuning{},
                                        synthesis_config{}, gen);
        const double falling_ms =
            static_cast<double>(t.fall->falling_samples()) / t.sample_rate_hz * 1000.0;
        EXPECT_GE(falling_ms, 150.0) << "task " << id;
        EXPECT_LE(falling_ms, 1100.0) << "task " << id;
    }
}

TEST(SynthesizerTest, WalkingHasPeriodicBounce) {
    util::rng gen(7);
    const trial t = synthesize_task(6, default_subject(), motion_tuning{},
                                    synthesis_config{}, gen);
    // Walking accel magnitude oscillates: standard deviation is clearly
    // above the static noise floor.
    double mean = 0.0;
    for (const raw_sample& s : t.samples) mean += accel_magnitude(s);
    mean /= static_cast<double>(t.sample_count());
    double var = 0.0;
    for (const raw_sample& s : t.samples) {
        const double d = accel_magnitude(s) - mean;
        var += d * d;
    }
    var /= static_cast<double>(t.sample_count());
    EXPECT_GT(std::sqrt(var), 0.08);
}

TEST(SynthesizerTest, DeterministicForSameSeed) {
    util::rng g1(42), g2(42);
    const trial a = synthesize_task(30, default_subject(), motion_tuning{},
                                    synthesis_config{}, g1);
    const trial b = synthesize_task(30, default_subject(), motion_tuning{},
                                    synthesis_config{}, g2);
    ASSERT_EQ(a.sample_count(), b.sample_count());
    for (std::size_t i = 0; i < a.sample_count(); ++i) {
        EXPECT_FLOAT_EQ(a.samples[i].accel[0], b.samples[i].accel[0]);
        EXPECT_FLOAT_EQ(a.samples[i].gyro[2], b.samples[i].gyro[2]);
    }
    EXPECT_EQ(a.fall->onset_index, b.fall->onset_index);
}

TEST(SynthesizerTest, SamplesWithinSensorRange) {
    util::rng gen(8);
    const synthesis_config cfg;
    for (const int id : {4, 31, 39, 44}) {
        const trial t = synthesize_task(id, default_subject(), motion_tuning{}, cfg, gen);
        for (const raw_sample& s : t.samples) {
            for (const float a : s.accel) EXPECT_LE(std::abs(a), cfg.accel_clip_g);
            for (const float w : s.gyro) EXPECT_LE(std::abs(w), cfg.gyro_clip_rad_s);
        }
    }
}

TEST(SynthesizerTest, PostFallIsQuiet) {
    util::rng gen(9);
    const trial t = synthesize_task(34, default_subject(), motion_tuning{},
                                    synthesis_config{}, gen);
    // Average |a| over the last 50 samples (lying still) is ~1 g with tiny
    // variance.
    const std::size_t n = t.sample_count();
    double mean = 0.0;
    for (std::size_t i = n - 50; i < n; ++i) mean += accel_magnitude(t.samples[i]);
    mean /= 50.0;
    EXPECT_NEAR(mean, 1.0, 0.08);
}

TEST(SynthesizerTest, EmptyScriptRejected) {
    util::rng gen(10);
    EXPECT_THROW(synthesize_trial({}, default_subject(), synthesis_config{}, gen),
                 std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::data
