// Subject-heterogeneity tests: the subject model's factors must actually
// shape the signal — they are what makes subject-independent evaluation
// meaningfully harder than a random split.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generator.hpp"
#include "data/synthesizer.hpp"

namespace fallsense::data {
namespace {

trial make_trial(const subject_profile& subject, int task, std::uint64_t seed) {
    util::rng gen(seed);
    motion_tuning tuning;
    tuning.static_hold_s = 2.0;
    tuning.locomotion_s = 2.5;
    return synthesize_task(task, subject, tuning, synthesis_config{}, gen);
}

TEST(SubjectVariationTest, MountOffsetShiftsStaticAccelDirection) {
    subject_profile flat;
    flat.id = 1;
    subject_profile tilted = flat;
    tilted.mount_pitch_offset = 0.25;

    const trial a = make_trial(flat, 1, 5);
    const trial b = make_trial(tilted, 1, 5);
    double ax_flat = 0.0, ax_tilted = 0.0;
    for (const raw_sample& s : a.samples) ax_flat += s.accel[0];
    for (const raw_sample& s : b.samples) ax_tilted += s.accel[0];
    ax_flat /= static_cast<double>(a.sample_count());
    ax_tilted /= static_cast<double>(b.sample_count());
    // Pitched mounting projects gravity onto -x: means must differ by ~sin(0.25).
    EXPECT_NEAR(ax_tilted - ax_flat, -std::sin(0.25), 0.05);
}

TEST(SubjectVariationTest, ChannelGainScalesMagnitude) {
    subject_profile unit;
    unit.id = 1;
    subject_profile hot = unit;
    hot.channel_gain = {1.1, 1.1, 1.1, 1.0, 1.0, 1.0};

    const trial a = make_trial(unit, 1, 6);
    const trial b = make_trial(hot, 1, 6);
    double mag_a = 0.0, mag_b = 0.0;
    for (const raw_sample& s : a.samples) mag_a += std::abs(s.accel[2]);
    for (const raw_sample& s : b.samples) mag_b += std::abs(s.accel[2]);
    EXPECT_NEAR(mag_b / mag_a, 1.1, 0.02);
}

TEST(SubjectVariationTest, GaitHarmonicChangesWaveformNotEnergyScale) {
    subject_profile pure;
    pure.id = 1;
    pure.gait_harmonic_amp = 0.0;
    subject_profile shaped = pure;
    shaped.gait_harmonic_amp = 0.5;
    shaped.gait_harmonic_phase = 1.0;

    const trial a = make_trial(pure, 6, 7);
    const trial b = make_trial(shaped, 6, 7);
    // Same cadence/amplitude params but different waveform: the pointwise
    // difference must be substantial while the mean stays ~1 g.
    const std::size_t n = std::min(a.sample_count(), b.sample_count());
    double diff = 0.0, mean_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        diff += std::abs(static_cast<double>(a.samples[i].accel[2]) - b.samples[i].accel[2]);
        mean_b += std::sqrt(static_cast<double>(b.samples[i].accel[0]) * b.samples[i].accel[0] +
                            b.samples[i].accel[1] * b.samples[i].accel[1] +
                            b.samples[i].accel[2] * b.samples[i].accel[2]);
    }
    EXPECT_GT(diff / static_cast<double>(n), 0.02);
    EXPECT_NEAR(mean_b / static_cast<double>(n), 1.0, 0.15);
}

TEST(SubjectVariationTest, VigorScalesLocomotionBounce) {
    subject_profile calm;
    calm.id = 1;
    calm.vigor = 0.7;
    subject_profile vigorous = calm;
    vigorous.vigor = 1.5;

    auto bounce_stddev = [](const trial& t) {
        double mean = 0.0;
        for (const raw_sample& s : t.samples) mean += s.accel[2];
        mean /= static_cast<double>(t.sample_count());
        double var = 0.0;
        for (const raw_sample& s : t.samples) {
            var += (s.accel[2] - mean) * (s.accel[2] - mean);
        }
        return std::sqrt(var / static_cast<double>(t.sample_count()));
    };
    const double calm_sd = bounce_stddev(make_trial(calm, 8, 8));
    const double vig_sd = bounce_stddev(make_trial(vigorous, 8, 8));
    EXPECT_GT(vig_sd, calm_sd * 1.4);
}

TEST(SubjectVariationTest, CohortSubjectsProduceDistinctSignals) {
    const auto subjects = sample_subjects(2, 500, 77);
    const trial a = make_trial(subjects[0], 6, 9);
    const trial b = make_trial(subjects[1], 6, 9);
    // Different subjects, same task and trial seed: signals must differ
    // beyond noise (duration or content).
    bool differs = a.sample_count() != b.sample_count();
    if (!differs) {
        double diff = 0.0;
        for (std::size_t i = 0; i < a.sample_count(); ++i) {
            diff += std::abs(static_cast<double>(a.samples[i].accel[2]) -
                             b.samples[i].accel[2]);
        }
        differs = diff / static_cast<double>(a.sample_count()) > 0.01;
    }
    EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace fallsense::data
