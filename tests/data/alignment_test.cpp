#include "data/alignment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "data/generator.hpp"
#include "dsp/units.hpp"

namespace fallsense::data {
namespace {

dataset_profile tiny(dataset_profile p) {
    p.n_subjects = 1;
    p.tuning.static_hold_s = 1.0;
    p.tuning.locomotion_s = 1.2;
    p.tuning.post_fall_hold_s = 0.6;
    return p;
}

TEST(AlignmentTest, UnitConversionToG) {
    trial t;
    t.samples.push_back(raw_sample{{0.0f, 0.0f, 9.80665f}, {0.0f, 0.0f, 90.0f}});
    t.accel_units = accel_unit::meters_per_s2;
    t.gyro_units = gyro_unit::deg_per_s;
    align_trial(t, dsp::mat3::identity());
    EXPECT_NEAR(t.samples[0].accel[2], 1.0f, 1e-5);
    EXPECT_NEAR(t.samples[0].gyro[2], std::numbers::pi / 2.0, 1e-5);
    EXPECT_EQ(t.accel_units, accel_unit::g);
    EXPECT_EQ(t.gyro_units, gyro_unit::rad_per_s);
}

TEST(AlignmentTest, RotationAppliedToBothSensors) {
    trial t;
    t.samples.push_back(raw_sample{{1.0f, 0.0f, 0.0f}, {0.0f, 1.0f, 0.0f}});
    const dsp::mat3 r = dsp::rodrigues_rotation({0, 0, 1}, std::numbers::pi / 2.0);
    align_trial(t, r);
    EXPECT_NEAR(t.samples[0].accel[0], 0.0f, 1e-6);
    EXPECT_NEAR(t.samples[0].accel[1], 1.0f, 1e-6);
    EXPECT_NEAR(t.samples[0].gyro[0], -1.0f, 1e-6);
    EXPECT_NEAR(t.samples[0].gyro[1], 0.0f, 1e-6);
}

TEST(AlignmentTest, AlignedKfallMatchesReferencePhysics) {
    // After alignment a KFall standing trial must read ~1 g along +z in the
    // reference frame — i.e. the rotation actually undoes the mounting.
    const dataset kf = generate_dataset(tiny(kfall_profile()), 7);
    const dataset aligned = align_dataset(kf);
    for (const trial& t : aligned.trials) {
        if (t.task_id != 1) continue;
        double mean_z = 0.0;
        for (const raw_sample& s : t.samples) mean_z += s.accel[2];
        mean_z /= static_cast<double>(t.sample_count());
        EXPECT_NEAR(mean_z, 1.0, 0.1);
    }
}

TEST(AlignmentTest, AlignIsInverseOfGenerationRotation) {
    const dataset_profile profile = tiny(kfall_profile());
    const dataset kf = generate_dataset(profile, 3);
    const dataset reference = [&] {
        // Generate the identical data in the reference frame directly.
        dataset_profile ref = profile;
        ref.to_reference_frame = dsp::mat3::identity();
        ref.accel_units = accel_unit::g;
        ref.gyro_units = gyro_unit::rad_per_s;
        return generate_dataset(ref, 3);
    }();
    const dataset aligned = align_dataset(kf);
    ASSERT_EQ(aligned.trial_count(), reference.trial_count());
    for (std::size_t i = 0; i < aligned.trial_count(); ++i) {
        ASSERT_EQ(aligned.trials[i].sample_count(), reference.trials[i].sample_count());
        for (std::size_t j = 0; j < aligned.trials[i].sample_count(); j += 17) {
            for (int c = 0; c < 3; ++c) {
                EXPECT_NEAR(aligned.trials[i].samples[j].accel[c],
                            reference.trials[i].samples[j].accel[c], 2e-4);
                EXPECT_NEAR(aligned.trials[i].samples[j].gyro[c],
                            reference.trials[i].samples[j].gyro[c], 2e-4);
            }
        }
    }
}

TEST(MergeTest, CombinesAlignedDatasets) {
    const dataset kf = align_dataset(generate_dataset(tiny(kfall_profile()), 5));
    const dataset pt = align_dataset(generate_dataset(tiny(protechto_profile()), 5));
    const dataset merged = merge_datasets({kf, pt}, "merged");
    EXPECT_EQ(merged.trial_count(), kf.trial_count() + pt.trial_count());
    EXPECT_EQ(merged.subject_ids().size(), 2u);
    EXPECT_EQ(merged.name, "merged");
}

TEST(MergeTest, RejectsUnalignedInput) {
    const dataset kf = generate_dataset(tiny(kfall_profile()), 5);  // not aligned
    EXPECT_THROW(merge_datasets({kf}, "bad"), std::invalid_argument);
}

TEST(MergeTest, RejectsSubjectCollision) {
    dataset_profile a = tiny(protechto_profile());
    dataset_profile b = tiny(protechto_profile());  // same subject_id_base
    const dataset da = align_dataset(generate_dataset(a, 5));
    const dataset db = align_dataset(generate_dataset(b, 6));
    EXPECT_THROW(merge_datasets({da, db}, "bad"), std::invalid_argument);
}

TEST(MergeTest, RejectsEmptyList) {
    EXPECT_THROW(merge_datasets({}, "none"), std::invalid_argument);
}

TEST(AlignmentTest, AnnotationsPreserved) {
    const dataset kf = generate_dataset(tiny(kfall_profile()), 5);
    const dataset aligned = align_dataset(kf);
    for (std::size_t i = 0; i < kf.trial_count(); ++i) {
        ASSERT_EQ(kf.trials[i].is_fall_trial(), aligned.trials[i].is_fall_trial());
        if (kf.trials[i].is_fall_trial()) {
            EXPECT_EQ(kf.trials[i].fall->onset_index, aligned.trials[i].fall->onset_index);
            EXPECT_EQ(kf.trials[i].fall->impact_index, aligned.trials[i].fall->impact_index);
        }
    }
}

}  // namespace
}  // namespace fallsense::data
