#include "data/dataset_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/generator.hpp"
#include "util/csv.hpp"

namespace fallsense::data {
namespace {

dataset make_small_dataset(std::uint64_t seed) {
    dataset_profile p = protechto_profile();
    p.n_subjects = 1;
    p.task_ids = {1, 6, 30};  // static, walking, fall
    p.tuning.static_hold_s = 1.0;
    p.tuning.locomotion_s = 1.2;
    p.tuning.post_fall_hold_s = 0.6;
    return generate_dataset(p, seed);
}

class DatasetIoTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("fallsense_ds_" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }
    std::filesystem::path dir_;
};

TEST_F(DatasetIoTest, RoundTripPreservesEverything) {
    const dataset src = make_small_dataset(1);
    write_dataset_dir(src, dir_);
    const dataset loaded = read_dataset_dir(dir_);
    ASSERT_EQ(loaded.trial_count(), src.trial_count());
    for (std::size_t i = 0; i < src.trial_count(); ++i) {
        const trial& a = src.trials[i];
        // Loaded order follows the manifest, which follows src order.
        const trial& b = loaded.trials[i];
        EXPECT_EQ(a.subject_id, b.subject_id);
        EXPECT_EQ(a.task_id, b.task_id);
        EXPECT_EQ(a.trial_index, b.trial_index);
        EXPECT_EQ(a.accel_units, b.accel_units);
        EXPECT_EQ(a.gyro_units, b.gyro_units);
        ASSERT_EQ(a.sample_count(), b.sample_count());
        EXPECT_EQ(a.is_fall_trial(), b.is_fall_trial());
        if (a.is_fall_trial()) {
            EXPECT_EQ(a.fall->onset_index, b.fall->onset_index);
            EXPECT_EQ(a.fall->impact_index, b.fall->impact_index);
        }
        for (std::size_t j = 0; j < a.sample_count(); j += 37) {
            EXPECT_NEAR(a.samples[j].accel[1], b.samples[j].accel[1], 1e-4);
            EXPECT_NEAR(a.samples[j].gyro[2], b.samples[j].gyro[2], 1e-4);
        }
    }
}

TEST_F(DatasetIoTest, ManifestAndTrialFilesExist) {
    write_dataset_dir(make_small_dataset(2), dir_);
    EXPECT_TRUE(std::filesystem::exists(dir_ / "manifest.csv"));
    std::size_t csvs = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
        csvs += entry.path().extension() == ".csv" ? 1 : 0;
    }
    EXPECT_EQ(csvs, 3u + 1u);  // 3 trials + manifest
}

TEST_F(DatasetIoTest, KfallUnitsPreserved) {
    dataset_profile p = kfall_profile();
    p.n_subjects = 1;
    p.task_ids = {1};
    p.tuning.static_hold_s = 1.0;
    const dataset src = generate_dataset(p, 3);
    write_dataset_dir(src, dir_);
    const dataset loaded = read_dataset_dir(dir_);
    EXPECT_EQ(loaded.trials[0].accel_units, accel_unit::meters_per_s2);
    EXPECT_EQ(loaded.trials[0].gyro_units, gyro_unit::deg_per_s);
}

TEST_F(DatasetIoTest, MissingManifestThrows) {
    std::filesystem::create_directories(dir_);
    EXPECT_THROW(read_dataset_dir(dir_), std::runtime_error);
}

TEST_F(DatasetIoTest, MissingTrialFileThrows) {
    write_dataset_dir(make_small_dataset(4), dir_);
    // Delete one referenced file.
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
        if (entry.path().filename() != "manifest.csv") {
            std::filesystem::remove(entry.path());
            break;
        }
    }
    EXPECT_THROW(read_dataset_dir(dir_), std::runtime_error);
}

TEST_F(DatasetIoTest, CorruptManifestUnitThrows) {
    write_dataset_dir(make_small_dataset(5), dir_);
    // Rewrite the manifest with a bogus unit.
    util::csv_table manifest = util::read_csv_file(dir_ / "manifest.csv", true);
    manifest.rows[0][manifest.column_index("accel_unit")] = "furlongs";
    util::write_csv_file(dir_ / "manifest.csv", manifest.header, manifest.rows);
    EXPECT_THROW(read_dataset_dir(dir_), std::runtime_error);
}

}  // namespace
}  // namespace fallsense::data
