#include "data/trial_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "data/generator.hpp"
#include "util/csv.hpp"

namespace fallsense::data {
namespace {

TEST(TrialIoTest, RoundTripPreservesSamples) {
    util::rng gen(1);
    subject_profile subject;
    subject.id = 3;
    const trial src = synthesize_task(6, subject, motion_tuning{.static_hold_s = 1.0,
                                                                .locomotion_s = 1.5,
                                                                .post_fall_hold_s = 0.5},
                                      synthesis_config{}, gen);

    const auto path = std::filesystem::temp_directory_path() / "fallsense_trial_test.csv";
    write_trial_csv(src, path);
    const trial loaded = read_trial_csv(path, src.sample_rate_hz);
    ASSERT_EQ(loaded.sample_count(), src.sample_count());
    for (std::size_t i = 0; i < src.sample_count(); i += 13) {
        for (int c = 0; c < 3; ++c) {
            EXPECT_NEAR(loaded.samples[i].accel[c], src.samples[i].accel[c], 1e-4);
            EXPECT_NEAR(loaded.samples[i].gyro[c], src.samples[i].gyro[c], 1e-4);
        }
    }
    std::filesystem::remove(path);
}

TEST(TrialIoTest, ReaderRequiresHeaderColumns) {
    const auto path = std::filesystem::temp_directory_path() / "fallsense_badcols.csv";
    {
        std::vector<std::vector<std::string>> rows{{"1", "2"}};
        util::write_csv_file(path, {"foo", "bar"}, rows);
    }
    EXPECT_THROW(read_trial_csv(path, 100.0), std::out_of_range);
    std::filesystem::remove(path);
}

TEST(TrialIoTest, ReaderValidatesSampleRate) {
    EXPECT_THROW(read_trial_csv("whatever.csv", 0.0), std::invalid_argument);
}

TEST(TrialIoTest, MissingFileThrows) {
    EXPECT_THROW(read_trial_csv("/nonexistent/trial.csv", 100.0), std::runtime_error);
}

}  // namespace
}  // namespace fallsense::data
