#include "net/gateway.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "data/synthesizer.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "serve/scorer_factory.hpp"
#include "util/thread_pool.hpp"

namespace fallsense::net {
namespace {

using serve::engine_stats;
using serve::fleet_config;
using serve::fleet_router;

data::trial make_trial(int task, std::uint64_t seed) {
    util::rng gen(seed);
    data::subject_profile subject;
    subject.id = 1;
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.5;
    tuning.locomotion_s = 2.0;
    tuning.post_fall_hold_s = 1.0;
    return data::synthesize_task(task, subject, tuning, data::synthesis_config{}, gen);
}

/// Scorer keyed on free fall (mirrors the fleet test's): mean |a| much
/// below 1 g in the window tail.
float freefall_scorer(std::span<const float> window) {
    double mag = 0.0;
    const std::size_t n = window.size() / core::k_feature_channels;
    for (std::size_t i = n / 2; i < n; ++i) {
        const float ax = window[i * 9 + 0];
        const float ay = window[i * 9 + 1];
        const float az = window[i * 9 + 2];
        mag += std::sqrt(static_cast<double>(ax) * ax + ay * ay + az * az);
    }
    mag /= static_cast<double>(n - n / 2);
    return static_cast<float>(std::clamp(1.3 - mag, 0.0, 1.0));
}

std::unique_ptr<serve::batch_scorer> freefall() {
    serve::scorer_spec spec;
    spec.backend = serve::scorer_backend::callback;
    spec.window_samples = 20;
    spec.callback = freefall_scorer;
    spec.label = "freefall";
    return serve::make_scorer(spec);
}

fleet_config make_config(std::size_t shards = 1) {
    fleet_config c;
    c.engine.detector.window_samples = 20;
    c.engine.detector.overlap_fraction = 0.5;
    c.engine.detector.threshold = 0.65;
    c.engine.queue_capacity = 4;
    c.shards = shards;
    return c;
}

data::raw_sample quiet_sample() {
    data::raw_sample s;
    s.accel = {0.0f, 0.0f, 1.0f};
    return s;
}

using trigger_key = std::tuple<serve::session_id, std::size_t, float>;

struct run_result {
    std::vector<trigger_key> triggers;
    engine_stats totals;
    std::string manifest;  ///< obs::manifest_json of whatever the run recorded
};

bool operator==(const run_result& a, const run_result& b) {
    return a.triggers == b.triggers && a.totals.accepted == b.totals.accepted &&
           a.totals.rejected == b.totals.rejected && a.totals.dropped == b.totals.dropped &&
           a.totals.ingested == b.totals.ingested &&
           a.totals.windows_scored == b.totals.windows_scored &&
           a.totals.triggers == b.totals.triggers && a.manifest == b.manifest;
}

void collect(const serve::tick_result& result, std::vector<trigger_key>& out) {
    for (const serve::trigger_event& e : result.triggers) {
        out.emplace_back(e.session, e.sample_index, e.probability);
    }
}

/// The reference run: direct in-process feed/tick calls, no transport.
run_result run_direct(const std::vector<data::trial>& trials, std::size_t ticks) {
    obs::reset();
    obs::set_enabled(true);
    run_result r;
    {
        fleet_router fleet(make_config(), freefall());
        std::vector<serve::session_id> ids;
        for (std::size_t i = 0; i < trials.size(); ++i) ids.push_back(fleet.create_session());
        std::vector<std::size_t> cursors(trials.size(), 0);
        for (std::size_t t = 0; t < ticks; ++t) {
            for (std::size_t i = 0; i < trials.size(); ++i) {
                const auto& samples = trials[i].samples;
                fleet.feed(ids[i], samples[cursors[i]++ % samples.size()]);
            }
            collect(fleet.tick(), r.triggers);
        }
        r.totals = fleet.totals();
    }
    r.manifest = obs::manifest_json(obs::run_manifest{}, obs::snapshot());
    obs::set_enabled(false);
    return r;
}

/// Encode the identical traffic as one wire byte stream: per tick, one
/// sample frame per session followed by a tick frame.
std::vector<std::uint8_t> encode_traffic(const std::vector<data::trial>& trials,
                                         std::size_t ticks) {
    std::vector<std::uint8_t> stream;
    std::vector<std::size_t> cursors(trials.size(), 0);
    std::vector<std::uint32_t> seqs(trials.size(), 0);
    for (std::size_t t = 0; t < ticks; ++t) {
        for (std::size_t i = 0; i < trials.size(); ++i) {
            const auto& samples = trials[i].samples;
            const data::raw_sample& s = samples[cursors[i]++ % samples.size()];
            encode_samples(stream, static_cast<std::uint32_t>(i), seqs[i]++, {&s, 1});
        }
        encode_tick(stream);
    }
    return stream;
}

/// The transport-double run: the same traffic through a session_gateway,
/// delivered in `chunk`-byte reads (0 = the whole stream at once).
run_result run_gateway(const std::vector<data::trial>& trials, std::size_t ticks,
                       std::size_t chunk) {
    const std::vector<std::uint8_t> stream = encode_traffic(trials, ticks);
    obs::reset();
    obs::set_enabled(true);
    run_result r;
    {
        fleet_router fleet(make_config(), freefall());
        session_gateway gateway(
            fleet, [&](const serve::tick_result& result) { collect(result, r.triggers); });
        const auto conn = gateway.open_connection();
        std::vector<std::uint8_t> replies;
        const std::size_t step = chunk == 0 ? stream.size() : chunk;
        for (std::size_t off = 0; off < stream.size(); off += step) {
            const std::size_t n = std::min(step, stream.size() - off);
            EXPECT_TRUE(gateway.on_bytes(conn, {stream.data() + off, n}, replies))
                << "chunk " << chunk << " at offset " << off;
        }
        EXPECT_TRUE(replies.empty()) << "quiet traffic must draw no status frames";
        gateway.close_connection(conn);
        r.totals = fleet.totals();
    }
    // Deliberately no publish_metrics(): a transport-double run must
    // leave the registry — and hence the manifest — exactly as the
    // direct run left it.
    r.manifest = obs::manifest_json(obs::run_manifest{}, obs::snapshot());
    obs::set_enabled(false);
    return r;
}

TEST(SessionGatewayTest, ByteStreamRunIsBitIdenticalToDirectFeed) {
    // The determinism contract of the ingestion edge: a single-connection
    // gateway run is a pure function of byte-stream *content* — the same
    // triggers, engine totals, and metrics manifest as direct feed/tick
    // calls, for any read chunking and any thread count.
    std::vector<data::trial> trials;
    for (std::size_t i = 0; i < 4; ++i) {
        trials.push_back(make_trial(i % 2 == 0 ? 30 : 6, 90 + i));
    }
    const std::size_t ticks = trials[0].sample_count();

    util::set_global_threads(1);
    const run_result direct = run_direct(trials, ticks);
    ASSERT_FALSE(direct.triggers.empty()) << "fall trials should trigger";

    for (const std::size_t chunk : {0ul, 1ul, 7ul, k_header_bytes}) {
        run_result doubled = run_gateway(trials, ticks, chunk);
        EXPECT_TRUE(doubled == direct) << "chunk size " << chunk;
    }

    util::set_global_threads(4);
    const run_result threaded = run_gateway(trials, ticks, 0);
    util::set_global_threads(0);
    EXPECT_TRUE(threaded == direct) << "4 worker threads";
}

TEST(SessionGatewayTest, RejectNewestSaturationAnswersQueueFullFrames) {
    fleet_config config = make_config();
    config.engine.policy = serve::drop_policy::reject_newest;  // capacity 4
    fleet_router fleet(config, freefall());
    session_gateway gateway(fleet);
    const auto conn = gateway.open_connection();

    // One frame of 7 samples against a 4-deep queue: 4 admitted, 3
    // refused, and each refusal must name the exact (session, sequence)
    // it cost the sender.
    const std::vector<data::raw_sample> batch(7, quiet_sample());
    std::vector<std::uint8_t> bytes;
    encode_samples(bytes, 42, 100, batch);
    std::vector<std::uint8_t> replies;
    ASSERT_TRUE(gateway.on_bytes(conn, bytes, replies));

    frame_decoder decoder;
    decoder.push(replies);
    frame f;
    for (const std::uint32_t seq : {104u, 105u, 106u}) {
        ASSERT_EQ(decoder.next(f), decode_status::ok);
        EXPECT_EQ(f.type, frame_type::status);
        EXPECT_EQ(f.session, 42u);
        EXPECT_EQ(f.sequence, seq);
        EXPECT_EQ(static_cast<status_code>(f.status), status_code::queue_full);
    }
    EXPECT_EQ(decoder.next(f), decode_status::need_more);

    const gateway_stats& stats = gateway.stats();
    EXPECT_EQ(stats.samples_in, 7u);
    EXPECT_EQ(stats.samples_rejected, 3u);
    EXPECT_EQ(stats.reject_frames_out, 3u);
    EXPECT_EQ(stats.status_frames_out, 3u);
    EXPECT_EQ(fleet.totals().rejected, 3u);

    // Draining the queue with a tick makes room again: the next offer
    // is admitted silently.
    std::vector<std::uint8_t> more;
    encode_tick(more);
    const data::raw_sample s = quiet_sample();
    encode_samples(more, 42, 107, {&s, 1});
    replies.clear();
    ASSERT_TRUE(gateway.on_bytes(conn, more, replies));
    EXPECT_TRUE(replies.empty());
}

TEST(SessionGatewayTest, CloseEvictsAndUnknownCloseAnswersStatus) {
    fleet_router fleet(make_config(), freefall());
    session_gateway gateway(fleet);
    const auto conn = gateway.open_connection();
    std::vector<std::uint8_t> bytes;
    std::vector<std::uint8_t> replies;

    // Closing a session this connection never opened is answered, not
    // crashed on: the sender learns its id bookkeeping is off.
    encode_close(bytes, 99);
    ASSERT_TRUE(gateway.on_bytes(conn, bytes, replies));
    frame_decoder decoder;
    decoder.push(replies);
    frame f;
    ASSERT_EQ(decoder.next(f), decode_status::ok);
    EXPECT_EQ(f.type, frame_type::status);
    EXPECT_EQ(f.session, 99u);
    EXPECT_EQ(static_cast<status_code>(f.status), status_code::unknown_session);

    // First sample frame admits; close evicts; the next sample frame
    // under the same wire id admits a brand-new router session.
    const data::raw_sample s = quiet_sample();
    bytes.clear();
    replies.clear();
    encode_samples(bytes, 5, 0, {&s, 1});
    encode_close(bytes, 5);
    encode_samples(bytes, 5, 0, {&s, 1});
    ASSERT_TRUE(gateway.on_bytes(conn, bytes, replies));
    EXPECT_TRUE(replies.empty());

    const gateway_stats& stats = gateway.stats();
    EXPECT_EQ(stats.sessions_opened, 2u);
    EXPECT_EQ(stats.sessions_closed, 1u);
    EXPECT_EQ(stats.samples_in, 2u);
}

TEST(SessionGatewayTest, SequenceGapsAreCountedAndRolloverIsNotAGap) {
    fleet_router fleet(make_config(), freefall());
    session_gateway gateway(fleet);
    const auto conn = gateway.open_connection();
    const std::vector<data::raw_sample> pair(2, quiet_sample());
    std::vector<std::uint8_t> bytes;
    std::vector<std::uint8_t> replies;

    // Session 1 starts two samples before u32 rollover: 0xfffffffe,
    // 0xffffffff, then — wrapping — 0, 1.  Contiguous, no gap.
    encode_samples(bytes, 1, 0xfffffffeu, pair);
    encode_samples(bytes, 1, 0, pair);
    // Session 2 loses a frame in flight: 10..11, then 20.  One gap.
    encode_samples(bytes, 2, 10, pair);
    encode_samples(bytes, 2, 20, pair);
    ASSERT_TRUE(gateway.on_bytes(conn, bytes, replies));

    EXPECT_EQ(gateway.stats().seq_gaps, 1u);
    // Gapped samples still feed — sequence tracking is diagnostic, not
    // admission control.
    EXPECT_EQ(gateway.stats().samples_in, 8u);
    EXPECT_EQ(fleet.totals().accepted, 8u);
}

TEST(SessionGatewayTest, MalformedStreamAnswersStatusAndKillsConnection) {
    fleet_router fleet(make_config(), freefall());
    session_gateway gateway(fleet);
    const auto conn = gateway.open_connection();

    const std::vector<std::uint8_t> junk = {'G', 'E', 'T', ' ', '/', ' ', 'H', 'T', 'T',
                                            'P', '/', '1', '.', '1'};
    std::vector<std::uint8_t> replies;
    EXPECT_FALSE(gateway.on_bytes(conn, junk, replies));

    frame_decoder decoder;
    decoder.push(replies);
    frame f;
    ASSERT_EQ(decoder.next(f), decode_status::ok);
    EXPECT_EQ(f.type, frame_type::status);
    EXPECT_EQ(static_cast<status_code>(f.status), status_code::malformed_frame);
    EXPECT_EQ(gateway.stats().decode_errors, 1u);

    gateway.close_connection(conn);
    EXPECT_EQ(gateway.stats().connections_closed, 1u);
}

TEST(SessionGatewayTest, MultiConnectionRunMatchesSingleConnection) {
    const std::vector<data::trial> trials = {make_trial(20, 41), make_trial(6, 42)};
    const std::size_t ticks = 40;

    // Reference: both sessions' frames interleaved on one connection.
    run_result single;
    {
        fleet_router fleet(make_config(), freefall());
        session_gateway gateway(fleet, [&](const serve::tick_result& r) {
            collect(r, single.triggers);
        });
        const auto conn = gateway.open_connection();
        std::vector<std::uint8_t> bytes;
        std::vector<std::size_t> cursors(trials.size(), 0);
        std::vector<std::uint32_t> seq(trials.size(), 0);
        for (std::size_t t = 0; t < ticks; ++t) {
            for (std::size_t i = 0; i < trials.size(); ++i) {
                const auto& samples = trials[i].samples;
                const data::raw_sample& s = samples[cursors[i]++ % samples.size()];
                encode_samples(bytes, static_cast<std::uint32_t>(i), seq[i]++, {&s, 1});
            }
            encode_tick(bytes);
        }
        encode_bye(bytes);
        std::vector<std::uint8_t> replies;
        ASSERT_TRUE(gateway.on_bytes(conn, bytes, replies));
        EXPECT_TRUE(gateway.bye_received());
        EXPECT_EQ(gateway.stats().ticks, ticks);
        single.totals = fleet.totals();
    }

    // Same traffic, one connection per session, each voting its own
    // ticks — and connection 0 delivered entirely BEFORE connection 1,
    // the most adversarial interleaving the transport could produce.
    run_result split;
    {
        fleet_router fleet(make_config(), freefall());
        session_gateway gateway(fleet, [&](const serve::tick_result& r) {
            collect(r, split.triggers);
        });
        const auto conn_a = gateway.open_connection();
        const auto conn_b = gateway.open_connection();
        std::vector<std::uint8_t> bytes_a;
        std::vector<std::uint8_t> bytes_b;
        std::vector<std::size_t> cursors(trials.size(), 0);
        std::vector<std::uint32_t> seq(trials.size(), 0);
        for (std::size_t t = 0; t < ticks; ++t) {
            for (std::size_t i = 0; i < trials.size(); ++i) {
                const auto& samples = trials[i].samples;
                const data::raw_sample& s = samples[cursors[i]++ % samples.size()];
                std::vector<std::uint8_t>& bytes = i == 0 ? bytes_a : bytes_b;
                encode_samples(bytes, static_cast<std::uint32_t>(i), seq[i]++, {&s, 1});
            }
            encode_tick(bytes_a);
            encode_tick(bytes_b);
        }
        encode_bye(bytes_a);
        encode_bye(bytes_b);
        std::vector<std::uint8_t> replies;
        ASSERT_TRUE(gateway.on_bytes(conn_a, bytes_a, replies));
        // Connection A ran the whole script ahead: no tick may have run
        // yet (B never voted) and bye is not complete.
        EXPECT_EQ(gateway.stats().ticks, 0u);
        EXPECT_FALSE(gateway.bye_received());
        ASSERT_TRUE(gateway.on_bytes(conn_b, bytes_b, replies));
        EXPECT_TRUE(gateway.bye_received());
        EXPECT_EQ(gateway.stats().ticks, ticks);
        split.totals = fleet.totals();
    }

    EXPECT_EQ(single.triggers, split.triggers);
    EXPECT_EQ(single.totals.accepted, split.totals.accepted);
    EXPECT_EQ(single.totals.ingested, split.totals.ingested);
    EXPECT_EQ(single.totals.windows_scored, split.totals.windows_scored);
    EXPECT_EQ(single.totals.triggers, split.totals.triggers);
}

TEST(SessionGatewayTest, TickBarrierWithholdsNextRoundSamples) {
    fleet_router fleet(make_config(), freefall());
    session_gateway gateway(fleet);
    const auto conn_a = gateway.open_connection();
    const auto conn_b = gateway.open_connection();
    const data::raw_sample s = quiet_sample();

    // Connection A runs a round ahead: round-0 sample, vote, round-1
    // sample.  The round-1 sample must stay buffered until B's vote
    // completes the barrier and round 0 actually ticks.
    std::vector<std::uint8_t> bytes;
    encode_samples(bytes, 0, 0, {&s, 1});
    encode_tick(bytes);
    encode_samples(bytes, 0, 1, {&s, 1});
    std::vector<std::uint8_t> replies;
    ASSERT_TRUE(gateway.on_bytes(conn_a, bytes, replies));
    EXPECT_EQ(gateway.stats().ticks, 0u);
    EXPECT_EQ(fleet.totals().accepted, 1u);

    bytes.clear();
    encode_samples(bytes, 1, 0, {&s, 1});
    encode_tick(bytes);
    ASSERT_TRUE(gateway.on_bytes(conn_b, bytes, replies));
    EXPECT_EQ(gateway.stats().ticks, 1u);
    EXPECT_EQ(fleet.totals().accepted, 3u);  // A's round-1 sample released
}

TEST(SessionGatewayTest, ByeCompletesOnlyWhenEveryConnectionFinished) {
    fleet_router fleet(make_config(), freefall());
    session_gateway gateway(fleet);
    const auto conn_a = gateway.open_connection();
    const auto conn_b = gateway.open_connection();

    std::vector<std::uint8_t> bye;
    encode_bye(bye);
    std::vector<std::uint8_t> replies;
    ASSERT_TRUE(gateway.on_bytes(conn_a, bye, replies));
    EXPECT_FALSE(gateway.bye_received());
    ASSERT_TRUE(gateway.on_bytes(conn_b, bye, replies));
    EXPECT_TRUE(gateway.bye_received());
}

TEST(SessionGatewayTest, ConnectionDepartureReleasesBarrierAndBye) {
    fleet_router fleet(make_config(), freefall());
    session_gateway gateway(fleet);
    const auto conn_a = gateway.open_connection();
    const auto conn_b = gateway.open_connection();
    const data::raw_sample s = quiet_sample();

    // A votes and says bye; B neither votes nor byes, then drops (a
    // crashed sender).  The departure must both run A's pending round
    // and complete the run.
    std::vector<std::uint8_t> bytes;
    encode_samples(bytes, 0, 0, {&s, 1});
    encode_tick(bytes);
    encode_bye(bytes);
    std::vector<std::uint8_t> replies;
    ASSERT_TRUE(gateway.on_bytes(conn_a, bytes, replies));
    EXPECT_EQ(gateway.stats().ticks, 0u);
    EXPECT_FALSE(gateway.bye_received());

    gateway.close_connection(conn_b);
    EXPECT_EQ(gateway.stats().ticks, 1u);
    EXPECT_TRUE(gateway.bye_received());
}

TEST(SessionGatewayTest, RestoredWireSessionAdoptsRouterSession) {
    fleet_router fleet(make_config(), freefall());
    const serve::session_id restored = fleet.create_session();
    session_gateway gateway(fleet);
    const auto conn = gateway.open_connection();

    gateway.restore_wire_sessions(
        std::vector<restored_session>{{7, restored, 10}});

    // First sample frame for wire id 7 adopts the restored router
    // session (no admission) and expects sequence 10 — a correctly
    // resumed sender registers zero gaps.
    const data::raw_sample s = quiet_sample();
    std::vector<std::uint8_t> bytes;
    encode_samples(bytes, 7, 10, {&s, 1});
    std::vector<std::uint8_t> replies;
    ASSERT_TRUE(gateway.on_bytes(conn, bytes, replies));
    EXPECT_EQ(gateway.stats().sessions_rebound, 1u);
    EXPECT_EQ(gateway.stats().sessions_opened, 0u);
    EXPECT_EQ(gateway.stats().seq_gaps, 0u);
    EXPECT_EQ(fleet.stats(restored).accepted, 1u);
    EXPECT_EQ(fleet.live_session_count(), 1u);

    // A rebind is consumed once: an unknown wire id still admits fresh.
    bytes.clear();
    encode_samples(bytes, 8, 0, {&s, 1});
    ASSERT_TRUE(gateway.on_bytes(conn, bytes, replies));
    EXPECT_EQ(gateway.stats().sessions_opened, 1u);
    EXPECT_EQ(fleet.live_session_count(), 2u);
}

TEST(SessionGatewayTest, RestoredSessionResumingOffSequenceCountsAGap) {
    fleet_router fleet(make_config(), freefall());
    const serve::session_id restored = fleet.create_session();
    session_gateway gateway(fleet);
    const auto conn = gateway.open_connection();
    gateway.restore_wire_sessions(
        std::vector<restored_session>{{3, restored, 25}});

    const data::raw_sample s = quiet_sample();
    std::vector<std::uint8_t> bytes;
    encode_samples(bytes, 3, 11, {&s, 1});  // expected 25
    std::vector<std::uint8_t> replies;
    ASSERT_TRUE(gateway.on_bytes(conn, bytes, replies));
    EXPECT_EQ(gateway.stats().sessions_rebound, 1u);
    EXPECT_EQ(gateway.stats().seq_gaps, 1u);
}

TEST(SessionGatewayTest, PublishMetricsEmitsTheFullNetCounterSet) {
    obs::reset();
    obs::set_enabled(true);
    fleet_router fleet(make_config(), freefall());
    session_gateway gateway(fleet);
    const auto conn = gateway.open_connection();
    const data::raw_sample s = quiet_sample();
    std::vector<std::uint8_t> bytes;
    encode_samples(bytes, 0, 0, {&s, 1});
    encode_tick(bytes);
    encode_bye(bytes);
    std::vector<std::uint8_t> replies;
    ASSERT_TRUE(gateway.on_bytes(conn, bytes, replies));
    EXPECT_TRUE(gateway.bye_received());

    // Before publish: the registry carries no transport counters at all
    // (that is what keeps transport-double manifests comparable).
    for (const obs::counter_snapshot& c : obs::snapshot().counters) {
        EXPECT_FALSE(c.name.starts_with("net/")) << c.name;
    }

    gateway.publish_metrics();
    const std::vector<std::string> expected = {
        "net/bytes_in",         "net/bytes_out",       "net/frames_in",
        "net/samples_in",       "net/samples_rejected", "net/reject_frames_out",
        "net/status_frames_out", "net/ticks",           "net/sessions_opened",
        "net/sessions_rebound", "net/sessions_closed", "net/seq_gaps",
        "net/decode_errors",    "net/connections_opened", "net/connections_closed"};
    const obs::metrics_snapshot snap = obs::snapshot();
    for (const std::string& name : expected) {
        const bool found = std::any_of(snap.counters.begin(), snap.counters.end(),
                                       [&](const obs::counter_snapshot& c) {
                                           return c.name == name;
                                       });
        EXPECT_TRUE(found) << name << " missing from the published counter set";
    }
    obs::set_enabled(false);
    obs::reset();
}

}  // namespace
}  // namespace fallsense::net
