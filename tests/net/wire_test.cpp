#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace fallsense::net {
namespace {

data::raw_sample make_sample(float ax, float ay, float az, float gx, float gy, float gz) {
    data::raw_sample s;
    s.accel = {ax, ay, az};
    s.gyro = {gx, gy, gz};
    return s;
}

/// A deterministic-but-nontrivial sample for round-trip tests.
data::raw_sample sample_at(std::size_t i) {
    const float f = static_cast<float>(i);
    return make_sample(f * 0.25f, -f, 1.0f + f * 0.125f, f * 2.0f, 0.5f - f, f * f);
}

std::vector<frame> drain(frame_decoder& decoder) {
    std::vector<frame> frames;
    frame f;
    while (decoder.next(f) == decode_status::ok) frames.push_back(f);
    return frames;
}

void expect_frames_equal(const frame& a, const frame& b) {
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.session, b.session);
    EXPECT_EQ(a.sequence, b.sequence);
    EXPECT_EQ(a.status, b.status);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].accel, b.samples[i].accel) << "sample " << i;
        EXPECT_EQ(a.samples[i].gyro, b.samples[i].gyro) << "sample " << i;
    }
}

TEST(WireCodecTest, GoldenBytesMatchWireProtocolDocExample) {
    // The worked hex example in docs/wire_protocol.md, byte for byte:
    // sample frame, session 7, sequence 1, one sample with
    // accel (1.0, 0.0, -1.0) g and gyro (0.5, 0.25, 2.0) rad/s.
    const std::vector<std::uint8_t> golden = {
        0x46, 0x53,              // magic "FS"
        0x01,                    // version 1
        0x01,                    // type: sample
        0x07, 0x00, 0x00, 0x00,  // session 7
        0x01, 0x00, 0x00, 0x00,  // sequence 1
        0x01, 0x00,              // count 1
        0x00, 0x00, 0x80, 0x3f,  // ax = 1.0
        0x00, 0x00, 0x00, 0x00,  // ay = 0.0
        0x00, 0x00, 0x80, 0xbf,  // az = -1.0
        0x00, 0x00, 0x00, 0x3f,  // gx = 0.5
        0x00, 0x00, 0x80, 0x3e,  // gy = 0.25
        0x00, 0x00, 0x00, 0x40,  // gz = 2.0
    };
    ASSERT_EQ(golden.size(), k_header_bytes + k_sample_bytes);

    const data::raw_sample s = make_sample(1.0f, 0.0f, -1.0f, 0.5f, 0.25f, 2.0f);
    std::vector<std::uint8_t> encoded;
    const std::size_t n = encode_samples(encoded, 7, 1, {&s, 1});
    EXPECT_EQ(n, golden.size());
    EXPECT_EQ(encoded, golden);

    frame f;
    std::size_t used = 0;
    ASSERT_EQ(decode_frame(golden, f, &used), decode_status::ok);
    EXPECT_EQ(used, golden.size());
    EXPECT_EQ(f.type, frame_type::sample);
    EXPECT_EQ(f.session, 7u);
    EXPECT_EQ(f.sequence, 1u);
    ASSERT_EQ(f.samples.size(), 1u);
    EXPECT_EQ(f.samples[0].accel, s.accel);
    EXPECT_EQ(f.samples[0].gyro, s.gyro);
}

TEST(WireCodecTest, RoundTripsEveryFrameType) {
    std::vector<data::raw_sample> batch;
    for (std::size_t i = 0; i < 5; ++i) batch.push_back(sample_at(i));

    std::vector<std::uint8_t> buffer;
    encode_samples(buffer, 11, 400, batch);
    encode_status(buffer, 11, 404, status_code::queue_full);
    encode_tick(buffer);
    encode_close(buffer, 11);
    encode_status(buffer, 12, 0, status_code::unknown_session);
    encode_bye(buffer);

    frame f;
    std::size_t used = 0;
    std::span<const std::uint8_t> rest = buffer;

    ASSERT_EQ(decode_frame(rest, f, &used), decode_status::ok);
    EXPECT_EQ(f.type, frame_type::sample);
    EXPECT_EQ(f.session, 11u);
    EXPECT_EQ(f.sequence, 400u);
    ASSERT_EQ(f.samples.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(f.samples[i].accel, batch[i].accel);
        EXPECT_EQ(f.samples[i].gyro, batch[i].gyro);
    }
    rest = rest.subspan(used);

    ASSERT_EQ(decode_frame(rest, f, &used), decode_status::ok);
    EXPECT_EQ(f.type, frame_type::status);
    EXPECT_EQ(f.session, 11u);
    EXPECT_EQ(f.sequence, 404u);
    EXPECT_EQ(static_cast<status_code>(f.status), status_code::queue_full);
    EXPECT_TRUE(f.samples.empty());
    rest = rest.subspan(used);

    ASSERT_EQ(decode_frame(rest, f, &used), decode_status::ok);
    EXPECT_EQ(f.type, frame_type::tick);
    rest = rest.subspan(used);

    ASSERT_EQ(decode_frame(rest, f, &used), decode_status::ok);
    EXPECT_EQ(f.type, frame_type::close);
    EXPECT_EQ(f.session, 11u);
    rest = rest.subspan(used);

    ASSERT_EQ(decode_frame(rest, f, &used), decode_status::ok);
    EXPECT_EQ(f.type, frame_type::status);
    EXPECT_EQ(static_cast<status_code>(f.status), status_code::unknown_session);
    rest = rest.subspan(used);

    ASSERT_EQ(decode_frame(rest, f, &used), decode_status::ok);
    EXPECT_EQ(f.type, frame_type::bye);
    rest = rest.subspan(used);
    EXPECT_TRUE(rest.empty());
}

TEST(WireCodecTest, SequenceNumbersCoverTheFullU32Range) {
    const data::raw_sample s = sample_at(3);
    for (const std::uint32_t seq : {0u, 1u, 0x7fffffffu, 0xfffffffeu, 0xffffffffu}) {
        std::vector<std::uint8_t> buffer;
        encode_samples(buffer, 0xffffffffu, seq, {&s, 1});
        frame f;
        std::size_t used = 0;
        ASSERT_EQ(decode_frame(buffer, f, &used), decode_status::ok) << seq;
        EXPECT_EQ(f.sequence, seq);
        EXPECT_EQ(f.session, 0xffffffffu);
    }
}

TEST(WireCodecTest, EncodeSamplesRejectsEmptyAndOversizedBatches) {
    std::vector<std::uint8_t> buffer;
    EXPECT_THROW(encode_samples(buffer, 0, 0, {}), std::invalid_argument);
    const std::vector<data::raw_sample> too_many(k_max_frame_samples + 1);
    EXPECT_THROW(encode_samples(buffer, 0, 0, too_many), std::invalid_argument);
    EXPECT_TRUE(buffer.empty() || buffer.size() == k_header_bytes);

    buffer.clear();
    const std::vector<data::raw_sample> at_cap(k_max_frame_samples);
    EXPECT_EQ(encode_samples(buffer, 0, 0, at_cap), k_max_frame_bytes);
}

TEST(WireCodecTest, MalformedInputTable) {
    // A valid single-sample frame to mutate; every row of the table is
    // one way a hostile or corrupt stream can break, and each must map
    // to exactly one typed error without reading out of bounds (this
    // file runs under ASan/UBSan in CI).
    const data::raw_sample s = sample_at(0);
    std::vector<std::uint8_t> valid;
    encode_samples(valid, 1, 2, {&s, 1});

    struct row {
        const char* name;
        std::vector<std::uint8_t> bytes;
        decode_status want;
    };
    std::vector<row> table;

    // Truncated header: every strict prefix of the header is a torn
    // frame, not an error.
    for (std::size_t n = 0; n < k_header_bytes; ++n) {
        table.push_back({"truncated header",
                         {valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(n)},
                         decode_status::need_more});
    }
    // Truncated payload: full header, half the sample.
    table.push_back({"truncated payload",
                     {valid.begin(), valid.begin() + k_header_bytes + 12},
                     decode_status::need_more});

    auto mutated = [&](std::size_t offset, std::uint8_t value) {
        std::vector<std::uint8_t> bytes = valid;
        bytes[offset] = value;
        return bytes;
    };
    table.push_back({"bad magic[0]", mutated(0, 'X'), decode_status::bad_magic});
    table.push_back({"bad magic[1]", mutated(1, 'X'), decode_status::bad_magic});
    table.push_back({"bad version", mutated(2, 2), decode_status::bad_version});
    table.push_back({"type zero", mutated(3, 0), decode_status::bad_type});
    table.push_back({"type unknown", mutated(3, 6), decode_status::bad_type});
    table.push_back({"type 0xff", mutated(3, 0xff), decode_status::bad_type});
    // Validation order: magic wins even when everything else is junk.
    {
        std::vector<std::uint8_t> bytes = mutated(0, 'X');
        bytes[2] = 9;
        bytes[3] = 0xff;
        table.push_back({"magic checked first", bytes, decode_status::bad_magic});
    }
    // Count inconsistent with the type.
    table.push_back({"empty sample frame", mutated(12, 0), decode_status::bad_count});
    {
        std::vector<std::uint8_t> bytes = valid;
        bytes[12] = static_cast<std::uint8_t>(k_max_frame_samples + 1);
        table.push_back({"oversized batch", bytes, decode_status::oversized_batch});
    }
    {
        // Oversized must be reported from the count alone — the payload
        // those 65535 samples would need is absent, but need_more would
        // let a hostile header demand unbounded buffering.
        std::vector<std::uint8_t> bytes = valid;
        bytes[12] = 0xff;
        bytes[13] = 0xff;
        table.push_back({"oversized batch, u16 max", bytes, decode_status::oversized_batch});
    }
    for (const frame_type control : {frame_type::tick, frame_type::close, frame_type::bye}) {
        std::vector<std::uint8_t> bytes(valid.begin(), valid.begin() + k_header_bytes);
        bytes[3] = static_cast<std::uint8_t>(control);
        bytes[12] = 1;
        table.push_back({"control frame with payload count", bytes, decode_status::bad_count});
    }
    {
        std::vector<std::uint8_t> bytes(valid.begin(), valid.begin() + k_header_bytes);
        bytes[3] = static_cast<std::uint8_t>(frame_type::status);
        bytes[12] = 0;
        table.push_back({"status frame with code zero", bytes, decode_status::bad_count});
    }

    for (const row& r : table) {
        frame f;
        std::size_t used = 0xdead;
        EXPECT_EQ(decode_frame(r.bytes, f, &used), r.want)
            << r.name << " (" << r.bytes.size() << " bytes)";
        EXPECT_EQ(used, 0u) << r.name << ": nothing may be consumed on non-ok";
    }
}

TEST(WireCodecTest, UnknownStatusCodesDecodeForForwardCompatibility) {
    std::vector<std::uint8_t> buffer;
    encode_status(buffer, 5, 6, status_code::queue_full);
    buffer[12] = 0x2a;  // a code this version has never heard of
    frame f;
    std::size_t used = 0;
    ASSERT_EQ(decode_frame(buffer, f, &used), decode_status::ok);
    EXPECT_EQ(f.status, 0x2au);
}

TEST(FrameDecoderTest, ReassemblyIsChunkingIndependent) {
    // The same byte stream delivered whole, byte-by-byte, and in awkward
    // chunk sizes must yield the identical frame sequence — the property
    // the gateway's determinism contract stands on.
    std::vector<std::uint8_t> stream;
    for (std::size_t i = 0; i < 7; ++i) {
        std::vector<data::raw_sample> batch;
        for (std::size_t k = 0; k <= i; ++k) batch.push_back(sample_at(i * 10 + k));
        encode_samples(stream, static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i * 100),
                       batch);
        if (i % 2 == 0) encode_tick(stream);
    }
    encode_bye(stream);

    frame_decoder whole;
    whole.push(stream);
    const std::vector<frame> want = drain(whole);
    ASSERT_GT(want.size(), 8u);

    for (const std::size_t chunk : {1ul, 2ul, 3ul, 7ul, 13ul, k_header_bytes}) {
        frame_decoder decoder;
        std::vector<frame> got;
        for (std::size_t off = 0; off < stream.size(); off += chunk) {
            const std::size_t n = std::min(chunk, stream.size() - off);
            decoder.push({stream.data() + off, n});
            for (frame& f : drain(decoder)) got.push_back(std::move(f));
        }
        ASSERT_EQ(got.size(), want.size()) << "chunk size " << chunk;
        for (std::size_t i = 0; i < want.size(); ++i) {
            SCOPED_TRACE(testing::Message() << "chunk size " << chunk << ", frame " << i);
            expect_frames_equal(got[i], want[i]);
        }
        EXPECT_EQ(decoder.buffered_bytes(), 0u) << "chunk size " << chunk;
    }
}

TEST(FrameDecoderTest, FramingErrorIsSticky) {
    std::vector<std::uint8_t> stream;
    encode_tick(stream);
    stream.insert(stream.end(), {'n', 'o', 't', ' ', 'a', ' ', 'f', 'r', 'a', 'm', 'e', '!',
                                 '!', '!'});

    frame_decoder decoder;
    decoder.push(stream);
    frame f;
    ASSERT_EQ(decoder.next(f), decode_status::ok);
    EXPECT_EQ(f.type, frame_type::tick);
    ASSERT_EQ(decoder.next(f), decode_status::bad_magic);
    // Even fresh valid bytes cannot resurrect the stream: there is no
    // resynchronization point once framing is lost.
    std::vector<std::uint8_t> more;
    encode_tick(more);
    decoder.push(more);
    EXPECT_EQ(decoder.next(f), decode_status::bad_magic);
}

TEST(FrameDecoderTest, TornFrameAcrossPushesDoesNotError) {
    std::vector<std::uint8_t> stream;
    const data::raw_sample s = sample_at(1);
    encode_samples(stream, 9, 0, {&s, 1});

    frame_decoder decoder;
    frame f;
    decoder.push({stream.data(), 5});  // header torn mid-session-id
    EXPECT_EQ(decoder.next(f), decode_status::need_more);
    EXPECT_EQ(decoder.buffered_bytes(), 5u);
    decoder.push({stream.data() + 5, stream.size() - 5});
    ASSERT_EQ(decoder.next(f), decode_status::ok);
    EXPECT_EQ(f.session, 9u);
    EXPECT_EQ(decoder.next(f), decode_status::need_more);
}

}  // namespace
}  // namespace fallsense::net
