#include "net/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "data/synthesizer.hpp"
#include "net/client.hpp"
#include "serve/scorer_factory.hpp"

namespace fallsense::net {
namespace {

using serve::fleet_config;
using serve::fleet_router;

data::trial make_trial(int task, std::uint64_t seed) {
    util::rng gen(seed);
    data::subject_profile subject;
    subject.id = 1;
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.5;
    tuning.locomotion_s = 2.0;
    tuning.post_fall_hold_s = 1.0;
    return data::synthesize_task(task, subject, tuning, data::synthesis_config{}, gen);
}

float freefall_scorer(std::span<const float> window) {
    double mag = 0.0;
    const std::size_t n = window.size() / core::k_feature_channels;
    for (std::size_t i = n / 2; i < n; ++i) {
        const float ax = window[i * 9 + 0];
        const float ay = window[i * 9 + 1];
        const float az = window[i * 9 + 2];
        mag += std::sqrt(static_cast<double>(ax) * ax + ay * ay + az * az);
    }
    mag /= static_cast<double>(n - n / 2);
    return static_cast<float>(std::clamp(1.3 - mag, 0.0, 1.0));
}

std::unique_ptr<serve::batch_scorer> freefall() {
    serve::scorer_spec spec;
    spec.backend = serve::scorer_backend::callback;
    spec.window_samples = 20;
    spec.callback = freefall_scorer;
    spec.label = "freefall";
    return serve::make_scorer(spec);
}

fleet_config make_config() {
    fleet_config c;
    c.engine.detector.window_samples = 20;
    c.engine.detector.overlap_fraction = 0.5;
    c.engine.detector.threshold = 0.65;
    c.engine.queue_capacity = 4;
    c.shards = 1;
    return c;
}

using trigger_key = std::tuple<serve::session_id, std::size_t, float>;

void collect(const serve::tick_result& result, std::vector<trigger_key>& out) {
    for (const serve::trigger_event& e : result.triggers) {
        out.emplace_back(e.session, e.sample_index, e.probability);
    }
}

TEST(ParseEndpointTest, AcceptsPortColonPortAndHostPort) {
    auto e = parse_endpoint("9000");
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->host, "127.0.0.1");
    EXPECT_EQ(e->port, 9000);

    e = parse_endpoint(":9001");
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->host, "127.0.0.1");
    EXPECT_EQ(e->port, 9001);

    e = parse_endpoint("10.1.2.3:80");
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->host, "10.1.2.3");
    EXPECT_EQ(e->port, 80);

    e = parse_endpoint("0");
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->port, 0);

    for (const char* bad : {"", ":", "host:", "host:notaport", "host:-1", "host:65536",
                            "host:123junk", "12:34:56"}) {
        EXPECT_FALSE(parse_endpoint(bad).has_value()) << '"' << bad << '"';
    }
}

TEST(IngestServerTest, LoopbackRunMatchesDirectFeed) {
    // The full transport stack — encode, TCP loopback, poll reactor,
    // decode, feed — must reproduce the direct-call run exactly.
    std::vector<data::trial> trials;
    for (std::size_t i = 0; i < 3; ++i) {
        trials.push_back(make_trial(i % 2 == 0 ? 30 : 6, 70 + i));
    }
    const std::size_t ticks = trials[0].sample_count();

    // Reference: direct in-process feed/tick.
    std::vector<trigger_key> direct_triggers;
    serve::engine_stats direct_totals;
    {
        fleet_router fleet(make_config(), freefall());
        std::vector<serve::session_id> ids;
        for (std::size_t i = 0; i < trials.size(); ++i) ids.push_back(fleet.create_session());
        std::vector<std::size_t> cursors(trials.size(), 0);
        for (std::size_t t = 0; t < ticks; ++t) {
            for (std::size_t i = 0; i < trials.size(); ++i) {
                const auto& samples = trials[i].samples;
                fleet.feed(ids[i], samples[cursors[i]++ % samples.size()]);
            }
            collect(fleet.tick(), direct_triggers);
        }
        direct_totals = fleet.totals();
    }
    ASSERT_FALSE(direct_triggers.empty());

    // Networked: ephemeral-port server on this thread, blocking client
    // on a helper thread replaying the identical traffic.
    fleet_router fleet(make_config(), freefall());
    std::vector<trigger_key> net_triggers;
    auto server = std::make_unique<ingest_server>(
        endpoint{"127.0.0.1", 0}, fleet,
        [&](const serve::tick_result& result) { collect(result, net_triggers); });
    const endpoint where{"127.0.0.1", server->port()};

    std::thread sender([&] {
        wire_client client = wire_client::connect_to(where);
        std::vector<std::size_t> cursors(trials.size(), 0);
        std::vector<std::uint32_t> seqs(trials.size(), 0);
        for (std::size_t t = 0; t < ticks; ++t) {
            for (std::size_t i = 0; i < trials.size(); ++i) {
                const auto& samples = trials[i].samples;
                const data::raw_sample& s = samples[cursors[i]++ % samples.size()];
                client.queue_samples(static_cast<std::uint32_t>(i), seqs[i]++, {&s, 1});
            }
            client.queue_tick();
            client.flush();
            client.poll_statuses();
        }
        client.queue_bye();
        client.flush();
        // No drain_to_eof here: the server object outlives run() in this
        // test, so EOF only arrives once it is destroyed below.
    });

    server->run();
    const gateway_stats stats = server->gateway().stats();
    server.reset();  // closes the socket; lets the sender finish
    sender.join();

    EXPECT_EQ(net_triggers, direct_triggers);
    EXPECT_EQ(fleet.totals().accepted, direct_totals.accepted);
    EXPECT_EQ(fleet.totals().ingested, direct_totals.ingested);
    EXPECT_EQ(fleet.totals().windows_scored, direct_totals.windows_scored);
    EXPECT_EQ(fleet.totals().triggers, direct_totals.triggers);

    EXPECT_EQ(stats.connections_opened, 1u);
    EXPECT_EQ(stats.ticks, ticks);
    EXPECT_EQ(stats.samples_in, trials.size() * ticks);
    EXPECT_EQ(stats.sessions_opened, trials.size());
    EXPECT_EQ(stats.decode_errors, 0u);
    EXPECT_EQ(stats.seq_gaps, 0u);
}

TEST(IngestServerTest, RejectFramesReachTheClient) {
    fleet_config config = make_config();
    config.engine.policy = serve::drop_policy::reject_newest;  // capacity 4
    fleet_router fleet(config, freefall());
    auto server = std::make_unique<ingest_server>(endpoint{"127.0.0.1", 0}, fleet);
    const endpoint where{"127.0.0.1", server->port()};

    client_stats stats;
    std::thread sender([&] {
        wire_client client = wire_client::connect_to(where);
        // 7 samples against a 4-deep queue: exactly 3 queue_full answers.
        data::raw_sample s;
        s.accel = {0.0f, 0.0f, 1.0f};
        const std::vector<data::raw_sample> burst(7, s);
        client.queue_samples(1, 0, burst);
        client.queue_bye();
        client.flush();
        // The reject frames are in flight or queued server-side; keep
        // polling until all three arrive (the server flushes its outbuf
        // before run() returns).
        while (client.stats().reject_frames_in < 3) client.poll_statuses();
        stats = client.stats();
    });

    server->run();
    const gateway_stats gw = server->gateway().stats();
    server.reset();
    sender.join();

    EXPECT_EQ(stats.reject_frames_in, 3u);
    EXPECT_EQ(stats.status_frames_in, 3u);
    EXPECT_EQ(gw.samples_rejected, 3u);
    EXPECT_EQ(gw.reject_frames_out, 3u);
    EXPECT_EQ(gw.bytes_out, stats.bytes_received);
}

TEST(IngestServerTest, ClientSplitsOversizedBatchesAcrossFrames) {
    fleet_router fleet(make_config(), freefall());
    auto server = std::make_unique<ingest_server>(endpoint{"127.0.0.1", 0}, fleet);
    const endpoint where{"127.0.0.1", server->port()};

    const std::size_t n = k_max_frame_samples * 2 + 5;  // 3 frames on the wire
    std::thread sender([&] {
        wire_client client = wire_client::connect_to(where);
        data::raw_sample s;
        s.accel = {0.0f, 0.0f, 1.0f};
        const std::vector<data::raw_sample> big(n, s);
        client.queue_samples(0, 0, big);
        client.queue_bye();
        client.flush();
    });

    server->run();
    const gateway_stats gw = server->gateway().stats();
    server.reset();
    sender.join();

    EXPECT_EQ(gw.samples_in, n);
    // 3 sample frames + 1 bye, with consecutive sequence numbers — no
    // gap events despite the split.
    EXPECT_EQ(gw.frames_in, 4u);
    EXPECT_EQ(gw.seq_gaps, 0u);
}

}  // namespace
}  // namespace fallsense::net
