// Registry semantics: counter/gauge/histogram behaviour, snapshot
// ordering, the disabled no-op contract, and counter exactness under
// concurrent increments from the thread pool.
#include <gtest/gtest.h>

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace fallsense {
namespace {

class ObsMetricsTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::reset();
        obs::set_enabled(true);
    }
    void TearDown() override {
        obs::set_enabled(false);
        obs::reset();
        util::set_global_threads(0);
    }
};

TEST_F(ObsMetricsTest, CountersAccumulate) {
    obs::add_counter("a/count");
    obs::add_counter("a/count", 4);
    const obs::metrics_snapshot snap = obs::snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].name, "a/count");
    EXPECT_EQ(snap.counters[0].value, 5u);
}

TEST_F(ObsMetricsTest, GaugesKeepLastValue) {
    obs::set_gauge("a/gauge", 1.5);
    obs::set_gauge("a/gauge", -2.25);
    const obs::metrics_snapshot snap = obs::snapshot();
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(snap.gauges[0].value, -2.25);
}

TEST_F(ObsMetricsTest, HistogramBucketsObservations) {
    // Bounds are a 1-2-5 µs series: 0.5 → bucket 0 (≤1), 3.0 → bucket 2
    // (≤5), 150.0 → bucket 7 (≤200), 1e6 → overflow bucket.
    obs::observe_latency_us("a/lat", 0.5);
    obs::observe_latency_us("a/lat", 3.0);
    obs::observe_latency_us("a/lat", 150.0);
    obs::observe_latency_us("a/lat", 1e6);
    const obs::metrics_snapshot snap = obs::snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    const obs::histogram_snapshot& h = snap.histograms[0];
    ASSERT_EQ(h.bucket_counts.size(), obs::latency_bucket_bounds().size() + 1);
    EXPECT_EQ(h.bucket_counts[0], 1u);
    EXPECT_EQ(h.bucket_counts[2], 1u);
    EXPECT_EQ(h.bucket_counts[7], 1u);
    EXPECT_EQ(h.bucket_counts.back(), 1u);
    EXPECT_EQ(h.count, 4u);
    EXPECT_DOUBLE_EQ(h.sum_us, 0.5 + 3.0 + 150.0 + 1e6);
}

TEST_F(ObsMetricsTest, BucketBoundaryValuesLandInTheLowerBucket) {
    obs::observe_latency_us("a/lat", 1.0);   // exactly the first bound
    obs::observe_latency_us("a/lat", 10000.0);  // exactly the last bound
    const obs::metrics_snapshot snap = obs::snapshot();
    const obs::histogram_snapshot& h = snap.histograms[0];
    EXPECT_EQ(h.bucket_counts[0], 1u);
    EXPECT_EQ(h.bucket_counts[obs::latency_bucket_bounds().size() - 1], 1u);
    EXPECT_EQ(h.bucket_counts.back(), 0u);
}

TEST_F(ObsMetricsTest, SnapshotIsSortedByName) {
    obs::add_counter("z/last");
    obs::add_counter("a/first");
    obs::add_counter("m/middle");
    obs::set_gauge("z/g", 1.0);
    obs::set_gauge("b/g", 2.0);
    const obs::metrics_snapshot snap = obs::snapshot();
    ASSERT_EQ(snap.counters.size(), 3u);
    EXPECT_EQ(snap.counters[0].name, "a/first");
    EXPECT_EQ(snap.counters[1].name, "m/middle");
    EXPECT_EQ(snap.counters[2].name, "z/last");
    ASSERT_EQ(snap.gauges.size(), 2u);
    EXPECT_EQ(snap.gauges[0].name, "b/g");
    EXPECT_EQ(snap.gauges[1].name, "z/g");
}

TEST_F(ObsMetricsTest, DisabledRegistryRecordsNothing) {
    obs::set_enabled(false);
    obs::add_counter("a/count");
    obs::set_gauge("a/gauge", 1.0);
    obs::observe_latency_us("a/lat", 1.0);
    const obs::metrics_snapshot snap = obs::snapshot();
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.gauges.empty());
    EXPECT_TRUE(snap.histograms.empty());
}

TEST_F(ObsMetricsTest, ResetClearsEverything) {
    obs::add_counter("a/count");
    obs::set_gauge("a/gauge", 1.0);
    obs::reset();
    const obs::metrics_snapshot snap = obs::snapshot();
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.gauges.empty());
}

TEST_F(ObsMetricsTest, ConcurrentIncrementsAreExact) {
    util::set_global_threads(4);
    constexpr std::size_t k_tasks = 2000;
    util::parallel_for(0, k_tasks, 1, [](std::size_t i) {
        obs::add_counter("a/parallel");
        obs::add_counter("a/parallel", i % 3);
    });
    std::uint64_t expected_extra = 0;
    for (std::size_t i = 0; i < k_tasks; ++i) expected_extra += i % 3;
    const obs::metrics_snapshot snap = obs::snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].value, k_tasks + expected_extra);
}

}  // namespace
}  // namespace fallsense
