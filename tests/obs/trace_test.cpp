// Stage tracer semantics: scope counts, nesting (inclusive time), the
// disabled no-op contract, and thread-count-independent merged counts.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace fallsense {
namespace {

class ObsTraceTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::reset();
        obs::set_enabled(true);
    }
    void TearDown() override {
        obs::set_enabled(false);
        obs::reset();
        util::set_global_threads(0);
    }

    static const obs::stage_snapshot* find(const std::vector<obs::stage_snapshot>& stages,
                                           std::string_view name) {
        for (const obs::stage_snapshot& s : stages) {
            if (s.name == name) return &s;
        }
        return nullptr;
    }
};

TEST_F(ObsTraceTest, ScopeCountsInvocations) {
    for (int i = 0; i < 5; ++i) {
        OBS_SCOPE("t/stage");
    }
    const std::vector<obs::stage_snapshot> stages = obs::merged_stage_snapshots();
    const obs::stage_snapshot* s = find(stages, "t/stage");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->count, 5u);
    EXPECT_GE(s->wall_ms, 0.0);
    EXPECT_GE(s->cpu_ms, 0.0);
}

TEST_F(ObsTraceTest, NestedScopesRecordSeparatelyAndInclusively) {
    {
        OBS_SCOPE("t/outer");
        for (int i = 0; i < 3; ++i) {
            OBS_SCOPE("t/inner");
            volatile double sink = 0.0;
            for (int j = 0; j < 20000; ++j) sink = sink + 1.0;
        }
    }
    const std::vector<obs::stage_snapshot> stages = obs::merged_stage_snapshots();
    const obs::stage_snapshot* outer = find(stages, "t/outer");
    const obs::stage_snapshot* inner = find(stages, "t/inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->count, 1u);
    EXPECT_EQ(inner->count, 3u);
    // Stage times are inclusive: the outer scope contains the inner ones.
    EXPECT_GE(outer->wall_ms, inner->wall_ms);
}

TEST_F(ObsTraceTest, MergedSnapshotIsSortedByName) {
    { OBS_SCOPE("t/z"); }
    { OBS_SCOPE("t/a"); }
    { OBS_SCOPE("t/m"); }
    const std::vector<obs::stage_snapshot> stages = obs::merged_stage_snapshots();
    ASSERT_EQ(stages.size(), 3u);
    EXPECT_EQ(stages[0].name, "t/a");
    EXPECT_EQ(stages[1].name, "t/m");
    EXPECT_EQ(stages[2].name, "t/z");
}

TEST_F(ObsTraceTest, DisabledScopesRecordNothing) {
    obs::set_enabled(false);
    { OBS_SCOPE("t/off"); }
    EXPECT_TRUE(obs::merged_stage_snapshots().empty());
}

TEST_F(ObsTraceTest, ResetClearsAllThreadTables) {
    { OBS_SCOPE("t/stage"); }
    obs::reset_stage_traces();
    EXPECT_TRUE(obs::merged_stage_snapshots().empty());
}

// Counts merged over per-thread tables must not depend on how the pool
// distributed the work: 200 scope entries are 200 scope entries whether
// one thread or four ran them.
TEST_F(ObsTraceTest, MergedCountsAreThreadCountIndependent) {
    constexpr std::size_t k_tasks = 200;
    auto run = [&](std::size_t threads) {
        obs::reset();
        util::set_global_threads(threads);
        util::parallel_for(0, k_tasks, 1, [](std::size_t) { OBS_SCOPE("t/parallel"); });
        const std::vector<obs::stage_snapshot> stages = obs::merged_stage_snapshots();
        const obs::stage_snapshot* s = find(stages, "t/parallel");
        return s == nullptr ? std::uint64_t{0} : s->count;
    };
    EXPECT_EQ(run(1), k_tasks);
    EXPECT_EQ(run(4), k_tasks);
}

// Stage snapshots ride along in obs::snapshot() next to the registry maps.
TEST_F(ObsTraceTest, SnapshotIncludesStages) {
    { OBS_SCOPE("t/stage"); }
    obs::add_counter("t/count");
    const obs::metrics_snapshot snap = obs::snapshot();
    ASSERT_EQ(snap.stages.size(), 1u);
    EXPECT_EQ(snap.stages[0].name, "t/stage");
    ASSERT_EQ(snap.counters.size(), 1u);
}

}  // namespace
}  // namespace fallsense
