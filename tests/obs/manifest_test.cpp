// Run-manifest serialization: JSON structure, section ordering, escaping,
// the timings opt-in, and the golden byte-stability contract — the
// deterministic manifest from a fixed-seed tiny run must be identical
// character for character whether the work ran on 1 thread or 4.
#include <gtest/gtest.h>

#include <string>

#include "core/experiment.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace fallsense {
namespace {

class ObsManifestTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::reset();
        obs::set_enabled(true);
    }
    void TearDown() override {
        obs::set_enabled(false);
        obs::reset();
        util::set_global_threads(0);
    }
};

obs::run_manifest sample_run() {
    obs::run_manifest run;
    run.command = "evaluate";
    run.seed = 42;
    run.scale = "tiny";
    run.config.emplace_back("epochs", "3");
    run.config.emplace_back("window-ms", "200");
    return run;
}

TEST_F(ObsManifestTest, DeterministicDocumentHasExpectedShape) {
    obs::add_counter("eval/folds", 5);
    obs::set_gauge("eval/pooled/f1", 0.75);
    { OBS_SCOPE("eval/fold"); }
    const std::string json = obs::manifest_json(sample_run(), obs::snapshot());

    EXPECT_NE(json.find("\"schema\": \"fallsense.run_manifest/1\""), std::string::npos);
    EXPECT_NE(json.find("\"command\": \"evaluate\""), std::string::npos);
    EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"scale\": \"tiny\""), std::string::npos);
    EXPECT_NE(json.find("\"epochs\": \"3\""), std::string::npos);
    EXPECT_NE(json.find("\"eval/folds\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"eval/pooled/f1\": 0.75"), std::string::npos);
    EXPECT_NE(json.find("\"eval/fold\""), std::string::npos);
    // Section order is fixed by the schema.
    EXPECT_LT(json.find("\"config\""), json.find("\"counters\""));
    EXPECT_LT(json.find("\"counters\""), json.find("\"gauges\""));
    EXPECT_LT(json.find("\"gauges\""), json.find("\"stages\""));
    // The deterministic form carries no measurements.
    EXPECT_EQ(json.find("\"timings\""), std::string::npos);
    EXPECT_EQ(json.find("\"environment\""), std::string::npos);
    EXPECT_EQ(json.find("\"histograms\""), std::string::npos);
    EXPECT_EQ(json.back(), '\n');
}

TEST_F(ObsManifestTest, TimingSectionsAppearOnlyWhenOptedIn) {
    { OBS_SCOPE("t/stage"); }
    obs::observe_latency_us("t/lat_us", 3.0);
    obs::manifest_options with_timings;
    with_timings.include_timings = true;
    const std::string json = obs::manifest_json(sample_run(), obs::snapshot(), with_timings);
    EXPECT_NE(json.find("\"environment\""), std::string::npos);
    EXPECT_NE(json.find("\"threads\""), std::string::npos);
    EXPECT_NE(json.find("\"timings\""), std::string::npos);
    EXPECT_NE(json.find("\"wall_ms\""), std::string::npos);
    EXPECT_NE(json.find("\"cpu_ms\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"bounds_us\""), std::string::npos);
}

TEST_F(ObsManifestTest, StringsAreJsonEscaped) {
    obs::run_manifest run = sample_run();
    run.command = "quote\"backslash\\newline\ntab\t";
    const std::string json = obs::manifest_json(run, obs::snapshot());
    EXPECT_NE(json.find("quote\\\"backslash\\\\newline\\ntab\\t"), std::string::npos);
}

TEST_F(ObsManifestTest, GaugesRoundTripShortestForm) {
    obs::set_gauge("t/third", 1.0 / 3.0);
    obs::set_gauge("t/neg", -0.5);
    const std::string json = obs::manifest_json(sample_run(), obs::snapshot());
    EXPECT_NE(json.find("\"t/third\": 0.3333333333333333"), std::string::npos);
    EXPECT_NE(json.find("\"t/neg\": -0.5"), std::string::npos);
}

TEST_F(ObsManifestTest, WriteManifestFileThrowsOnBadPath) {
    EXPECT_THROW(
        obs::write_manifest_file("/nonexistent-dir/m.json", sample_run(), obs::snapshot()),
        std::runtime_error);
}

// Golden byte-stability: run the same fixed-seed tiny cross-validation on
// 1 thread and on 4, and require the deterministic manifest to come out
// byte for byte identical.  This is the acceptance criterion behind
// `fallsense_cli --metrics-json` and the reason timings are opt-in.
TEST_F(ObsManifestTest, TinyRunManifestIsByteStableAcrossThreadCounts) {
    core::experiment_scale s = core::scale_preset(util::run_scale::tiny);
    s.max_epochs = 3;
    s.early_stop_patience = 0;
    const core::windowing_config wc = core::standard_windowing(200.0);

    auto manifest_for = [&](std::size_t threads) {
        obs::reset();
        util::set_global_threads(threads);
        const data::dataset merged = core::make_merged_dataset(s, 11);
        core::run_cross_validation(core::model_kind::cnn, merged, wc, s, 13);
        return obs::manifest_json(sample_run(), obs::snapshot());
    };

    const std::string one = manifest_for(1);
    const std::string four = manifest_for(4);
    ASSERT_FALSE(one.empty());
    // Sanity: the run actually populated the registry.
    EXPECT_NE(one.find("\"eval/folds\""), std::string::npos);
    EXPECT_NE(one.find("\"eval/pooled/f1\""), std::string::npos);
    EXPECT_NE(one.find("\"eval/cross_validation\""), std::string::npos);
    if (one != four) {
        // Pinpoint the first divergence for the failure message.
        std::size_t i = 0;
        while (i < one.size() && i < four.size() && one[i] == four[i]) ++i;
        FAIL() << "manifests diverge at byte " << i << ":\n1 thread:  ..."
               << one.substr(i > 40 ? i - 40 : 0, 80) << "\n4 threads: ..."
               << four.substr(i > 40 ? i - 40 : 0, 80);
    }
    SUCCEED();
}

}  // namespace
}  // namespace fallsense
