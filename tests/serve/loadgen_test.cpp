#include "serve/loadgen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/thread_pool.hpp"

namespace fallsense::serve {
namespace {

/// Cheap deterministic stand-in scorer: loadgen tests exercise traffic
/// shaping and determinism, not the CNN (batch_scorer_test covers parity).
float magnitude_scorer(std::span<const float> window) {
    const std::size_t n = window.size() / core::k_feature_channels;
    double mag = 0.0;
    for (std::size_t i = n / 2; i < n; ++i) {
        const float ax = window[i * 9 + 0];
        const float ay = window[i * 9 + 1];
        const float az = window[i * 9 + 2];
        mag += std::sqrt(static_cast<double>(ax) * ax + ay * ay + az * az);
    }
    mag /= static_cast<double>(n - n / 2);
    return static_cast<float>(std::clamp(1.3 - mag, 0.0, 1.0));
}

loadgen_config make_config() {
    loadgen_config c;
    c.sessions = 12;
    c.ticks = 150;
    c.seed = 5;
    c.engine.detector.window_samples = 20;
    c.engine.detector.threshold = 0.65;
    c.scorer.backend = scorer_backend::callback;
    c.scorer.callback = magnitude_scorer;
    c.scorer.label = "magnitude";
    return c;
}

TEST(LoadgenTest, ReportIsDeterministicAcrossRunsAndThreadCounts) {
    const auto run = [] { return run_loadgen(make_config()).deterministic_summary(); };
    const std::string once = run();
    EXPECT_EQ(run(), once);  // same process, same config -> same summary

    util::set_global_threads(1);
    const std::string serial = run();
    util::set_global_threads(4);
    const std::string parallel = run();
    util::set_global_threads(0);
    EXPECT_EQ(serial, once);
    EXPECT_EQ(parallel, once);
}

TEST(LoadgenTest, ShardedRunMatchesSingleEngine) {
    // Sharding is a scaling decision, not a behavioral one: the same
    // traffic through 1, 3, or 5 shards produces the same deterministic
    // summary line for line (only the `shards:` line differs).
    const auto summary_sans_shards = [](std::size_t shards) {
        loadgen_config config = make_config();
        config.shards = shards;
        std::string s = run_loadgen(config).deterministic_summary();
        const auto begin = s.find("shards:");
        const auto end = s.find('\n', begin);
        s.erase(begin, end - begin + 1);
        return s;
    };
    const std::string one = summary_sans_shards(1);
    EXPECT_EQ(summary_sans_shards(3), one);
    EXPECT_EQ(summary_sans_shards(5), one);
}

TEST(LoadgenTest, BalancedFeedNeverDrops) {
    const loadgen_report r = run_loadgen(make_config());
    EXPECT_EQ(r.samples_offered, 12u * 150u);
    EXPECT_EQ(r.samples_accepted, r.samples_offered);
    EXPECT_EQ(r.samples_dropped, 0u);
    EXPECT_EQ(r.samples_rejected, 0u);
    EXPECT_EQ(r.samples_ingested, r.samples_offered);  // feed 1 == drain 1
    EXPECT_GT(r.windows_scored, 0u);
    EXPECT_GT(r.triggers, 0u);  // fleet includes fall tasks
    EXPECT_EQ(r.swap_generation, 0u);
    EXPECT_EQ(r.scorer, "magnitude");
}

TEST(LoadgenTest, OverdrivenFeedSaturatesQueues) {
    loadgen_config config = make_config();
    config.feed_rate = 3;  // 3 in, 1 out per tick: queues must saturate
    config.engine.queue_capacity = 8;

    config.engine.policy = drop_policy::drop_oldest;
    const loadgen_report dropped = run_loadgen(config);
    EXPECT_GT(dropped.samples_dropped, 0u);
    EXPECT_EQ(dropped.samples_rejected, 0u);
    EXPECT_EQ(dropped.samples_accepted, dropped.samples_offered);

    config.engine.policy = drop_policy::reject_newest;
    const loadgen_report rejected = run_loadgen(config);
    EXPECT_GT(rejected.samples_rejected, 0u);
    EXPECT_EQ(rejected.samples_dropped, 0u);
    EXPECT_LT(rejected.samples_accepted, rejected.samples_offered);
}

TEST(LoadgenTest, AdaptiveDrainAbsorbsOverdrive) {
    // Same overdriven traffic, but with an adaptive ceiling high enough to
    // keep up: the queues drain instead of dropping.
    loadgen_config config = make_config();
    config.feed_rate = 3;
    config.engine.queue_capacity = 32;
    config.engine.max_samples_per_tick = 8;
    config.engine.drain_watermark = 4;
    const loadgen_report r = run_loadgen(config);
    EXPECT_EQ(r.samples_dropped, 0u);
    EXPECT_EQ(r.samples_rejected, 0u);
    EXPECT_EQ(r.samples_accepted, r.samples_offered);
}

TEST(LoadgenTest, ChurnRotatesSessionsDeterministically) {
    loadgen_config config = make_config();
    config.churn_every_ticks = 25;
    const loadgen_report r = run_loadgen(config);
    EXPECT_EQ(r.sessions_churned, (config.ticks - 1) / 25);
    EXPECT_EQ(run_loadgen(config).deterministic_summary(), r.deterministic_summary());
}

TEST(LoadgenTest, HotSwapMidRunKeepsEveryWindow) {
    // The no-drop/no-rescore acceptance bar: swapping the scorer mid-run
    // must not change traffic accounting at all.  With the swap
    // replacement scoring identically to the original (same callback, the
    // callback backend ignores the swap-derived seed), the run is
    // indistinguishable from the unswapped one except for the
    // swap_generation line.
    loadgen_config config = make_config();
    const loadgen_report baseline = run_loadgen(config);

    config.swap_after_ticks = 60;
    const loadgen_report swapped = run_loadgen(config);
    EXPECT_EQ(swapped.swap_generation, 1u);
    EXPECT_EQ(swapped.windows_scored, baseline.windows_scored);
    EXPECT_EQ(swapped.triggers, baseline.triggers);
    EXPECT_EQ(swapped.samples_ingested, baseline.samples_ingested);
    EXPECT_EQ(swapped.samples_dropped, 0u);
    EXPECT_EQ(swapped.samples_rejected, 0u);

    // And the swapped run itself is thread-count invariant.
    util::set_global_threads(1);
    const std::string serial = run_loadgen(config).deterministic_summary();
    util::set_global_threads(4);
    const std::string parallel = run_loadgen(config).deterministic_summary();
    util::set_global_threads(0);
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(serial, swapped.deterministic_summary());
}

TEST(LoadgenTest, CnnBackendsProduceWorkingScorers) {
    loadgen_config config = make_config();
    config.sessions = 3;
    config.ticks = 60;

    config.scorer = scorer_spec{};
    config.scorer.backend = scorer_backend::float32;
    config.scorer.seed = 5;
    const loadgen_report rf = run_loadgen(config);
    EXPECT_EQ(rf.scorer, "cnn-float");
    EXPECT_GT(rf.windows_scored, 0u);

    config.scorer.backend = scorer_backend::int8;
    const loadgen_report rq = run_loadgen(config);
    EXPECT_EQ(rq.scorer, "cnn-int8");
    EXPECT_EQ(rq.windows_scored, rf.windows_scored);  // same traffic either way
}

TEST(LoadgenTest, ConfigValidation) {
    loadgen_config bad = make_config();
    bad.sessions = 0;
    EXPECT_THROW(run_loadgen(bad), std::invalid_argument);
    bad = make_config();
    bad.feed_rate = 0;
    EXPECT_THROW(run_loadgen(bad), std::invalid_argument);
    bad = make_config();
    bad.shards = 0;
    EXPECT_THROW(run_loadgen(bad), std::invalid_argument);
    bad = make_config();
    bad.engine.drain_watermark = bad.engine.queue_capacity + 1;
    EXPECT_THROW(run_loadgen(bad), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::serve
