#include "serve/loadgen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/thread_pool.hpp"

namespace fallsense::serve {
namespace {

/// Cheap deterministic stand-in scorer: loadgen tests exercise traffic
/// shaping and determinism, not the CNN (batch_scorer_test covers parity).
float magnitude_scorer(std::span<const float> window) {
    const std::size_t n = window.size() / core::k_feature_channels;
    double mag = 0.0;
    for (std::size_t i = n / 2; i < n; ++i) {
        const float ax = window[i * 9 + 0];
        const float ay = window[i * 9 + 1];
        const float az = window[i * 9 + 2];
        mag += std::sqrt(static_cast<double>(ax) * ax + ay * ay + az * az);
    }
    mag /= static_cast<double>(n - n / 2);
    return static_cast<float>(std::clamp(1.3 - mag, 0.0, 1.0));
}

loadgen_config make_config() {
    loadgen_config c;
    c.sessions = 12;
    c.ticks = 150;
    c.seed = 5;
    c.engine.detector.window_samples = 20;
    c.engine.detector.threshold = 0.65;
    return c;
}

TEST(LoadgenTest, ReportIsDeterministicAcrossRunsAndThreadCounts) {
    const auto run = [] {
        callback_batch_scorer scorer(magnitude_scorer);
        return run_loadgen(make_config(), scorer).deterministic_summary();
    };
    const std::string once = run();
    EXPECT_EQ(run(), once);  // same process, same config -> same summary

    util::set_global_threads(1);
    const std::string serial = run();
    util::set_global_threads(4);
    const std::string parallel = run();
    util::set_global_threads(0);
    EXPECT_EQ(serial, once);
    EXPECT_EQ(parallel, once);
}

TEST(LoadgenTest, BalancedFeedNeverDrops) {
    callback_batch_scorer scorer(magnitude_scorer);
    const loadgen_report r = run_loadgen(make_config(), scorer);
    EXPECT_EQ(r.samples_offered, 12u * 150u);
    EXPECT_EQ(r.samples_accepted, r.samples_offered);
    EXPECT_EQ(r.samples_dropped, 0u);
    EXPECT_EQ(r.samples_rejected, 0u);
    EXPECT_EQ(r.samples_ingested, r.samples_offered);  // feed 1 == drain 1
    EXPECT_GT(r.windows_scored, 0u);
    EXPECT_GT(r.triggers, 0u);  // fleet includes fall tasks
}

TEST(LoadgenTest, OverdrivenFeedSaturatesQueues) {
    loadgen_config config = make_config();
    config.feed_rate = 3;  // 3 in, 1 out per tick: queues must saturate
    config.engine.queue_capacity = 8;

    config.engine.policy = drop_policy::drop_oldest;
    callback_batch_scorer scorer(magnitude_scorer);
    const loadgen_report dropped = run_loadgen(config, scorer);
    EXPECT_GT(dropped.samples_dropped, 0u);
    EXPECT_EQ(dropped.samples_rejected, 0u);
    EXPECT_EQ(dropped.samples_accepted, dropped.samples_offered);

    config.engine.policy = drop_policy::reject_newest;
    const loadgen_report rejected = run_loadgen(config, scorer);
    EXPECT_GT(rejected.samples_rejected, 0u);
    EXPECT_EQ(rejected.samples_dropped, 0u);
    EXPECT_LT(rejected.samples_accepted, rejected.samples_offered);
}

TEST(LoadgenTest, ChurnRotatesSessionsDeterministically) {
    loadgen_config config = make_config();
    config.churn_every_ticks = 25;
    const auto run = [&] {
        callback_batch_scorer scorer(magnitude_scorer);
        return run_loadgen(config, scorer);
    };
    const loadgen_report r = run();
    EXPECT_EQ(r.sessions_churned, (config.ticks - 1) / 25);
    EXPECT_EQ(run().deterministic_summary(), r.deterministic_summary());
}

TEST(LoadgenTest, ScorerFactoriesProduceWorkingScorers) {
    loadgen_config config = make_config();
    config.sessions = 3;
    config.ticks = 60;

    const auto float_scorer = make_cnn_scorer(20, 5);
    const loadgen_report rf = run_loadgen(config, *float_scorer);
    EXPECT_EQ(rf.scorer, "cnn-float");
    EXPECT_GT(rf.windows_scored, 0u);

    const auto int8_scorer = make_int8_scorer(20, 5);
    const loadgen_report rq = run_loadgen(config, *int8_scorer);
    EXPECT_EQ(rq.scorer, "cnn-int8");
    EXPECT_EQ(rq.windows_scored, rf.windows_scored);  // same traffic either way
}

TEST(LoadgenTest, ConfigValidation) {
    callback_batch_scorer scorer(magnitude_scorer);
    loadgen_config bad = make_config();
    bad.sessions = 0;
    EXPECT_THROW(run_loadgen(bad, scorer), std::invalid_argument);
    bad = make_config();
    bad.feed_rate = 0;
    EXPECT_THROW(run_loadgen(bad, scorer), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::serve
