#include "serve/batch_scorer.hpp"

#include <gtest/gtest.h>

#include "core/models.hpp"
#include "core/windowing.hpp"
#include "data/synthesizer.hpp"
#include "nn/activations.hpp"
#include "serve/scorer_factory.hpp"
#include "util/rng.hpp"

namespace fallsense::serve {
namespace {

constexpr std::size_t k_window = 20;
constexpr std::size_t k_elems = k_window * core::k_feature_channels;

scorer_spec spec_for(scorer_backend backend, std::uint64_t seed = 7) {
    scorer_spec spec;
    spec.backend = backend;
    spec.window_samples = k_window;
    spec.seed = seed;
    return spec;
}

/// Real preprocessed windows (ADL + fall) so parity is checked on the
/// dynamic range the scorers will actually see, not on noise.
nn::labeled_data make_windows() {
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.5;
    tuning.locomotion_s = 2.0;
    tuning.post_fall_hold_s = 1.0;
    std::vector<data::trial> trials;
    util::rng gen(99);
    data::subject_profile subject;
    subject.id = 1;
    trials.push_back(
        data::synthesize_task(6, subject, tuning, data::synthesis_config{}, gen));
    trials.push_back(
        data::synthesize_task(30, subject, tuning, data::synthesis_config{}, gen));
    core::windowing_config wc;
    wc.segmentation.window_samples = k_window;
    wc.segmentation.overlap_fraction = 0.5;
    return core::to_labeled_data(core::extract_windows(trials, wc), k_window);
}

std::span<const float> window_row(const nn::labeled_data& d, std::size_t i) {
    return {d.features.data() + i * k_elems, k_elems};
}

TEST(BatchScorerTest, FloatBatchOfOneMatchesSegmentScorerPath) {
    // The serving float path must be bit-identical to the single-window
    // replay path (tools/fallsense_cli.cpp cmd_replay): tensor {1, W, C},
    // forward, sigmoid.  The factory seeds its model with
    // derive_seed(seed, "serve/model"); the reference must match.
    const nn::labeled_data windows = make_windows();
    ASSERT_GE(windows.size(), 4u);

    const auto scorer = make_scorer(spec_for(scorer_backend::float32));
    const auto reference =
        core::build_fallsense_cnn(k_window, util::derive_seed(7, "serve/model"));

    for (std::size_t i = 0; i < 4; ++i) {
        const std::span<const float> w = window_row(windows, i);
        float got = -1.0f;
        scorer->score(w, 1, k_elems, std::span<float>(&got, 1));

        const nn::tensor x({1, k_window, core::k_feature_channels},
                           std::vector<float>(w.begin(), w.end()));
        const nn::tensor logit = reference->forward(x, false);
        const float want = nn::sigmoid_scalar(logit[0]);
        EXPECT_EQ(got, want) << "window " << i;  // bitwise, not approx
    }
}

TEST(BatchScorerTest, FloatBatchRowsMatchBatchOfOne) {
    // GEMM's serial-reduction guarantee means batching must not perturb
    // any row: scoring N windows at once == scoring each alone.
    const nn::labeled_data windows = make_windows();
    const std::size_t n = std::min<std::size_t>(windows.size(), 8);

    const auto scorer = make_scorer(spec_for(scorer_backend::float32));
    std::vector<float> batched(n);
    scorer->score({windows.features.data(), n * k_elems}, n, k_elems, batched);

    for (std::size_t i = 0; i < n; ++i) {
        float alone = -1.0f;
        scorer->score(window_row(windows, i), 1, k_elems, std::span<float>(&alone, 1));
        EXPECT_EQ(batched[i], alone) << "row " << i;
    }
}

TEST(BatchScorerTest, Int8BatchRowsMatchBatchOfOne) {
    // The quantized path carries the same guarantee: the factory's
    // calibration is a pure function of (window_samples, seed), and
    // batching must not perturb any row's score.
    const nn::labeled_data windows = make_windows();
    const std::size_t n = std::min<std::size_t>(windows.size(), 8);

    const auto scorer = make_scorer(spec_for(scorer_backend::int8));
    EXPECT_EQ(scorer->describe(), "cnn-int8");
    std::vector<float> batched(n);
    scorer->score({windows.features.data(), n * k_elems}, n, k_elems, batched);

    const auto again = make_scorer(spec_for(scorer_backend::int8));
    for (std::size_t i = 0; i < n; ++i) {
        float alone = -1.0f;
        again->score(window_row(windows, i), 1, k_elems, std::span<float>(&alone, 1));
        EXPECT_EQ(batched[i], alone) << "row " << i;
        EXPECT_GE(batched[i], 0.0f);
        EXPECT_LE(batched[i], 1.0f);
    }
}

TEST(BatchScorerTest, CallbackScorerAppliesPerWindow) {
    callback_batch_scorer scorer(
        [](std::span<const float> w) { return w[0]; }, "first-elem");
    EXPECT_EQ(scorer.describe(), "first-elem");

    std::vector<float> in(3 * 4);
    in[0] = 0.25f;
    in[4] = 0.5f;
    in[8] = 0.75f;
    std::vector<float> out(3);
    scorer.score(in, 3, 4, out);
    EXPECT_EQ(out, (std::vector<float>{0.25f, 0.5f, 0.75f}));
}

TEST(BatchScorerTest, CloneScoresBitIdenticallyAndIndependently) {
    // The per_shard replica contract for both CNN backends: a clone scores
    // the same windows to the same bits, and running the clone between two
    // source calls never perturbs the source (no shared mutable state).
    const nn::labeled_data windows = make_windows();
    const std::size_t n = std::min<std::size_t>(windows.size() - 1, 8);

    for (const scorer_backend backend : {scorer_backend::float32, scorer_backend::int8}) {
        const auto source = make_scorer(spec_for(backend));
        const auto replica = source->clone();
        EXPECT_EQ(replica->describe(), source->describe());

        std::vector<float> baseline(n);
        source->score({windows.features.data(), n * k_elems}, n, k_elems, baseline);

        std::vector<float> from_replica(n);
        replica->score({windows.features.data(), n * k_elems}, n, k_elems, from_replica);
        EXPECT_EQ(from_replica, baseline) << scorer_backend_name(backend);

        // Drive the replica with different data, then re-score the
        // original batch on the source: still the baseline bits.
        float other = -1.0f;
        replica->score(window_row(windows, n), 1, k_elems, std::span<float>(&other, 1));
        std::vector<float> again(n);
        source->score({windows.features.data(), n * k_elems}, n, k_elems, again);
        EXPECT_EQ(again, baseline) << scorer_backend_name(backend);
    }
}

TEST(BatchScorerTest, CallbackCloneCopiesCallbackAndLabel) {
    callback_batch_scorer scorer(
        [](std::span<const float> w) { return w[0]; }, "first-elem");
    const auto replica = scorer.clone();
    EXPECT_EQ(replica->describe(), "first-elem");

    std::vector<float> in(2 * 4);
    in[0] = 0.25f;
    in[4] = 0.5f;
    std::vector<float> out(2);
    replica->score(in, 2, 4, out);
    EXPECT_EQ(out, (std::vector<float>{0.25f, 0.5f}));
}

TEST(BatchScorerTest, SizeMismatchThrows) {
    const auto scorer = make_scorer(spec_for(scorer_backend::float32));
    std::vector<float> in(k_elems);
    std::vector<float> out(2);
    EXPECT_THROW(scorer->score(in, 2, k_elems, out), std::invalid_argument);
    EXPECT_THROW(scorer->score(in, 1, k_elems, std::span<float>(out.data(), 2)),
                 std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::serve
