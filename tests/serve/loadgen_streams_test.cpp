#include "serve/loadgen.hpp"

#include <gtest/gtest.h>

#include "util/thread_pool.hpp"

namespace fallsense::serve {
namespace {

bool same_samples(const session_stream& a, const session_stream& b) {
    if (a.samples.size() != b.samples.size()) return false;
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        if (a.samples[i].accel != b.samples[i].accel) return false;
        if (a.samples[i].gyro != b.samples[i].gyro) return false;
    }
    return true;
}

TEST(FleetStreamsTest, DeterministicInSeedAndThreadCount) {
    // The contract both loadgen modes stand on: stream i is a pure
    // function of (seed, i), so the wire client and the in-process
    // loadgen synthesize byte-identical traffic without sharing state.
    const auto reference = synthesize_fleet_streams(6, 123);
    ASSERT_EQ(reference.size(), 6u);
    for (const session_stream& s : reference) EXPECT_FALSE(s.samples.empty());

    const auto again = synthesize_fleet_streams(6, 123);
    util::set_global_threads(4);
    const auto threaded = synthesize_fleet_streams(6, 123);
    util::set_global_threads(0);
    for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_TRUE(same_samples(again[i], reference[i])) << "repeat call, stream " << i;
        EXPECT_TRUE(same_samples(threaded[i], reference[i])) << "4 threads, stream " << i;
    }
}

TEST(FleetStreamsTest, SeedAndSessionIndexBothChangeTheStream) {
    const auto streams = synthesize_fleet_streams(3, 7);
    const auto reseeded = synthesize_fleet_streams(3, 8);
    EXPECT_FALSE(same_samples(streams[0], streams[1]));
    EXPECT_FALSE(same_samples(streams[0], reseeded[0]));
}

TEST(FleetStreamsTest, NextWrapsAroundTheStream) {
    auto streams = synthesize_fleet_streams(1, 11);
    session_stream& s = streams[0];
    const data::raw_sample first = s.next();
    for (std::size_t i = 1; i < s.samples.size(); ++i) s.next();
    const data::raw_sample& wrapped = s.next();
    EXPECT_EQ(wrapped.accel, first.accel);
    EXPECT_EQ(wrapped.gyro, first.gyro);
}

TEST(FleetStreamsTest, RejectsEmptyFleets) {
    EXPECT_THROW(synthesize_fleet_streams(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::serve
