// fused vs per_shard score-mode parity (src/serve/fleet.hpp).
//
// The contract under test: the score mode is pure throughput policy.  A
// per_shard fleet — churn, eviction, and a mid-run hot-swap included —
// produces bit-identical triggers, scores, and manifests to the fused
// fleet on the same traffic, for any FALLSENSE_THREADS.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "serve/serve.hpp"
#include "util/thread_pool.hpp"

namespace fallsense::serve {
namespace {

constexpr std::size_t k_window = 20;

scorer_spec cnn_spec(std::uint64_t seed = 7) {
    scorer_spec spec;
    spec.backend = scorer_backend::float32;
    spec.window_samples = k_window;
    spec.seed = seed;
    return spec;
}

loadgen_config make_loadgen(score_mode mode) {
    loadgen_config c;
    c.sessions = 10;
    c.ticks = 150;
    c.seed = 5;
    c.shards = 4;
    c.mode = mode;
    c.churn_every_ticks = 30;  // eviction + admission under load
    c.swap_after_ticks = 75;   // replica rebuild mid-run
    c.engine.detector.window_samples = k_window;
    c.engine.detector.threshold = 0.65;
    c.scorer = cnn_spec(5);
    return c;
}

/// Deterministic summary minus its `score_mode:` line — everything that
/// must match across modes.
std::string summary_sans_mode(const loadgen_report& report) {
    std::string s = report.deterministic_summary();
    const auto begin = s.find("score_mode:");
    const auto end = s.find('\n', begin);
    s.erase(begin, end - begin + 1);
    return s;
}

TEST(ScoreModeTest, ParseAndName) {
    EXPECT_STREQ(score_mode_name(score_mode::fused), "fused");
    EXPECT_STREQ(score_mode_name(score_mode::per_shard), "per_shard");
    EXPECT_EQ(parse_score_mode("fused"), score_mode::fused);
    EXPECT_EQ(parse_score_mode("per_shard"), score_mode::per_shard);
    EXPECT_EQ(parse_score_mode("per-shard"), score_mode::per_shard);
    EXPECT_EQ(parse_score_mode("batched"), std::nullopt);
    EXPECT_EQ(parse_score_mode(""), std::nullopt);
}

TEST(ScoreModeTest, PerShardTriggersAreBitIdenticalToFused) {
    // Full loadgen scenario — churn, eviction, mid-run swap — through a
    // real float CNN (where bit parity is the non-trivial claim: replicas
    // must clone the model exactly and slices must tile the fused batch).
    const loadgen_report fused = run_loadgen(make_loadgen(score_mode::fused));
    const loadgen_report per_shard = run_loadgen(make_loadgen(score_mode::per_shard));
    EXPECT_GT(fused.windows_scored, 0u);
    EXPECT_GT(fused.triggers, 0u);
    EXPECT_EQ(fused.swap_generation, 1u);
    EXPECT_EQ(summary_sans_mode(per_shard), summary_sans_mode(fused));
}

TEST(ScoreModeTest, PerShardScoresAreBitIdenticalPerWindow) {
    // Beyond the aggregate summary: every trigger's probability and every
    // session's last score, bit for bit, on a fleet driven directly.
    const auto run = [](score_mode mode) {
        fleet_config config;
        config.engine.detector.window_samples = k_window;
        config.engine.detector.threshold = 0.3;
        config.engine.queue_capacity = 4;
        config.shards = 4;
        config.mode = mode;
        fleet_router fleet(config, make_scorer(cnn_spec()));

        std::vector<session_id> ids;
        for (int i = 0; i < 9; ++i) ids.push_back(fleet.create_session());

        std::vector<std::tuple<session_id, std::size_t, float>> triggers;
        data::raw_sample sample{};
        for (std::size_t tick = 0; tick < 200; ++tick) {
            if (tick == 80) {
                fleet.evict_session(ids[2]);
                ids.erase(ids.begin() + 2);
                ids.push_back(fleet.create_session());
            }
            if (tick == 120) fleet.swap_scorer(make_scorer(cnn_spec(8)));
            for (std::size_t i = 0; i < ids.size(); ++i) {
                // Synthetic but session- and time-varying motion.
                sample.accel[0] = static_cast<float>(i) * 0.25f;
                sample.accel[1] = static_cast<float>(tick % 17) * 0.1f;
                sample.accel[2] = 1.0f - static_cast<float>((tick + i) % 5) * 0.3f;
                fleet.feed(ids[i], sample);
            }
            for (const trigger_event& e : fleet.tick().triggers) {
                triggers.emplace_back(e.session, e.sample_index, e.probability);
            }
        }
        std::vector<float> last;
        for (const session_id id : ids) last.push_back(fleet.last_score(id));
        return std::make_pair(std::move(triggers), std::move(last));
    };

    const auto fused = run(score_mode::fused);
    const auto per_shard = run(score_mode::per_shard);
    ASSERT_FALSE(fused.first.empty());
    EXPECT_EQ(per_shard.first, fused.first);   // float equality == bit parity
    EXPECT_EQ(per_shard.second, fused.second);
}

TEST(ScoreModeTest, PerShardManifestIsThreadCountInvariant) {
    // The serving determinism contract extended to per_shard mode: the
    // default (timing-free) manifest of a churn+swap run is byte-identical
    // for 1 worker and 4 — and byte-identical to the fused-mode manifest,
    // because counters, gauges, and stages never depend on the score mode.
    const auto manifest_of = [](score_mode mode, std::size_t threads) {
        util::set_global_threads(threads);
        obs::reset();
        obs::set_enabled(true);
        run_loadgen(make_loadgen(mode));
        obs::set_enabled(false);
        obs::run_manifest run;
        run.command = "score-mode-test";
        run.seed = 5;
        run.scale = "quick";
        const std::string json = obs::manifest_json(run, obs::snapshot());
        obs::reset();
        return json;
    };

    const std::string serial = manifest_of(score_mode::per_shard, 1);
    const std::string parallel = manifest_of(score_mode::per_shard, 4);
    const std::string fused = manifest_of(score_mode::fused, 4);
    util::set_global_threads(0);  // back to the FALLSENSE_THREADS default

    EXPECT_EQ(parallel, serial);
    EXPECT_EQ(fused, serial);
}

TEST(ScoreModeTest, HotSwapRebuildsEveryReplica) {
    // Sub-threshold constant before the swap, super-threshold after: in
    // per_shard mode the trigger boundary proves all shard replicas were
    // rebuilt from the new scorer (a stale replica would keep a shard
    // silent forever).
    const auto constant = [](float value, const std::string& label) {
        scorer_spec spec;
        spec.backend = scorer_backend::callback;
        spec.window_samples = k_window;
        spec.callback = [value](std::span<const float>) { return value; };
        spec.label = label;
        return make_scorer(spec);
    };
    fleet_config config;
    config.engine.detector.window_samples = k_window;
    config.engine.detector.threshold = 0.5;
    config.engine.queue_capacity = 4;
    config.shards = 3;
    config.mode = score_mode::per_shard;
    fleet_router fleet(config, constant(0.1f, "old"));
    std::vector<session_id> ids;
    for (int i = 0; i < 6; ++i) ids.push_back(fleet.create_session());

    std::uint64_t triggers_before = 0;
    std::uint64_t windows_after = 0;
    std::uint64_t triggers_after = 0;
    for (std::size_t tick = 0; tick < 120; ++tick) {
        if (tick == 60) fleet.swap_scorer(constant(0.9f, "new"));
        data::raw_sample sample{};
        sample.accel[2] = 1.0f;
        for (const session_id id : ids) fleet.feed(id, sample);
        const tick_result r = fleet.tick();
        if (tick < 60) {
            triggers_before += r.triggers.size();
        } else {
            windows_after += r.windows_scored;
            triggers_after += r.triggers.size();
        }
    }
    EXPECT_EQ(triggers_before, 0u);
    EXPECT_GT(windows_after, 0u);
    EXPECT_EQ(triggers_after, windows_after);  // every shard fires post-swap
    EXPECT_EQ(fleet.swap_generation(), 1u);
}

}  // namespace
}  // namespace fallsense::serve
