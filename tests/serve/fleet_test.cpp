#include "serve/fleet.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "data/synthesizer.hpp"
#include "serve/scorer_factory.hpp"
#include "util/thread_pool.hpp"

namespace fallsense::serve {
namespace {

data::trial make_trial(int task, std::uint64_t seed) {
    util::rng gen(seed);
    data::subject_profile subject;
    subject.id = 1;
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.5;
    tuning.locomotion_s = 2.0;
    tuning.post_fall_hold_s = 1.0;
    return data::synthesize_task(task, subject, tuning, data::synthesis_config{}, gen);
}

/// Scorer keyed on free fall (mirrors the engine test's): mean |a| much
/// below 1 g in the window tail.
float freefall_scorer(std::span<const float> window) {
    double mag = 0.0;
    const std::size_t n = window.size() / core::k_feature_channels;
    for (std::size_t i = n / 2; i < n; ++i) {
        const float ax = window[i * 9 + 0];
        const float ay = window[i * 9 + 1];
        const float az = window[i * 9 + 2];
        mag += std::sqrt(static_cast<double>(ax) * ax + ay * ay + az * az);
    }
    mag /= static_cast<double>(n - n / 2);
    return static_cast<float>(std::clamp(1.3 - mag, 0.0, 1.0));
}

std::unique_ptr<batch_scorer> freefall(const std::string& label = "freefall") {
    scorer_spec spec;
    spec.backend = scorer_backend::callback;
    spec.window_samples = 20;
    spec.callback = freefall_scorer;
    spec.label = label;
    return make_scorer(spec);
}

std::unique_ptr<batch_scorer> constant(float value, const std::string& label) {
    scorer_spec spec;
    spec.backend = scorer_backend::callback;
    spec.window_samples = 20;
    spec.callback = [value](std::span<const float>) { return value; };
    spec.label = label;
    return make_scorer(spec);
}

fleet_config make_config(std::size_t shards, double threshold = 0.65) {
    fleet_config c;
    c.engine.detector.window_samples = 20;
    c.engine.detector.overlap_fraction = 0.5;
    c.engine.detector.threshold = threshold;
    c.engine.queue_capacity = 4;
    c.shards = shards;
    return c;
}

using trigger_key = std::tuple<std::size_t, float>;  ///< (sample_index, p)

/// Replay the same fleet traffic through a router with `shards` shards and
/// collect per-session trigger sequences plus summed totals.
std::pair<std::map<session_id, std::vector<trigger_key>>, engine_stats> replay(
    std::size_t shards, const std::vector<data::trial>& trials, std::size_t ticks) {
    fleet_router fleet(make_config(shards), freefall());
    std::vector<session_id> ids;
    for (std::size_t i = 0; i < trials.size(); ++i) ids.push_back(fleet.create_session());

    std::map<session_id, std::vector<trigger_key>> triggers;
    std::vector<std::size_t> cursors(trials.size(), 0);
    for (std::size_t t = 0; t < ticks; ++t) {
        for (std::size_t i = 0; i < trials.size(); ++i) {
            const auto& samples = trials[i].samples;
            fleet.feed(ids[i], samples[cursors[i]++ % samples.size()]);
        }
        for (const trigger_event& e : fleet.tick().triggers) {
            triggers[e.session].emplace_back(e.sample_index, e.probability);
        }
    }
    return {std::move(triggers), fleet.totals()};
}

TEST(FleetRouterTest, ConfigValidation) {
    fleet_config bad = make_config(0);
    EXPECT_THROW(fleet_router(bad, freefall()), std::invalid_argument);
    bad = make_config(2);
    bad.engine.queue_capacity = 0;
    EXPECT_THROW(fleet_router(bad, freefall()), std::invalid_argument);
    bad = make_config(2);
    bad.engine.drain_watermark = bad.engine.queue_capacity + 1;
    EXPECT_THROW(fleet_router(bad, freefall()), std::invalid_argument);
    EXPECT_THROW(fleet_router(make_config(2), nullptr), std::invalid_argument);
}

TEST(FleetRouterTest, ShardingDoesNotChangeAnySessionsTriggers) {
    // The behavioral contract of sharding: every session sees exactly the
    // trigger sequence it would have seen on a single engine, whatever the
    // shard count.
    std::vector<data::trial> trials;
    for (std::size_t i = 0; i < 8; ++i) {
        trials.push_back(make_trial(i % 2 == 0 ? 30 : 6, 50 + i));
    }
    const std::size_t ticks = trials[0].sample_count();

    const auto [one_shard, one_totals] = replay(1, trials, ticks);
    ASSERT_FALSE(one_shard.empty());
    for (const std::size_t shards : {3ul, 8ul}) {
        const auto [sharded, totals] = replay(shards, trials, ticks);
        EXPECT_EQ(sharded, one_shard) << shards << " shards";
        EXPECT_EQ(totals.triggers, one_totals.triggers);
        EXPECT_EQ(totals.windows_scored, one_totals.windows_scored);
        EXPECT_EQ(totals.ingested, one_totals.ingested);
    }
}

TEST(FleetRouterTest, RoutingIsStableUnderChurnAndEviction) {
    fleet_router fleet(make_config(4), freefall());
    std::vector<session_id> ids;
    for (int i = 0; i < 16; ++i) ids.push_back(fleet.create_session());
    EXPECT_EQ(fleet.shard_count(), 4u);
    EXPECT_EQ(fleet.live_session_count(), 16u);

    // Shard assignment is a pure function of the id, fixed at admission.
    std::vector<std::size_t> homes;
    for (const session_id id : ids) homes.push_back(fleet.shard_of(id));
    // The hash must actually spread the fleet (not stripe everything onto
    // one shard).
    std::size_t used = 0;
    for (std::size_t s = 0; s < 4; ++s) {
        used += std::count(homes.begin(), homes.end(), s) > 0;
    }
    EXPECT_GE(used, 2u);

    // Churn half the fleet: surviving sessions keep their shard; evicted
    // ids are dead; new ids are never recycled.
    for (std::size_t i = 0; i < ids.size(); i += 2) fleet.evict_session(ids[i]);
    EXPECT_EQ(fleet.live_session_count(), 8u);
    for (std::size_t i = 0; i < ids.size(); ++i) {
        EXPECT_EQ(fleet.is_live(ids[i]), i % 2 == 1);
        EXPECT_EQ(fleet.shard_of(ids[i]), homes[i]);  // stable even after evict
    }
    EXPECT_THROW(fleet.evict_session(ids[0]), std::invalid_argument);
    EXPECT_THROW((void)fleet.queue_depth(ids[0]), std::invalid_argument);
    EXPECT_THROW(fleet.feed(ids[0], data::raw_sample{}), std::invalid_argument);

    const session_id fresh = fleet.create_session();
    EXPECT_EQ(fresh, 16u);
    EXPECT_TRUE(fleet.is_live(fresh));
    EXPECT_EQ(fleet.live_session_count(), 9u);

    // Live sessions on every shard sum to the fleet's count.
    std::size_t shard_sum = 0;
    for (std::size_t s = 0; s < fleet.shard_count(); ++s) {
        shard_sum += fleet.shard(s).live_session_count();
    }
    EXPECT_EQ(shard_sum, fleet.live_session_count());
    EXPECT_EQ(fleet.totals().sessions_created, 17u);
    EXPECT_EQ(fleet.totals().sessions_evicted, 8u);
}

TEST(FleetRouterTest, HotSwapAppliesExactlyBetweenTicks) {
    // Old model scores every window staged before the swap; the new one
    // scores every window after.  With a sub-threshold constant before and
    // a super-threshold constant after, the trigger record shows the
    // boundary exactly — and no window is lost or scored twice.
    const data::trial t = make_trial(6, 33);
    fleet_router fleet(make_config(3, 0.5), constant(0.1f, "old"));
    std::vector<session_id> ids;
    for (int i = 0; i < 6; ++i) ids.push_back(fleet.create_session());
    EXPECT_EQ(fleet.scorer().describe(), "old");
    EXPECT_EQ(fleet.swap_generation(), 0u);

    const std::size_t ticks = 120;
    const std::size_t swap_at = 60;
    std::uint64_t windows_before = 0;
    std::uint64_t triggers_before = 0;
    std::uint64_t windows_after = 0;
    std::uint64_t triggers_after = 0;
    for (std::size_t tick = 0; tick < ticks; ++tick) {
        if (tick == swap_at) {
            fleet.swap_scorer(constant(0.9f, "new"));
            EXPECT_EQ(fleet.swap_generation(), 1u);
            EXPECT_EQ(fleet.scorer().describe(), "new");
        }
        for (std::size_t i = 0; i < ids.size(); ++i) {
            fleet.feed(ids[i], t.samples[(tick + i * 7) % t.sample_count()]);
        }
        const tick_result r = fleet.tick();
        (tick < swap_at ? windows_before : windows_after) += r.windows_scored;
        (tick < swap_at ? triggers_before : triggers_after) += r.triggers.size();
    }

    EXPECT_EQ(triggers_before, 0u);            // old model: 0.1 < 0.5, never fires
    EXPECT_GT(windows_before, 0u);             // ...but its windows WERE scored
    EXPECT_EQ(triggers_after, windows_after);  // new model: every window fires
    EXPECT_GT(windows_after, 0u);
    for (const session_id id : ids) {
        EXPECT_EQ(fleet.last_score(id), 0.9f);
    }
    // Continuous accounting across the swap: nothing dropped or rescored.
    EXPECT_EQ(fleet.totals().windows_scored, windows_before + windows_after);
    EXPECT_EQ(fleet.totals().triggers, triggers_after);
}

TEST(FleetRouterTest, TickOutputIsThreadCountInvariant) {
    // The fleet determinism contract: a multi-shard run with a mid-run
    // swap produces bit-identical triggers and stats for 1 worker and 4.
    std::vector<data::trial> trials;
    for (std::size_t i = 0; i < 10; ++i) {
        trials.push_back(make_trial(i % 2 == 0 ? 30 : 12, 60 + i));
    }

    const auto run = [&] {
        fleet_router fleet(make_config(4), freefall());
        std::vector<session_id> ids;
        for (std::size_t i = 0; i < trials.size(); ++i) ids.push_back(fleet.create_session());

        std::vector<std::tuple<session_id, std::size_t, float>> triggers;
        std::vector<std::size_t> cursors(trials.size(), 0);
        for (std::size_t tick = 0; tick < 250; ++tick) {
            if (tick == 125) fleet.swap_scorer(freefall("freefall-v2"));
            for (std::size_t i = 0; i < trials.size(); ++i) {
                const auto& samples = trials[i].samples;
                fleet.feed(ids[i], samples[cursors[i]++ % samples.size()]);
            }
            for (const trigger_event& e : fleet.tick().triggers) {
                triggers.emplace_back(e.session, e.sample_index, e.probability);
            }
        }
        std::vector<float> scores;
        for (const session_id id : ids) scores.push_back(fleet.last_score(id));
        const engine_stats totals = fleet.totals();
        return std::make_tuple(triggers, scores, totals.windows_scored, totals.triggers,
                               totals.ingested);
    };

    util::set_global_threads(1);
    const auto serial = run();
    util::set_global_threads(4);
    const auto parallel = run();
    util::set_global_threads(0);  // back to the FALLSENSE_THREADS default

    ASSERT_FALSE(std::get<0>(serial).empty());
    EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace fallsense::serve
