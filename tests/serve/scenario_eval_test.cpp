// Scenario-directed loadgen runs with the streaming evaluator tapped in:
// the eval/* section of the deterministic summary must be bit-identical
// for any FALLSENSE_THREADS and any scenario, and the "baseline" scenario
// must replay pre-registry traffic byte for byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "data/motion_profile.hpp"
#include "serve/loadgen.hpp"
#include "util/thread_pool.hpp"

namespace fallsense::serve {
namespace {

/// Cheap deterministic stand-in scorer (same shape as loadgen_test's):
/// scenario tests exercise evaluation plumbing, not the CNN.
float magnitude_scorer(std::span<const float> window) {
    const std::size_t n = window.size() / core::k_feature_channels;
    double mag = 0.0;
    for (std::size_t i = n / 2; i < n; ++i) {
        const float ax = window[i * 9 + 0];
        const float ay = window[i * 9 + 1];
        const float az = window[i * 9 + 2];
        mag += std::sqrt(static_cast<double>(ax) * ax + ay * ay + az * az);
    }
    mag /= static_cast<double>(n - n / 2);
    return static_cast<float>(std::clamp(1.3 - mag, 0.0, 1.0));
}

loadgen_config make_config(const std::string& scenario) {
    loadgen_config c;
    c.sessions = 16;
    c.ticks = 200;
    c.seed = 9;
    c.engine.detector.window_samples = 20;
    c.engine.detector.threshold = 0.65;
    c.scorer.backend = scorer_backend::callback;
    c.scorer.callback = magnitude_scorer;
    c.scorer.label = "magnitude";
    c.scenario = scenario;
    c.stream_eval = true;
    c.eval_config.sample_rate_hz = c.engine.detector.sample_rate_hz;
    return c;
}

TEST(ScenarioEvalTest, EvalSectionIsIdenticalForEveryThreadCount) {
    for (const std::string& scenario : data::list_profiles()) {
        const auto run = [&] {
            return run_loadgen(make_config(scenario)).deterministic_summary();
        };
        const std::string once = run();
        EXPECT_NE(once.find("scenario: " + scenario), std::string::npos);
        EXPECT_NE(once.find("eval_false_alarms_per_hour:"), std::string::npos);
        EXPECT_NE(once.find("eval_cost_ratio_"), std::string::npos);

        util::set_global_threads(1);
        const std::string serial = run();
        util::set_global_threads(4);
        const std::string parallel = run();
        util::set_global_threads(0);
        EXPECT_EQ(serial, once) << scenario;
        EXPECT_EQ(parallel, once) << scenario;
    }
}

TEST(ScenarioEvalTest, EvalReportIsAttachedAndConsistent) {
    const loadgen_report r = run_loadgen(make_config("baseline"));
    ASSERT_TRUE(r.eval.has_value());
    EXPECT_EQ(r.eval->sessions, 16u);
    EXPECT_EQ(r.eval->samples, r.samples_ingested);
    // Trigger counts line up with the router's own tally: every firing
    // the fleet reported is consumed by the evaluator.
    EXPECT_EQ(r.eval->triggers, r.triggers);
    EXPECT_EQ(r.eval->fall_events,
              r.eval->falls_detected + r.eval->falls_detected_late + r.eval->falls_missed);
    ASSERT_FALSE(r.eval->cost_curve.empty());
    EXPECT_DOUBLE_EQ(
        r.eval->cost_curve.front().cost,
        r.eval->cost_curve.front().cost_ratio * static_cast<double>(r.eval->falls_missed) +
            static_cast<double>(r.eval->false_alarms));
}

TEST(ScenarioEvalTest, EvalIsOffByDefaultAndLeavesTheSummaryAlone) {
    loadgen_config config = make_config("baseline");
    config.stream_eval = false;
    const loadgen_report r = run_loadgen(config);
    EXPECT_FALSE(r.eval.has_value());
    const std::string summary = r.deterministic_summary();
    EXPECT_EQ(summary.find("eval_"), std::string::npos);
    EXPECT_NE(summary.find("scenario: baseline"), std::string::npos);
}

TEST(ScenarioEvalTest, BaselineScenarioReplaysTheTwoArgStreams) {
    // The registry path must not disturb pre-scenario traffic: profile
    // "baseline" through the 3-arg overload is byte-identical to the
    // 2-arg overload every earlier release used.
    const auto legacy = synthesize_fleet_streams(6, 123);
    const auto via_profile = synthesize_fleet_streams(6, 123, data::make_profile("baseline"));
    ASSERT_EQ(via_profile.size(), legacy.size());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
        ASSERT_EQ(via_profile[i].samples.size(), legacy[i].samples.size()) << i;
        for (std::size_t j = 0; j < legacy[i].samples.size(); ++j) {
            EXPECT_EQ(via_profile[i].samples[j].accel, legacy[i].samples[j].accel);
            EXPECT_EQ(via_profile[i].samples[j].gyro, legacy[i].samples[j].gyro);
        }
        EXPECT_EQ(via_profile[i].fall.has_value(), legacy[i].fall.has_value()) << i;
    }
}

TEST(ScenarioEvalTest, ScenariosActuallyChangeTheTraffic) {
    const auto baseline = synthesize_fleet_streams(4, 77, data::make_profile("baseline"));
    for (const std::string& name : {"near_fall", "trip_catch", "vehicle_vibration",
                                    "sensor_dropout"}) {
        const auto streams = synthesize_fleet_streams(4, 77, data::make_profile(name));
        bool differs = false;
        for (std::size_t i = 0; i < streams.size() && !differs; ++i) {
            if (streams[i].samples.size() != baseline[i].samples.size()) {
                differs = true;
                break;
            }
            for (std::size_t j = 0; j < streams[i].samples.size(); ++j) {
                if (streams[i].samples[j].accel != baseline[i].samples[j].accel) {
                    differs = true;
                    break;
                }
            }
        }
        EXPECT_TRUE(differs) << name << " must not replay baseline traffic";
    }
}

TEST(ScenarioEvalTest, ChurnedSessionsKeepTheirGroundTruth) {
    // Evicted sessions must still be evaluated over what they ingested
    // before eviction — their annotations are frozen at churn time.
    loadgen_config config = make_config("baseline");
    config.churn_every_ticks = 40;
    const loadgen_report r = run_loadgen(config);
    ASSERT_TRUE(r.eval.has_value());
    EXPECT_GT(r.sessions_churned, 0u);
    EXPECT_EQ(r.eval->sessions, 16u + r.sessions_churned);
    EXPECT_EQ(r.eval->samples, r.samples_ingested);
}

TEST(ScenarioEvalTest, StreamEvalRefusesRestoredRuns) {
    loadgen_config config = make_config("baseline");
    config.restore = [](fleet_router&) {};
    EXPECT_THROW(run_loadgen(config), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::serve
