#include "serve/scorer_factory.hpp"

#include <gtest/gtest.h>

#include "core/models.hpp"
#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace fallsense::serve {
namespace {

constexpr std::size_t k_window = 20;
constexpr std::size_t k_elems = k_window * core::k_feature_channels;

scorer_spec spec_for(scorer_backend backend) {
    scorer_spec spec;
    spec.backend = backend;
    spec.window_samples = k_window;
    spec.seed = 11;
    return spec;
}

std::vector<float> noise_window(std::uint64_t seed) {
    util::rng gen(seed);
    std::vector<float> w(k_elems);
    for (float& v : w) v = static_cast<float>(gen.uniform(-1.0, 1.0));
    return w;
}

float score_one(batch_scorer& scorer, std::span<const float> window) {
    float out = -1.0f;
    scorer.score(window, 1, k_elems, std::span<float>(&out, 1));
    return out;
}

TEST(ScorerFactoryTest, BackendNamesRoundTrip) {
    EXPECT_STREQ(scorer_backend_name(scorer_backend::float32), "float");
    EXPECT_STREQ(scorer_backend_name(scorer_backend::int8), "int8");
    EXPECT_STREQ(scorer_backend_name(scorer_backend::callback), "callback");

    EXPECT_EQ(parse_scorer_backend("float"), scorer_backend::float32);
    EXPECT_EQ(parse_scorer_backend("float32"), scorer_backend::float32);
    EXPECT_EQ(parse_scorer_backend("cnn-float"), scorer_backend::float32);
    EXPECT_EQ(parse_scorer_backend("int8"), scorer_backend::int8);
    EXPECT_EQ(parse_scorer_backend("cnn-int8"), scorer_backend::int8);
    EXPECT_EQ(parse_scorer_backend("callback"), scorer_backend::callback);
    EXPECT_EQ(parse_scorer_backend("fp16"), std::nullopt);
    EXPECT_EQ(parse_scorer_backend(""), std::nullopt);
}

TEST(ScorerFactoryTest, BackendsBuildAndDescribe) {
    EXPECT_EQ(make_scorer(spec_for(scorer_backend::float32))->describe(), "cnn-float");
    EXPECT_EQ(make_scorer(spec_for(scorer_backend::int8))->describe(), "cnn-int8");

    scorer_spec cb = spec_for(scorer_backend::callback);
    cb.callback = [](std::span<const float>) { return 0.5f; };
    cb.label = "half";
    const auto scorer = make_scorer(cb);
    EXPECT_EQ(scorer->describe(), "half");
    EXPECT_EQ(score_one(*scorer, noise_window(1)), 0.5f);
}

TEST(ScorerFactoryTest, ConstructionIsDeterministicInSeed) {
    // Same spec -> bit-identical scorer; different seed -> different model.
    const std::vector<float> w = noise_window(2);
    const float a = score_one(*make_scorer(spec_for(scorer_backend::float32)), w);
    const float b = score_one(*make_scorer(spec_for(scorer_backend::float32)), w);
    EXPECT_EQ(a, b);

    scorer_spec other = spec_for(scorer_backend::float32);
    other.seed = 12;
    EXPECT_NE(score_one(*make_scorer(other), w), a);

    // The int8 calibration grid is equally a pure function of the spec.
    const float qa = score_one(*make_scorer(spec_for(scorer_backend::int8)), w);
    const float qb = score_one(*make_scorer(spec_for(scorer_backend::int8)), w);
    EXPECT_EQ(qa, qb);
}

TEST(ScorerFactoryTest, WeightsPathLoadsTrainedModel) {
    // A model saved to disk and loaded through the factory must override
    // the seed-derived initialization: the loaded scorer matches the saved
    // model's scores, not the fresh-init scorer's.
    const auto trained =
        core::build_fallsense_cnn(k_window, 123);  // "trained": any distinct weights
    const std::string path = ::testing::TempDir() + "/factory_weights.bin";
    nn::save_weights_file(*trained, path);

    scorer_spec spec = spec_for(scorer_backend::float32);
    spec.weights_path = path;
    const auto loaded = make_scorer(spec);
    const auto fresh = make_scorer(spec_for(scorer_backend::float32));

    const std::vector<float> w = noise_window(3);
    const float from_loaded = score_one(*loaded, w);
    EXPECT_NE(from_loaded, score_one(*fresh, w));

    // And reloading is reproducible.
    EXPECT_EQ(score_one(*make_scorer(spec), w), from_loaded);
}

TEST(ScorerFactoryTest, UnusableSpecsThrow) {
    scorer_spec bad = spec_for(scorer_backend::float32);
    bad.window_samples = 0;
    EXPECT_THROW(make_scorer(bad), std::invalid_argument);

    scorer_spec no_callback = spec_for(scorer_backend::callback);
    EXPECT_THROW(make_scorer(no_callback), std::invalid_argument);

    scorer_spec missing = spec_for(scorer_backend::float32);
    missing.weights_path = ::testing::TempDir() + "/does_not_exist.bin";
    EXPECT_THROW(make_scorer(missing), std::exception);
}

}  // namespace
}  // namespace fallsense::serve
