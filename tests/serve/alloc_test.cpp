// Zero-allocation contract of the serving tick (src/serve/fleet.hpp).
//
// A dedicated test binary that replaces global operator new with a
// counting allocator, warms a fleet to its high-water marks, and then
// asserts that steady-state ticks perform ZERO heap allocations — in both
// score modes and for every scorer backend.  Scope: the tick hot path
// (queue drain, window staging, batch gather, score dispatch, apply/merge)
// plus all three scorer paths end to end — the callback adapter, the int8
// deployment graph (quant::batch_inference_scratch), and the float CNN,
// whose forwards run out of the model's planned workspace arena
// (nn::model::forward_into via nn::predict_scratch).  Also pins the
// TRAINING path: a steady-state nn::train_step (gather, forward(training),
// weighted BCE, backward, Adam) recycles every tensor through the
// thread-local buffer pool and performs zero heap allocations.  Kept out
// of fallsense_tests: a global operator new override must own its whole
// binary.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <numeric>
#include <vector>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/misc_layers.hpp"
#include "nn/optimizer.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocation_count() {
    return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace

void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    const std::size_t a = static_cast<std::size_t>(align);
    const std::size_t rounded = (size + a - 1) / a * a;
    if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
    return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace fallsense::serve {
namespace {

constexpr std::size_t k_window = 20;
constexpr std::size_t k_warm_ticks = 80;
constexpr std::size_t k_measured_ticks = 60;

/// Sub-threshold constant scorer (capture is a single float, so the
/// std::function stays in its small-buffer store): no triggers, so the
/// per-tick trigger vector never grows.
std::unique_ptr<batch_scorer> quiet_scorer() {
    scorer_spec spec;
    spec.backend = scorer_backend::callback;
    spec.window_samples = k_window;
    spec.callback = [](std::span<const float>) { return 0.05f; };
    spec.label = "quiet";
    return make_scorer(spec);
}

/// Deterministically seeded CNN scorer (float32 or int8).  The untrained
/// model's logits stay small, so with the detector threshold at 1.0 its
/// sigmoid scores never trigger and no trigger-path buffers grow.
std::unique_ptr<batch_scorer> cnn_scorer(scorer_backend backend) {
    scorer_spec spec;
    spec.backend = backend;
    spec.window_samples = k_window;
    spec.seed = 7;
    return make_scorer(spec);
}

/// Feed every session one synthetic sample, then tick, counting
/// allocations strictly around the tick() call (feeding fills queues — a
/// different, caller-side path).
std::uint64_t ticks_allocations(fleet_router& fleet, const std::vector<session_id>& ids,
                                std::size_t ticks, std::size_t tick0, bool measured) {
    std::uint64_t allocations = 0;
    data::raw_sample sample{};
    for (std::size_t t = 0; t < ticks; ++t) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
            sample.accel[0] = static_cast<float>(i) * 0.2f;
            sample.accel[1] = static_cast<float>((tick0 + t) % 13) * 0.1f;
            sample.accel[2] = 1.0f;
            fleet.feed(ids[i], sample);
        }
        const std::uint64_t before = allocation_count();
        fleet.tick();
        if (measured) allocations += allocation_count() - before;
    }
    return allocations;
}

void expect_steady_state_tick_is_allocation_free(score_mode mode,
                                                 std::unique_ptr<batch_scorer> scorer,
                                                 double threshold) {
    fleet_config config;
    config.engine.detector.window_samples = k_window;
    config.engine.detector.threshold = threshold;  // scorer never fires
    config.engine.queue_capacity = 4;
    config.shards = 3;
    config.mode = mode;
    fleet_router fleet(config, std::move(scorer));
    std::vector<session_id> ids;
    for (int i = 0; i < 12; ++i) ids.push_back(fleet.create_session());

    // Warm-up: scratch buffers (staged windows, fleet batch, score slice,
    // live-session index, scorer arenas and inference plans) grow to their
    // high-water marks.
    ticks_allocations(fleet, ids, k_warm_ticks, 0, false);
    const std::uint64_t allocations =
        ticks_allocations(fleet, ids, k_measured_ticks, k_warm_ticks, true);
    EXPECT_EQ(allocations, 0u) << score_mode_name(mode) << " mode ticks allocated";
}

TEST(ServeAllocTest, FusedSteadyStateTickIsAllocationFree) {
    expect_steady_state_tick_is_allocation_free(score_mode::fused, quiet_scorer(), 0.65);
}

TEST(ServeAllocTest, PerShardSteadyStateTickIsAllocationFree) {
    expect_steady_state_tick_is_allocation_free(score_mode::per_shard, quiet_scorer(), 0.65);
}

TEST(ServeAllocTest, FloatCnnFusedSteadyStateTickIsAllocationFree) {
    expect_steady_state_tick_is_allocation_free(
        score_mode::fused, cnn_scorer(scorer_backend::float32), 1.0);
}

TEST(ServeAllocTest, FloatCnnPerShardSteadyStateTickIsAllocationFree) {
    expect_steady_state_tick_is_allocation_free(
        score_mode::per_shard, cnn_scorer(scorer_backend::float32), 1.0);
}

TEST(ServeAllocTest, Int8CnnFusedSteadyStateTickIsAllocationFree) {
    expect_steady_state_tick_is_allocation_free(
        score_mode::fused, cnn_scorer(scorer_backend::int8), 1.0);
}

TEST(ServeAllocTest, Int8CnnPerShardSteadyStateTickIsAllocationFree) {
    expect_steady_state_tick_is_allocation_free(
        score_mode::per_shard, cnn_scorer(scorer_backend::int8), 1.0);
}

/// Build k_count synthetic windows laid out back to back.
std::vector<float> synthetic_windows(std::size_t count, std::size_t elems) {
    std::vector<float> windows(count * elems);
    for (std::size_t i = 0; i < windows.size(); ++i) {
        windows[i] = std::sin(static_cast<double>(i) * 0.37) * 0.8;
    }
    return windows;
}

void expect_batch_scoring_is_allocation_free(scorer_backend backend) {
    const auto scorer = cnn_scorer(backend);

    constexpr std::size_t k_count = 48;
    const std::size_t elems = k_window * core::k_feature_channels;
    const std::vector<float> windows = synthetic_windows(k_count, elems);
    std::vector<float> out(k_count);

    scorer->score(windows, k_count, elems, out);  // warm-up batch
    const std::uint64_t before = allocation_count();
    scorer->score(windows, k_count, elems, out);
    EXPECT_EQ(allocation_count() - before, 0u)
        << scorer_backend_name(backend) << " batch scoring allocated";
    for (const float p : out) {
        EXPECT_GE(p, 0.0f);
        EXPECT_LE(p, 1.0f);
    }
}

TEST(ServeAllocTest, Int8BatchScoringIsAllocationFreeAfterWarmup) {
    // The deployment scorer's whole inference — quantize, conv branches,
    // pooling, dense trunk, requantize, sigmoid — runs out of the
    // persistent quant::batch_inference_scratch after one warm-up batch.
    expect_batch_scoring_is_allocation_free(scorer_backend::int8);
}

TEST(ServeAllocTest, FloatBatchScoringIsAllocationFreeAfterWarmup) {
    // The float path — workspace-bytes query, chunked forward_into through
    // the model's arena plan, sigmoid over the logit buffer — reuses the
    // nn::predict_scratch arena once the first batch has sized it.
    expect_batch_scoring_is_allocation_free(scorer_backend::float32);
}

TEST(ServeAllocTest, TrainStepIsAllocationFreeAfterWarmup) {
    // Steady-state training: once the first steps have grown the gather
    // batch, the im2col/weight scratches, the gemm_tn_acc reduction buffer,
    // and the tensor buffer pool to their high-water marks, a full
    // train_step — gather, forward(training) with materialized ReLU masks,
    // weighted BCE, backward, Adam update — allocates nothing.
    constexpr std::size_t k_rows = 48;
    constexpr std::size_t k_time = 20;
    constexpr std::size_t k_channels = 3;
    util::rng gen(41);
    nn::labeled_data data;
    data.features = nn::tensor({k_rows, k_time, k_channels});
    for (std::size_t i = 0; i < data.features.size(); ++i) {
        data.features[i] = static_cast<float>(gen.uniform(-1.0, 1.0));
    }
    for (std::size_t i = 0; i < k_rows; ++i) {
        data.labels.push_back((i % 3 == 0) ? 1.0f : 0.0f);
    }

    nn::sequential net;
    net.emplace<nn::conv1d>(k_channels, 8, 3, gen);
    net.emplace<nn::relu>();
    net.emplace<nn::maxpool1d>(2);
    net.emplace<nn::flatten>();
    net.emplace<nn::dense>(9 * 8, 16, gen);
    net.emplace<nn::relu>();
    net.emplace<nn::dense>(16, 1, gen, false);

    nn::adam optim(net.parameters(), 1e-3);
    nn::train_step_scratch scratch;
    std::vector<std::size_t> idx(16);
    std::iota(idx.begin(), idx.end(), 0);

    for (int step = 0; step < 8; ++step) {
        nn::train_step(net, data, idx, 1.2, 0.9, optim, scratch);
    }
    const std::uint64_t before = allocation_count();
    double loss = 0.0;
    for (int step = 0; step < 8; ++step) {
        loss = nn::train_step(net, data, idx, 1.2, 0.9, optim, scratch);
    }
    EXPECT_EQ(allocation_count() - before, 0u) << "steady-state train_step allocated";
    EXPECT_TRUE(std::isfinite(loss));
}

}  // namespace
}  // namespace fallsense::serve
