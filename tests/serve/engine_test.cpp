#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthesizer.hpp"
#include "util/thread_pool.hpp"

namespace fallsense::serve {
namespace {

data::trial make_trial(int task, std::uint64_t seed) {
    util::rng gen(seed);
    data::subject_profile subject;
    subject.id = 1;
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.5;
    tuning.locomotion_s = 2.0;
    tuning.post_fall_hold_s = 1.0;
    return data::synthesize_task(task, subject, tuning, data::synthesis_config{}, gen);
}

/// Scorer keyed on free fall (mirrors the pipeline test's): mean |a| much
/// below 1 g in the window tail.
float freefall_scorer(std::span<const float> window) {
    double mag = 0.0;
    const std::size_t n = window.size() / core::k_feature_channels;
    for (std::size_t i = n / 2; i < n; ++i) {
        const float ax = window[i * 9 + 0];
        const float ay = window[i * 9 + 1];
        const float az = window[i * 9 + 2];
        mag += std::sqrt(static_cast<double>(ax) * ax + ay * ay + az * az);
    }
    mag /= static_cast<double>(n - n / 2);
    return static_cast<float>(std::clamp(1.3 - mag, 0.0, 1.0));
}

engine_config make_config(double threshold = 0.65) {
    engine_config c;
    c.detector.window_samples = 20;
    c.detector.overlap_fraction = 0.5;
    c.detector.threshold = threshold;
    c.queue_capacity = 4;
    return c;
}

TEST(SessionEngineTest, LifecycleIdsAreNeverReused) {
    callback_batch_scorer scorer(freefall_scorer);
    session_engine engine(make_config(), scorer);

    const session_id a = engine.create_session();
    const session_id b = engine.create_session();
    const session_id c = engine.create_session();
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(c, 2u);
    EXPECT_EQ(engine.live_session_count(), 3u);

    engine.evict_session(b);
    EXPECT_FALSE(engine.is_live(b));
    EXPECT_TRUE(engine.is_live(a));
    EXPECT_EQ(engine.live_session_count(), 2u);
    EXPECT_THROW(engine.evict_session(b), std::invalid_argument);
    EXPECT_THROW((void)engine.queue_depth(b), std::invalid_argument);

    EXPECT_EQ(engine.create_session(), 3u);  // b's id is not recycled
    EXPECT_EQ(engine.totals().sessions_created, 4u);
    EXPECT_EQ(engine.totals().sessions_evicted, 1u);
}

TEST(SessionEngineTest, DropOldestEvictsFromFullQueue) {
    callback_batch_scorer scorer(freefall_scorer);
    engine_config config = make_config();
    config.queue_capacity = 2;
    config.policy = drop_policy::drop_oldest;
    session_engine engine(config, scorer);
    const session_id id = engine.create_session();

    data::raw_sample s{};
    EXPECT_TRUE(engine.feed(id, s));
    EXPECT_TRUE(engine.feed(id, s));
    EXPECT_TRUE(engine.feed(id, s));  // full: oldest evicted, this admitted
    EXPECT_EQ(engine.queue_depth(id), 2u);
    EXPECT_EQ(engine.stats(id).accepted, 3u);
    EXPECT_EQ(engine.stats(id).dropped, 1u);
    EXPECT_EQ(engine.stats(id).rejected, 0u);
    EXPECT_EQ(engine.totals().dropped, 1u);
}

TEST(SessionEngineTest, RejectNewestRefusesWhenFull) {
    callback_batch_scorer scorer(freefall_scorer);
    engine_config config = make_config();
    config.queue_capacity = 2;
    config.policy = drop_policy::reject_newest;
    session_engine engine(config, scorer);
    const session_id id = engine.create_session();

    data::raw_sample s{};
    EXPECT_TRUE(engine.feed(id, s));
    EXPECT_TRUE(engine.feed(id, s));
    EXPECT_FALSE(engine.feed(id, s));  // full: refused
    EXPECT_EQ(engine.queue_depth(id), 2u);
    EXPECT_EQ(engine.stats(id).accepted, 2u);
    EXPECT_EQ(engine.stats(id).rejected, 1u);
    EXPECT_EQ(engine.stats(id).dropped, 0u);
}

TEST(SessionEngineTest, HostedSessionMatchesDedicatedDetector) {
    // A session fed sample-by-sample must produce exactly the trigger
    // sequence (indices and probabilities) of a standalone
    // streaming_detector with the same config and scorer.
    const data::trial t = make_trial(30, 2);
    const engine_config config = make_config(0.65);

    core::streaming_detector reference(config.detector, freefall_scorer);
    std::vector<std::pair<std::size_t, float>> want;
    for (const data::raw_sample& s : t.samples) {
        if (const auto d = reference.push(s)) want.emplace_back(d->sample_index, d->probability);
    }
    ASSERT_FALSE(want.empty());

    callback_batch_scorer scorer(freefall_scorer);
    session_engine engine(config, scorer);
    const session_id id = engine.create_session();
    std::vector<std::pair<std::size_t, float>> got;
    for (const data::raw_sample& s : t.samples) {
        ASSERT_TRUE(engine.feed(id, s));
        for (const trigger_event& e : engine.tick().triggers) {
            EXPECT_EQ(e.session, id);
            got.emplace_back(e.sample_index, e.probability);
        }
    }
    EXPECT_EQ(got, want);
    EXPECT_EQ(engine.last_score(id), reference.last_score());
    EXPECT_EQ(engine.stats(id).triggers, want.size());
}

TEST(SessionEngineTest, SamplesPerTickDrainsBacklog) {
    const data::trial t = make_trial(30, 3);
    engine_config config = make_config(0.65);
    config.queue_capacity = t.sample_count();
    config.samples_per_tick = 8;
    callback_batch_scorer scorer(freefall_scorer);
    session_engine engine(config, scorer);
    const session_id id = engine.create_session();

    for (const data::raw_sample& s : t.samples) ASSERT_TRUE(engine.feed(id, s));
    std::uint64_t triggers = 0;
    while (engine.queue_depth(id) > 0) triggers += engine.tick().triggers.size();

    // Same accepted samples -> same behavior as one-at-a-time ingestion.
    core::streaming_detector reference(config.detector, freefall_scorer);
    std::uint64_t want = 0;
    for (const data::raw_sample& s : t.samples) want += reference.push(s).has_value();
    EXPECT_EQ(triggers, want);
    EXPECT_EQ(engine.stats(id).ingested, t.sample_count());
}

TEST(SessionEngineTest, TickOutputIsThreadCountInvariant) {
    // The whole point of the three-phase tick: triggers, scores, and stats
    // must be identical for 1 worker and 4.
    const std::size_t n_sessions = 6;
    std::vector<data::trial> trials;
    for (std::size_t i = 0; i < n_sessions; ++i) {
        trials.push_back(make_trial(i % 2 == 0 ? 30 : 6, 40 + i));
    }

    const auto run = [&]() {
        callback_batch_scorer scorer(freefall_scorer);
        engine_config config = make_config(0.65);
        config.samples_per_tick = 2;
        session_engine engine(config, scorer);
        std::vector<session_id> ids;
        for (std::size_t i = 0; i < n_sessions; ++i) ids.push_back(engine.create_session());

        std::vector<std::tuple<session_id, std::size_t, float>> triggers;
        const std::size_t ticks = trials[0].sample_count() / 2;
        std::vector<std::size_t> cursors(n_sessions, 0);
        for (std::size_t tick = 0; tick < ticks; ++tick) {
            for (std::size_t i = 0; i < n_sessions; ++i) {
                for (int k = 0; k < 2; ++k) {
                    const auto& samples = trials[i].samples;
                    engine.feed(ids[i], samples[cursors[i]++ % samples.size()]);
                }
            }
            for (const trigger_event& e : engine.tick().triggers) {
                triggers.emplace_back(e.session, e.sample_index, e.probability);
            }
        }
        return std::make_pair(triggers, engine.totals());
    };

    util::set_global_threads(1);
    const auto [triggers1, totals1] = run();
    util::set_global_threads(4);
    const auto [triggers4, totals4] = run();
    util::set_global_threads(0);  // back to the FALLSENSE_THREADS default

    ASSERT_FALSE(triggers1.empty());
    EXPECT_EQ(triggers1, triggers4);
    EXPECT_EQ(totals1.windows_scored, totals4.windows_scored);
    EXPECT_EQ(totals1.triggers, totals4.triggers);
    EXPECT_EQ(totals1.ingested, totals4.ingested);
}

TEST(SessionEngineTest, ConfigValidation) {
    callback_batch_scorer scorer(freefall_scorer);
    engine_config bad = make_config();
    bad.queue_capacity = 0;
    EXPECT_NE(bad.validate(), std::nullopt);
    EXPECT_THROW(session_engine(bad, scorer), std::invalid_argument);
    bad = make_config();
    bad.samples_per_tick = 0;
    EXPECT_NE(bad.validate(), std::nullopt);
    EXPECT_THROW(session_engine(bad, scorer), std::invalid_argument);
    bad = make_config();
    bad.drain_watermark = bad.queue_capacity + 1;
    ASSERT_NE(bad.validate(), std::nullopt);
    EXPECT_NE(bad.validate()->find("drain_watermark"), std::string::npos);
    EXPECT_THROW(session_engine(bad, scorer), std::invalid_argument);
    bad = make_config();
    bad.samples_per_tick = 4;
    bad.max_samples_per_tick = 2;  // ceiling below the base rate
    ASSERT_NE(bad.validate(), std::nullopt);
    EXPECT_NE(bad.validate()->find("max_samples_per_tick"), std::string::npos);
    EXPECT_THROW(session_engine(bad, scorer), std::invalid_argument);

    const engine_config good = make_config();
    EXPECT_EQ(good.validate(), std::nullopt);
    EXPECT_EQ(parse_drop_policy("oldest"), drop_policy::drop_oldest);
    EXPECT_EQ(parse_drop_policy("reject"), drop_policy::reject_newest);
    EXPECT_EQ(parse_drop_policy("drop-oldest"), drop_policy::drop_oldest);
    EXPECT_EQ(parse_drop_policy("reject-newest"), drop_policy::reject_newest);
    EXPECT_EQ(parse_drop_policy("chaos"), std::nullopt);
}

TEST(SessionEngineTest, AdaptiveDrainRisesUnderBacklogAndDecaysWhenDrained) {
    const data::trial t = make_trial(30, 9);
    engine_config config = make_config(0.65);
    config.queue_capacity = t.sample_count();
    config.samples_per_tick = 1;
    config.max_samples_per_tick = 16;
    config.drain_watermark = 4;
    callback_batch_scorer scorer(freefall_scorer);
    session_engine engine(config, scorer);
    const session_id id = engine.create_session();
    EXPECT_EQ(engine.drain_rate(id), 1u);

    // Burst: queue far above the watermark -> the rate doubles each tick
    // toward the max, draining the backlog much faster than the base rate.
    for (const data::raw_sample& s : t.samples) ASSERT_TRUE(engine.feed(id, s));
    std::size_t ticks_to_drain = 0;
    std::size_t max_rate_seen = 0;
    while (engine.queue_depth(id) > 0) {
        engine.tick();
        ++ticks_to_drain;
        max_rate_seen = std::max(max_rate_seen, engine.drain_rate(id));
    }
    EXPECT_EQ(max_rate_seen, config.max_samples_per_tick);
    EXPECT_LT(ticks_to_drain, t.sample_count() / 4);  // far faster than 1/tick

    // Drained: the rate halves back to the base within a few idle ticks.
    for (int i = 0; i < 8; ++i) engine.tick();
    EXPECT_EQ(engine.drain_rate(id), config.samples_per_tick);

    // Same accepted samples -> same triggers as one-at-a-time ingestion.
    core::streaming_detector reference(config.detector, freefall_scorer);
    std::uint64_t want = 0;
    for (const data::raw_sample& s : t.samples) want += reference.push(s).has_value();
    EXPECT_EQ(engine.stats(id).triggers, want);
    EXPECT_EQ(engine.stats(id).ingested, t.sample_count());
}

TEST(SessionEngineTest, AdaptiveDrainIsThreadCountInvariant) {
    const std::size_t n_sessions = 5;
    std::vector<data::trial> trials;
    for (std::size_t i = 0; i < n_sessions; ++i) {
        trials.push_back(make_trial(i % 2 == 0 ? 30 : 6, 70 + i));
    }

    const auto run = [&] {
        callback_batch_scorer scorer(freefall_scorer);
        engine_config config = make_config(0.65);
        config.queue_capacity = 32;
        config.samples_per_tick = 1;
        config.max_samples_per_tick = 8;
        session_engine engine(config, scorer);
        std::vector<session_id> ids;
        for (std::size_t i = 0; i < n_sessions; ++i) ids.push_back(engine.create_session());

        // Overdriven feed (3 in per tick) so the adaptive rate engages.
        std::vector<std::tuple<session_id, std::size_t, float>> triggers;
        std::vector<std::size_t> cursors(n_sessions, 0);
        std::vector<std::size_t> rates;
        for (std::size_t tick = 0; tick < 200; ++tick) {
            for (std::size_t i = 0; i < n_sessions; ++i) {
                for (int k = 0; k < 3; ++k) {
                    const auto& samples = trials[i].samples;
                    engine.feed(ids[i], samples[cursors[i]++ % samples.size()]);
                }
            }
            for (const trigger_event& e : engine.tick().triggers) {
                triggers.emplace_back(e.session, e.sample_index, e.probability);
            }
            for (std::size_t i = 0; i < n_sessions; ++i) {
                rates.push_back(engine.drain_rate(ids[i]));
            }
        }
        return std::make_tuple(triggers, rates, engine.totals().ingested,
                               engine.totals().dropped);
    };

    util::set_global_threads(1);
    const auto serial = run();
    util::set_global_threads(4);
    const auto parallel = run();
    util::set_global_threads(0);  // back to the FALLSENSE_THREADS default

    EXPECT_EQ(serial, parallel);
    EXPECT_GT(std::get<2>(serial), 0u);
}

}  // namespace
}  // namespace fallsense::serve
