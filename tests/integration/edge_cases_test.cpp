// Cross-module edge cases: boundary conditions a deployment hits sooner or
// later — short trials, falls at the stream edge, degenerate batches.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "core/models.hpp"
#include "core/pipeline.hpp"
#include "core/windowing.hpp"
#include "data/synthesizer.hpp"
#include "nn/trainer.hpp"

namespace fallsense {
namespace {

TEST(EdgeCasesTest, FallEntirelyInsideTruncationYieldsNoPositives) {
    // Hand-built trial whose falling phase is shorter than the 150 ms
    // truncation: every falling sample is withheld, so the trial must
    // contribute only negatives (and none that reach past usable_end).
    data::trial t;
    t.subject_id = 1;
    t.task_id = 30;
    t.samples.resize(300);
    for (auto& s : t.samples) s.accel = {0.0f, 0.0f, 1.0f};
    t.fall = data::fall_annotation{200, 210};  // 100 ms falling < 150 ms truncation

    core::windowing_config wc = core::standard_windowing(400.0);
    const auto windows = core::extract_windows(t, wc);
    for (const auto& w : windows) EXPECT_FLOAT_EQ(w.label, 0.0f);
}

TEST(EdgeCasesTest, TrialShorterThanWindowYieldsNothing) {
    data::trial t;
    t.subject_id = 1;
    t.task_id = 1;
    t.samples.resize(30);  // 300 ms < 400 ms window
    for (auto& s : t.samples) s.accel = {0.0f, 0.0f, 1.0f};
    const auto windows = core::extract_windows(t, core::standard_windowing(400.0));
    EXPECT_TRUE(windows.empty());
}

TEST(EdgeCasesTest, DetectorSilentOnStreamShorterThanWindow) {
    core::detector_config dc;
    dc.window_samples = 40;
    core::streaming_detector det(dc, [](std::span<const float>) { return 1.0f; });
    data::raw_sample s;
    s.accel = {0.0f, 0.0f, 1.0f};
    for (int i = 0; i < 39; ++i) {
        EXPECT_FALSE(det.push(s).has_value());
    }
    EXPECT_TRUE(std::isnan(det.last_score()));
}

TEST(EdgeCasesTest, TrainerHandlesBatchLargerThanDataset) {
    util::rng gen(1);
    nn::labeled_data data;
    data.features = nn::tensor({10, 4});
    for (float& v : data.features.values()) v = static_cast<float>(gen.normal());
    for (int i = 0; i < 10; ++i) data.labels.push_back(i % 2 ? 1.0f : 0.0f);

    core::built_model bm = core::build_model(core::model_kind::mlp, 1, 2);
    // MLP expects [batch, window, 9]; build a matching toy instead.
    nn::labeled_data toy;
    toy.features = nn::tensor({10, 1, 9});
    for (float& v : toy.features.values()) v = static_cast<float>(gen.normal());
    toy.labels = data.labels;

    nn::train_config tc;
    tc.max_epochs = 2;
    tc.batch_size = 64;  // > 10 samples
    tc.early_stop_patience = 0;
    EXPECT_NO_THROW(nn::fit(*bm.network, toy, {}, tc));
}

TEST(EdgeCasesTest, AllNegativeTrainingStillRuns) {
    // Datasets without a single fall (ADL-only deployments) must train
    // without class-weight or bias-init crashes.
    util::rng gen(3);
    nn::labeled_data toy;
    toy.features = nn::tensor({20, 1, 9});
    for (float& v : toy.features.values()) v = static_cast<float>(gen.normal());
    toy.labels.assign(20, 0.0f);
    core::built_model bm = core::build_model(core::model_kind::mlp, 1, 4);
    nn::train_config tc;
    tc.max_epochs = 2;
    tc.early_stop_patience = 0;
    const nn::train_history h = nn::fit(*bm.network, toy, {}, tc);
    EXPECT_DOUBLE_EQ(h.weight_positive, 1.0);  // degenerate class weights
    EXPECT_DOUBLE_EQ(h.weight_negative, 1.0);
}

TEST(EdgeCasesTest, WindowEqualsTrialLengthExactly) {
    data::trial t;
    t.subject_id = 1;
    t.task_id = 1;
    t.samples.resize(40);
    for (auto& s : t.samples) s.accel = {0.0f, 0.0f, 1.0f};
    const auto windows = core::extract_windows(t, core::standard_windowing(400.0));
    EXPECT_EQ(windows.size(), 1u);
}

TEST(EdgeCasesTest, FallAnnotationAtVeryStartHandled) {
    // Onset at sample 0 (recording started mid-fall): windowing must not
    // underflow and the trial still yields (possibly zero) valid windows.
    data::trial t;
    t.subject_id = 1;
    t.task_id = 30;
    t.samples.resize(200);
    for (auto& s : t.samples) s.accel = {0.0f, 0.0f, 0.3f};
    t.fall = data::fall_annotation{0, 80};
    const auto windows = core::extract_windows(t, core::standard_windowing(400.0));
    for (const auto& w : windows) {
        EXPECT_EQ(w.features.size(), 40u * 9u);
    }
}

}  // namespace
}  // namespace fallsense
