// Reproducibility contract: for a fixed FALLSENSE_SEED the entire
// experiment harness — data synthesis, alignment, folds, augmentation,
// training, evaluation — must produce bit-identical results, and a
// different seed must produce different data.  Every number in
// EXPERIMENTS.md relies on this.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/models.hpp"
#include "util/thread_pool.hpp"

namespace fallsense {
namespace {

core::experiment_scale mini_scale() {
    core::experiment_scale s = core::scale_preset(util::run_scale::tiny);
    s.max_epochs = 3;
    s.early_stop_patience = 0;
    return s;
}

TEST(DeterminismTest, DatasetGenerationIsReproducible) {
    const core::experiment_scale s = mini_scale();
    const data::dataset a = core::make_merged_dataset(s, 7);
    const data::dataset b = core::make_merged_dataset(s, 7);
    ASSERT_EQ(a.trial_count(), b.trial_count());
    for (std::size_t i = 0; i < a.trial_count(); i += 13) {
        ASSERT_EQ(a.trials[i].sample_count(), b.trials[i].sample_count());
        for (std::size_t j = 0; j < a.trials[i].sample_count(); j += 29) {
            ASSERT_FLOAT_EQ(a.trials[i].samples[j].accel[0], b.trials[i].samples[j].accel[0]);
            ASSERT_FLOAT_EQ(a.trials[i].samples[j].gyro[1], b.trials[i].samples[j].gyro[1]);
        }
    }
}

TEST(DeterminismTest, CrossValidationIsReproducible) {
    const core::experiment_scale s = mini_scale();
    const data::dataset merged = core::make_merged_dataset(s, 11);
    const core::windowing_config wc = core::standard_windowing(200.0);
    const core::cross_validation_result a =
        core::run_cross_validation(core::model_kind::cnn, merged, wc, s, 13);
    const core::cross_validation_result b =
        core::run_cross_validation(core::model_kind::cnn, merged, wc, s, 13);
    ASSERT_EQ(a.all_records.size(), b.all_records.size());
    for (std::size_t i = 0; i < a.all_records.size(); ++i) {
        ASSERT_FLOAT_EQ(a.all_records[i].probability, b.all_records[i].probability);
        ASSERT_EQ(a.all_records[i].subject_id, b.all_records[i].subject_id);
    }
    EXPECT_DOUBLE_EQ(a.pooled.f1, b.pooled.f1);
}

namespace {
struct thread_guard {
    ~thread_guard() { util::set_global_threads(0); }
};
}  // namespace

// The parallel substrate (thread pool + GEMM + parallel folds/synthesis)
// must not let the thread count leak into any number: FALLSENSE_THREADS=1
// and =4 have to produce bit-identical datasets, metrics, and weights.
TEST(DeterminismTest, ThreadCountDoesNotChangeCrossValidation) {
    thread_guard guard;
    const core::experiment_scale s = mini_scale();
    const core::windowing_config wc = core::standard_windowing(200.0);

    util::set_global_threads(1);
    const data::dataset merged1 = core::make_merged_dataset(s, 11);
    const core::cross_validation_result a =
        core::run_cross_validation(core::model_kind::cnn, merged1, wc, s, 13);

    util::set_global_threads(4);
    const data::dataset merged4 = core::make_merged_dataset(s, 11);
    const core::cross_validation_result b =
        core::run_cross_validation(core::model_kind::cnn, merged4, wc, s, 13);

    ASSERT_EQ(merged1.trial_count(), merged4.trial_count());
    for (std::size_t i = 0; i < merged1.trial_count(); ++i) {
        ASSERT_EQ(merged1.trials[i].sample_count(), merged4.trials[i].sample_count());
        for (std::size_t j = 0; j < merged1.trials[i].sample_count(); j += 17) {
            ASSERT_EQ(merged1.trials[i].samples[j].accel[0],
                      merged4.trials[i].samples[j].accel[0]);
        }
    }
    ASSERT_EQ(a.all_records.size(), b.all_records.size());
    for (std::size_t i = 0; i < a.all_records.size(); ++i) {
        ASSERT_EQ(a.all_records[i].probability, b.all_records[i].probability)
            << "record " << i << " differs between 1 and 4 threads";
        ASSERT_EQ(a.all_records[i].subject_id, b.all_records[i].subject_id);
    }
    EXPECT_EQ(a.pooled.f1, b.pooled.f1);
}

TEST(DeterminismTest, ThreadCountDoesNotChangeTrainedWeights) {
    thread_guard guard;
    const std::size_t window = 20;
    const std::size_t n_examples = 48;

    auto make_data = [&] {
        util::rng gen(7);
        nn::labeled_data data;
        data.features = nn::tensor({n_examples, window, core::k_feature_channels});
        for (float& v : data.features.values()) v = static_cast<float>(gen.normal());
        for (std::size_t i = 0; i < n_examples; ++i) {
            data.labels.push_back(i % 3 == 0 ? 1.0f : 0.0f);
        }
        return data;
    };

    auto train_weights = [&](std::size_t threads) {
        util::set_global_threads(threads);
        core::built_model bm = core::build_model(core::model_kind::cnn, window, 99);
        nn::labeled_data train = make_data();
        nn::train_config tc;
        tc.max_epochs = 3;
        tc.batch_size = 16;
        tc.early_stop_patience = 0;
        tc.shuffle_seed = 5;
        nn::fit(*bm.network, train, nn::labeled_data{}, tc);
        return nn::snapshot_parameters(*bm.network);
    };

    const std::vector<nn::tensor> w1 = train_weights(1);
    const std::vector<nn::tensor> w4 = train_weights(4);
    ASSERT_EQ(w1.size(), w4.size());
    for (std::size_t p = 0; p < w1.size(); ++p) {
        ASSERT_EQ(w1[p].size(), w4[p].size());
        for (std::size_t i = 0; i < w1[p].size(); ++i) {
            ASSERT_EQ(w1[p][i], w4[p][i])
                << "parameter " << p << " element " << i << " differs across thread counts";
        }
    }
}

TEST(DeterminismTest, SeedChangesOutcome) {
    const core::experiment_scale s = mini_scale();
    const data::dataset m1 = core::make_merged_dataset(s, 17);
    const data::dataset m2 = core::make_merged_dataset(s, 18);
    bool any_diff = false;
    for (std::size_t i = 0; i < m1.trial_count() && !any_diff; ++i) {
        if (m1.trials[i].sample_count() != m2.trials[i].sample_count()) {
            any_diff = true;
        } else if (m1.trials[i].samples[0].accel[0] != m2.trials[i].samples[0].accel[0]) {
            any_diff = true;
        }
    }
    EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace fallsense
