// Reproducibility contract: for a fixed FALLSENSE_SEED the entire
// experiment harness — data synthesis, alignment, folds, augmentation,
// training, evaluation — must produce bit-identical results, and a
// different seed must produce different data.  Every number in
// EXPERIMENTS.md relies on this.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace fallsense {
namespace {

core::experiment_scale mini_scale() {
    core::experiment_scale s = core::scale_preset(util::run_scale::tiny);
    s.max_epochs = 3;
    s.early_stop_patience = 0;
    return s;
}

TEST(DeterminismTest, DatasetGenerationIsReproducible) {
    const core::experiment_scale s = mini_scale();
    const data::dataset a = core::make_merged_dataset(s, 7);
    const data::dataset b = core::make_merged_dataset(s, 7);
    ASSERT_EQ(a.trial_count(), b.trial_count());
    for (std::size_t i = 0; i < a.trial_count(); i += 13) {
        ASSERT_EQ(a.trials[i].sample_count(), b.trials[i].sample_count());
        for (std::size_t j = 0; j < a.trials[i].sample_count(); j += 29) {
            ASSERT_FLOAT_EQ(a.trials[i].samples[j].accel[0], b.trials[i].samples[j].accel[0]);
            ASSERT_FLOAT_EQ(a.trials[i].samples[j].gyro[1], b.trials[i].samples[j].gyro[1]);
        }
    }
}

TEST(DeterminismTest, CrossValidationIsReproducible) {
    const core::experiment_scale s = mini_scale();
    const data::dataset merged = core::make_merged_dataset(s, 11);
    const core::windowing_config wc = core::standard_windowing(200.0);
    const core::cross_validation_result a =
        core::run_cross_validation(core::model_kind::cnn, merged, wc, s, 13);
    const core::cross_validation_result b =
        core::run_cross_validation(core::model_kind::cnn, merged, wc, s, 13);
    ASSERT_EQ(a.all_records.size(), b.all_records.size());
    for (std::size_t i = 0; i < a.all_records.size(); ++i) {
        ASSERT_FLOAT_EQ(a.all_records[i].probability, b.all_records[i].probability);
        ASSERT_EQ(a.all_records[i].subject_id, b.all_records[i].subject_id);
    }
    EXPECT_DOUBLE_EQ(a.pooled.f1, b.pooled.f1);
}

TEST(DeterminismTest, SeedChangesOutcome) {
    const core::experiment_scale s = mini_scale();
    const data::dataset m1 = core::make_merged_dataset(s, 17);
    const data::dataset m2 = core::make_merged_dataset(s, 18);
    bool any_diff = false;
    for (std::size_t i = 0; i < m1.trial_count() && !any_diff; ++i) {
        if (m1.trials[i].sample_count() != m2.trials[i].sample_count()) {
            any_diff = true;
        } else if (m1.trials[i].samples[0].accel[0] != m2.trials[i].samples[0].accel[0]) {
            any_diff = true;
        }
    }
    EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace fallsense
