// End-to-end integration: synthesize data -> align/merge -> train the
// proposed CNN subject-independently -> quantize -> deploy on the MCU model
// -> drive the streaming detector + airbag on held-out trials.  This is the
// full Figure 2 pipeline in one test, at tiny scale.
#include <gtest/gtest.h>

#include <cmath>

#include "core/airbag.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "eval/eval.hpp"
#include "mcu/cost_model.hpp"
#include "mcu/memory_planner.hpp"
#include "quant/quantized_cnn.hpp"

namespace fallsense {
namespace {

class EndToEndTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        scale_ = core::scale_preset(util::run_scale::tiny);
        scale_->max_epochs = 6;
        scale_->early_stop_patience = 3;
        merged_ = core::make_merged_dataset(*scale_, 42);

        eval::kfold_config kf;
        kf.folds = scale_->folds;
        kf.validation_subjects = scale_->validation_subjects;
        splits_ = eval::make_subject_folds(merged_->subject_ids(), kf);

        windows_ = core::standard_windowing(200.0);

        // Train the proposed CNN on fold 0.
        const std::size_t window_samples = windows_->segmentation.window_samples;
        std::vector<data::trial> train_trials;
        for (const data::trial& t : merged_->trials) {
            const auto& train = (*splits_)[0].train_subjects;
            if (std::find(train.begin(), train.end(), t.subject_id) != train.end()) {
                train_trials.push_back(t);
            }
        }
        util::rng aug_gen(1);
        augment::augment_fall_trials(train_trials, 1, augment::trial_augment_config{},
                                     aug_gen);
        const auto train_w = core::extract_windows(train_trials, *windows_);
        const auto val_w =
            core::extract_windows(merged_->trials, *windows_, &(*splits_)[0].validation_subjects);
        nn::labeled_data train = core::to_labeled_data(train_w, window_samples);
        nn::labeled_data val = core::to_labeled_data(val_w, window_samples);

        cnn_ = core::build_fallsense_cnn(window_samples, 7);
        nn::train_config tc;
        tc.max_epochs = scale_->max_epochs;
        tc.early_stop_patience = scale_->early_stop_patience;
        nn::fit(*cnn_, train, val, tc);

        // Quantize with training windows as calibration data.
        spec_ = quant::extract_cnn_spec(*cnn_, window_samples);
        qmodel_.emplace(*spec_, train.features);
    }

    static void TearDownTestSuite() {
        qmodel_.reset();
        spec_.reset();
        cnn_.reset();
        splits_.reset();
        merged_.reset();
        scale_.reset();
    }

    static std::optional<core::experiment_scale> scale_;
    static std::optional<data::dataset> merged_;
    static std::optional<std::vector<eval::fold_split>> splits_;
    static std::optional<core::windowing_config> windows_;
    static std::unique_ptr<nn::multi_branch_network> cnn_;
    static std::optional<quant::cnn_spec> spec_;
    static std::optional<quant::quantized_cnn> qmodel_;
};

std::optional<core::experiment_scale> EndToEndTest::scale_;
std::optional<data::dataset> EndToEndTest::merged_;
std::optional<std::vector<eval::fold_split>> EndToEndTest::splits_;
std::optional<core::windowing_config> EndToEndTest::windows_;
std::unique_ptr<nn::multi_branch_network> EndToEndTest::cnn_;
std::optional<quant::cnn_spec> EndToEndTest::spec_;
std::optional<quant::quantized_cnn> EndToEndTest::qmodel_;

TEST_F(EndToEndTest, TrainedCnnBeatsChanceOnHeldOutSubjects) {
    const auto test_w =
        core::extract_windows(merged_->trials, *windows_, &(*splits_)[0].test_subjects);
    ASSERT_FALSE(test_w.empty());
    nn::labeled_data test =
        core::to_labeled_data(test_w, windows_->segmentation.window_samples);
    const std::vector<float> probs = nn::predict_proba(*cnn_, test.features);
    const eval::classification_report report = eval::evaluate(probs, test.labels);
    // Tiny scale trains on 3 subjects for a few epochs: the bar here is
    // discriminative power, not polished accuracy (quick/full cover that).
    EXPECT_GT(report.accuracy, 0.8);
    EXPECT_GT(report.recall, 0.6);  // macro recall well above the 0.5 floor
    EXPECT_GT(eval::roc_auc(probs, test.labels), 0.85);
}

TEST_F(EndToEndTest, QuantizedModelTracksFloatModel) {
    const auto test_w =
        core::extract_windows(merged_->trials, *windows_, &(*splits_)[0].test_subjects);
    const std::size_t seg = windows_->segmentation.window_samples * 9;
    std::size_t agree = 0, total = 0;
    for (const auto& w : test_w) {
        const bool fd = spec_->forward_logit(w.features) >= 0.0f;
        const bool qd = qmodel_->predict_logit(w.features) >= 0.0f;
        agree += (fd == qd) ? 1 : 0;
        ++total;
        ASSERT_EQ(w.features.size(), seg);
    }
    EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.97);
}

TEST_F(EndToEndTest, DeploymentFitsAndRunsInBudget) {
    const mcu::deployment_plan plan = mcu::plan_deployment(*qmodel_, mcu::stm32f722());
    EXPECT_TRUE(plan.fits_flash);
    EXPECT_TRUE(plan.fits_ram);
    const mcu::latency_estimate inference =
        mcu::estimate_inference(*qmodel_, mcu::stm32f722());
    const mcu::latency_estimate fusion =
        mcu::estimate_fusion(windows_->segmentation.window_samples, mcu::stm32f722());
    // Total pipeline latency must leave the airbag its 150 ms.
    EXPECT_LT(inference.milliseconds + fusion.milliseconds, 20.0);
}

TEST_F(EndToEndTest, StreamingDetectorProtectsMostHeldOutFalls) {
    core::detector_config dc;
    dc.window_samples = windows_->segmentation.window_samples;
    dc.overlap_fraction = 0.75;  // denser scoring when streaming
    dc.threshold = 0.5;
    const core::segment_scorer scorer = [&](std::span<const float> window) {
        return qmodel_->predict_proba(window);
    };

    std::size_t falls = 0, protected_count = 0, detected = 0;
    for (const data::trial& t : merged_->trials) {
        const auto& test = (*splits_)[0].test_subjects;
        if (std::find(test.begin(), test.end(), t.subject_id) == test.end()) continue;
        if (!t.is_fall_trial()) continue;
        ++falls;
        const core::protection_outcome outcome = core::evaluate_protection(t, dc, scorer);
        detected += outcome.detected ? 1 : 0;
        protected_count += outcome.protected_in_time ? 1 : 0;
    }
    ASSERT_GT(falls, 0u);
    // At tiny training scale we only require better-than-half detection.
    EXPECT_GT(static_cast<double>(detected) / static_cast<double>(falls), 0.5);
    EXPECT_GE(detected, protected_count);
}

TEST_F(EndToEndTest, SubjectIndependenceHolds) {
    // No test subject may appear in train or validation.
    const auto& s = (*splits_)[0];
    for (const int id : s.test_subjects) {
        EXPECT_EQ(std::count(s.train_subjects.begin(), s.train_subjects.end(), id), 0);
        EXPECT_EQ(std::count(s.validation_subjects.begin(), s.validation_subjects.end(), id),
                  0);
    }
}

}  // namespace
}  // namespace fallsense
