// Consistency between the two inference paths: the batch windowing pipeline
// (core::extract_windows over a recorded trial) and the streaming detector
// (tick-by-tick, as on the device) must feed the classifier essentially the
// same windows.  Divergence here would mean offline evaluation results do
// not transfer to the deployed firmware.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.hpp"
#include "core/windowing.hpp"
#include "data/synthesizer.hpp"

namespace fallsense {
namespace {

data::trial make_trial(int task, std::uint64_t seed) {
    util::rng gen(seed);
    data::subject_profile subject;
    subject.id = 1;
    data::motion_tuning tuning;
    tuning.static_hold_s = 2.0;
    tuning.locomotion_s = 2.5;
    tuning.post_fall_hold_s = 1.0;
    return data::synthesize_task(task, subject, tuning, data::synthesis_config{}, gen);
}

/// A deterministic scorer keyed on window content (mean of all features):
/// any window mismatch between the two paths shows up as a score mismatch.
float content_hash_scorer(std::span<const float> w) {
    double acc = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) {
        acc += w[i] * (0.3 + 0.7 * static_cast<double>(i % 13) / 13.0);
    }
    return static_cast<float>(std::tanh(acc / static_cast<double>(w.size())) * 0.5 + 0.5);
}

TEST(StreamingVsBatchTest, ScoresAgreeOnSharedWindows) {
    for (const int task : {6, 30}) {
        const data::trial t = make_trial(task, 11 + static_cast<std::uint64_t>(task));

        // Batch path.
        core::windowing_config wc;
        wc.segmentation = dsp::make_segmentation(200.0, 0.5, 100.0);
        const auto batch_windows = core::extract_windows(t, wc);
        std::vector<float> batch_scores;
        for (const auto& w : batch_windows) batch_scores.push_back(content_hash_scorer(w.features));

        // Streaming path: collect the score emitted at each scoring tick.
        core::detector_config dc;
        dc.window_samples = wc.segmentation.window_samples;
        dc.overlap_fraction = wc.segmentation.overlap_fraction;
        dc.threshold = 1.0;  // never fires; we only want last_score()
        core::streaming_detector det(dc, content_hash_scorer);
        std::vector<float> stream_scores;
        float prev = std::numeric_limits<float>::quiet_NaN();
        for (std::size_t i = 0; i < t.sample_count(); ++i) {
            det.push(t.samples[i]);
            const float s = det.last_score();
            if (!std::isnan(s) && (std::isnan(prev) || s != prev)) {
                // A new score appears every hop; record transitions.
            }
            prev = s;
            if (!std::isnan(s) &&
                (i + 1 >= dc.window_samples) &&
                ((i + 1 - dc.window_samples) % wc.segmentation.hop_samples() == 0)) {
                stream_scores.push_back(s);
            }
        }

        // Fall trials drop truncated windows from the batch path, so compare
        // the common prefix.
        const std::size_t n = std::min(batch_scores.size(), stream_scores.size());
        ASSERT_GT(n, 3u) << "task " << task;
        for (std::size_t k = 0; k < n; ++k) {
            EXPECT_NEAR(batch_scores[k], stream_scores[k], 0.02)
                << "task " << task << " window " << k;
        }
    }
}

TEST(StreamingVsBatchTest, WindowCountsMatchOnAdlTrials) {
    const data::trial t = make_trial(6, 42);
    core::windowing_config wc;
    wc.segmentation = dsp::make_segmentation(300.0, 0.5, 100.0);
    const auto batch_windows = core::extract_windows(t, wc);

    core::detector_config dc;
    dc.window_samples = wc.segmentation.window_samples;
    dc.overlap_fraction = 0.5;
    dc.threshold = 1.0;
    core::streaming_detector det(dc, [](std::span<const float>) { return 0.5f; });
    std::size_t scored = 0;
    for (std::size_t i = 0; i < t.sample_count(); ++i) {
        det.push(t.samples[i]);
        if ((i + 1 >= dc.window_samples) &&
            ((i + 1 - dc.window_samples) % wc.segmentation.hop_samples() == 0)) {
            ++scored;
        }
    }
    EXPECT_EQ(scored, batch_windows.size());
}

}  // namespace
}  // namespace fallsense
