#include "eval/eval.hpp"

#include <gtest/gtest.h>

namespace fallsense::eval {
namespace {

segment_record seg(int subject, int task, int trial, bool is_fall, float label, float prob) {
    segment_record r;
    r.subject_id = subject;
    r.task_id = task;
    r.trial_index = trial;
    r.trial_is_fall = is_fall;
    r.label = label;
    r.probability = prob;
    return r;
}

TEST(EventsTest, FallDetectedByOnePositiveWindowSegment) {
    // Three segments of one fall event (task 30): only one fires -> detected.
    const std::vector<segment_record> records{
        seg(1, 30, 0, true, 0.0f, 0.1f),
        seg(1, 30, 0, true, 1.0f, 0.2f),
        seg(1, 30, 0, true, 1.0f, 0.9f),
    };
    const event_counts c = count_events(records);
    EXPECT_EQ(c.falls_total, 1u);
    EXPECT_EQ(c.falls_detected, 1u);
}

TEST(EventsTest, FallMissedWhenNoWindowSegmentFires) {
    const std::vector<segment_record> records{
        seg(1, 30, 0, true, 1.0f, 0.3f),
        seg(1, 30, 0, true, 1.0f, 0.4f),
    };
    const event_counts c = count_events(records);
    EXPECT_EQ(c.falls_detected, 0u);
}

TEST(EventsTest, FiringOutsideFallingWindowDoesNotCountAsDetection) {
    // A pre-fall segment (label 0) fires but no falling-window segment does.
    const std::vector<segment_record> records{
        seg(1, 30, 0, true, 0.0f, 0.95f),
        seg(1, 30, 0, true, 1.0f, 0.2f),
    };
    const event_counts c = count_events(records);
    EXPECT_EQ(c.falls_detected, 0u);
}

TEST(EventsTest, AdlFalseAlarmOnAnyFiring) {
    const std::vector<segment_record> records{
        seg(1, 6, 0, false, 0.0f, 0.1f),
        seg(1, 6, 0, false, 0.0f, 0.7f),
        seg(2, 6, 0, false, 0.0f, 0.2f),
    };
    const event_counts c = count_events(records);
    EXPECT_EQ(c.adl_total, 2u);
    EXPECT_EQ(c.adl_false_alarms, 1u);
}

TEST(EventsTest, EventsGroupedBySubjectTaskTrial) {
    const std::vector<segment_record> records{
        seg(1, 6, 0, false, 0.0f, 0.9f),
        seg(1, 6, 1, false, 0.0f, 0.1f),  // different trial -> separate event
        seg(2, 6, 0, false, 0.0f, 0.1f),
    };
    const event_counts c = count_events(records);
    EXPECT_EQ(c.adl_total, 3u);
    EXPECT_EQ(c.adl_false_alarms, 1u);
}

TEST(EventsTest, AnalysisPercentagesPerTask) {
    std::vector<segment_record> records;
    // Task 30: 4 fall events, 1 missed.
    for (int s = 0; s < 4; ++s) {
        records.push_back(seg(s, 30, 0, true, 1.0f, s == 0 ? 0.2f : 0.9f));
    }
    // Task 6: 5 ADL events, 1 false alarm.
    for (int s = 0; s < 5; ++s) {
        records.push_back(seg(s, 6, 0, false, 0.0f, s == 0 ? 0.9f : 0.1f));
    }
    const event_analysis a = analyze_events(records);
    ASSERT_EQ(a.fall_misses.size(), 1u);
    EXPECT_EQ(a.fall_misses[0].task_id, 30);
    EXPECT_DOUBLE_EQ(a.fall_misses[0].miss_percent(), 25.0);
    ASSERT_EQ(a.adl_false_alarms.size(), 1u);
    EXPECT_DOUBLE_EQ(a.adl_false_alarms[0].miss_percent(), 20.0);
    EXPECT_DOUBLE_EQ(a.fall_miss_percent_avg, 25.0);
    EXPECT_DOUBLE_EQ(a.adl_false_percent_avg, 20.0);
}

TEST(EventsTest, RedGreenSplitUsesTaxonomy) {
    std::vector<segment_record> records;
    // Task 44 (red): 2 events, both false alarms.
    records.push_back(seg(1, 44, 0, false, 0.0f, 0.9f));
    records.push_back(seg(2, 44, 0, false, 0.0f, 0.9f));
    // Task 6 (green): 2 events, no alarms.
    records.push_back(seg(1, 6, 0, false, 0.0f, 0.1f));
    records.push_back(seg(2, 6, 0, false, 0.0f, 0.1f));
    const event_analysis a = analyze_events(records);
    EXPECT_DOUBLE_EQ(a.red_adl_false_percent, 100.0);
    EXPECT_DOUBLE_EQ(a.green_adl_false_percent, 0.0);
    EXPECT_DOUBLE_EQ(a.adl_false_percent_avg, 50.0);
}

TEST(EventsTest, SortedByMissPercentDescending) {
    std::vector<segment_record> records;
    records.push_back(seg(1, 30, 0, true, 1.0f, 0.9f));  // task 30: 0% miss
    records.push_back(seg(1, 39, 0, true, 1.0f, 0.1f));  // task 39: 100% miss
    const event_analysis a = analyze_events(records);
    ASSERT_EQ(a.fall_misses.size(), 2u);
    EXPECT_EQ(a.fall_misses[0].task_id, 39);
    EXPECT_EQ(a.fall_misses[1].task_id, 30);
}

TEST(EventsTest, ThresholdRespected) {
    const std::vector<segment_record> records{seg(1, 6, 0, false, 0.0f, 0.6f)};
    EXPECT_EQ(count_events(records, 0.5).adl_false_alarms, 1u);
    EXPECT_EQ(count_events(records, 0.7).adl_false_alarms, 0u);
}

TEST(EventsTest, EmptyInputProducesZeroes) {
    const event_analysis a = analyze_events({});
    EXPECT_TRUE(a.fall_misses.empty());
    EXPECT_DOUBLE_EQ(a.fall_miss_percent_avg, 0.0);
}

}  // namespace
}  // namespace fallsense::eval
