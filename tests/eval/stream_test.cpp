#include "eval/eval.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace fallsense::eval {
namespace {

// 100 Hz, 0.5 s grace (= 50 samples), default cost grid.
stream_eval_config default_config() { return stream_eval_config{}; }

session_annotation one_fall_session(std::uint32_t session, std::size_t onset,
                                    std::size_t impact, std::size_t ingested,
                                    std::size_t stream_samples = 0) {
    session_annotation s;
    s.session = session;
    s.stream_samples = stream_samples;
    s.samples_ingested = ingested;
    s.falls.push_back({onset, impact});
    return s;
}

TEST(StreamEvalTest, PreImpactTriggerDetectsWithLeadTime) {
    const std::vector<session_annotation> sessions{one_fall_session(0, 100, 150, 1000)};
    const std::vector<stream_trigger> triggers{{0, 120}};
    const stream_eval_report r = evaluate_stream(triggers, sessions, default_config());
    EXPECT_EQ(r.sessions, 1u);
    EXPECT_EQ(r.samples, 1000u);
    EXPECT_EQ(r.triggers, 1u);
    EXPECT_EQ(r.fall_events, 1u);
    EXPECT_EQ(r.falls_detected, 1u);
    EXPECT_EQ(r.falls_detected_late, 0u);
    EXPECT_EQ(r.falls_missed, 0u);
    EXPECT_EQ(r.false_alarms, 0u);
    // 30 samples before impact at 100 Hz = 300 ms of pre-impact lead.
    EXPECT_DOUBLE_EQ(r.mean_lead_ms, 300.0);
    EXPECT_DOUBLE_EQ(r.min_lead_ms, 300.0);
    EXPECT_DOUBLE_EQ(r.max_lead_ms, 300.0);
}

TEST(StreamEvalTest, MissAndFalseAlarmFeedTheCostCurve) {
    const std::vector<session_annotation> sessions{one_fall_session(0, 100, 150, 1000)};
    // Fires well after the grace window: one false alarm, and the fall
    // itself goes unclaimed.
    const std::vector<stream_trigger> triggers{{0, 600}};
    const stream_eval_report r = evaluate_stream(triggers, sessions, default_config());
    EXPECT_EQ(r.falls_detected, 0u);
    EXPECT_EQ(r.falls_missed, 1u);
    EXPECT_EQ(r.false_alarms, 1u);
    ASSERT_EQ(r.cost_curve.size(), default_config().cost_ratios.size());
    for (const cost_point& p : r.cost_curve) {
        EXPECT_DOUBLE_EQ(p.cost, p.cost_ratio * 1.0 + 1.0);
    }
    // No pre-impact detections: lead statistics stay zeroed.
    EXPECT_DOUBLE_EQ(r.mean_lead_ms, 0.0);
    EXPECT_DOUBLE_EQ(r.min_lead_ms, 0.0);
}

TEST(StreamEvalTest, PostImpactTriggerWithinGraceIsLateDetection) {
    const std::vector<session_annotation> sessions{one_fall_session(0, 100, 150, 1000)};
    const std::vector<stream_trigger> triggers{{0, 180}};  // grace ends at 200
    const stream_eval_report r = evaluate_stream(triggers, sessions, default_config());
    EXPECT_EQ(r.falls_detected, 0u);
    EXPECT_EQ(r.falls_detected_late, 1u);
    EXPECT_EQ(r.falls_missed, 0u);
    EXPECT_EQ(r.false_alarms, 0u);
}

TEST(StreamEvalTest, TriggerJustPastGraceIsMissPlusFalseAlarm) {
    const std::vector<session_annotation> sessions{one_fall_session(0, 100, 150, 1000)};
    const std::vector<stream_trigger> triggers{{0, 201}};  // one past impact+grace
    const stream_eval_report r = evaluate_stream(triggers, sessions, default_config());
    EXPECT_EQ(r.falls_detected_late, 0u);
    EXPECT_EQ(r.falls_missed, 1u);
    EXPECT_EQ(r.false_alarms, 1u);
}

TEST(StreamEvalTest, RepeatFiringsInsideOneWindowFoldIntoTheDetection) {
    const std::vector<session_annotation> sessions{one_fall_session(0, 100, 150, 1000)};
    const std::vector<stream_trigger> triggers{{0, 120}, {0, 130}, {0, 145}, {0, 170}};
    const stream_eval_report r = evaluate_stream(triggers, sessions, default_config());
    EXPECT_EQ(r.triggers, 4u);
    EXPECT_EQ(r.falls_detected, 1u);
    EXPECT_EQ(r.false_alarms, 0u);
    // The first firing owns the lead time.
    EXPECT_DOUBLE_EQ(r.mean_lead_ms, 300.0);
}

TEST(StreamEvalTest, LoopedStreamExpandsOneInstancePerCompletedLoop) {
    // Loop length 1000, impact at 150: instances at 150, 1150, 2150.
    const std::vector<session_annotation> sessions{
        one_fall_session(0, 100, 150, 2500, 1000)};
    const std::vector<stream_trigger> triggers{{0, 120}, {0, 1120}};
    const stream_eval_report r = evaluate_stream(triggers, sessions, default_config());
    EXPECT_EQ(r.fall_events, 3u);
    EXPECT_EQ(r.falls_detected, 2u);
    EXPECT_EQ(r.falls_missed, 1u);  // the 2150 instance, never fired on
    EXPECT_EQ(r.false_alarms, 0u);
}

TEST(StreamEvalTest, InstanceCountsOnlyWhenImpactWasIngested) {
    // Ingestion stops exactly at the impact sample: the fall never landed
    // inside the ingested range, so it is not a countable event.
    const std::vector<session_annotation> sessions{
        one_fall_session(0, 100, 150, 150, 1000)};
    const stream_eval_report r = evaluate_stream({}, sessions, default_config());
    EXPECT_EQ(r.fall_events, 0u);
    EXPECT_EQ(r.falls_missed, 0u);
    // One more ingested sample and the impact is in range.
    const std::vector<session_annotation> plus_one{
        one_fall_session(0, 100, 150, 151, 1000)};
    EXPECT_EQ(evaluate_stream({}, plus_one, default_config()).fall_events, 1u);
}

TEST(StreamEvalTest, GraceWindowIsClampedBeforeTheNextInstanceOnset) {
    // Loop of 60 samples, onset 10, impact 50: the 0.5 s grace would run
    // to sample 100, but the next loop's onset is 70 — a trigger at 80
    // must credit the *second* instance (pre-impact at 110), not linger
    // on the first.
    const std::vector<session_annotation> sessions{one_fall_session(0, 10, 50, 180, 60)};
    const std::vector<stream_trigger> triggers{{0, 80}};
    const stream_eval_report r = evaluate_stream(triggers, sessions, default_config());
    EXPECT_EQ(r.fall_events, 3u);  // impacts at 50, 110, 170 all ingested
    EXPECT_EQ(r.falls_detected, 1u);
    EXPECT_EQ(r.falls_missed, 2u);  // first and third instances go unclaimed
    EXPECT_EQ(r.false_alarms, 0u);
    EXPECT_DOUBLE_EQ(r.mean_lead_ms, 300.0);  // 110 - 80 = 30 samples
}

TEST(StreamEvalTest, UnannotatedSessionTriggersAreIgnoredNotFalseAlarms) {
    const std::vector<session_annotation> sessions{one_fall_session(3, 100, 150, 1000)};
    const std::vector<stream_trigger> triggers{{1, 40}, {3, 120}, {9, 700}};
    const stream_eval_report r = evaluate_stream(triggers, sessions, default_config());
    EXPECT_EQ(r.triggers, 1u);  // only session 3's firing is consumed
    EXPECT_EQ(r.falls_detected, 1u);
    EXPECT_EQ(r.false_alarms, 0u);
}

TEST(StreamEvalTest, EmptyFallsAnnotationCountsEveryTriggerAsFalseAlarm) {
    session_annotation adl;
    adl.session = 0;
    adl.samples_ingested = 360000;  // exactly one hour at 100 Hz
    const std::vector<session_annotation> sessions{adl};
    const std::vector<stream_trigger> triggers{{0, 10}, {0, 500}, {0, 9999}};
    const stream_eval_report r = evaluate_stream(triggers, sessions, default_config());
    EXPECT_EQ(r.false_alarms, 3u);
    EXPECT_DOUBLE_EQ(r.stream_hours, 1.0);
    EXPECT_DOUBLE_EQ(r.false_alarms_per_hour, 3.0);
}

TEST(StreamEvalTest, InputOrderDoesNotChangeTheReport) {
    const std::vector<session_annotation> forward{one_fall_session(0, 100, 150, 1000),
                                                  one_fall_session(1, 30, 90, 800)};
    const std::vector<session_annotation> reversed{forward[1], forward[0]};
    const std::vector<stream_trigger> shuffled{{1, 400}, {0, 120}, {1, 60}, {0, 900}};
    const std::vector<stream_trigger> sorted{{0, 120}, {0, 900}, {1, 60}, {1, 400}};
    EXPECT_EQ(evaluate_stream(shuffled, reversed, default_config()).summary(),
              evaluate_stream(sorted, forward, default_config()).summary());
}

TEST(StreamEvalTest, SummaryListsEveryCostRatioInOrder) {
    stream_eval_config config;
    config.cost_ratios = {2.0, 8.0};
    const std::vector<session_annotation> sessions{one_fall_session(0, 100, 150, 1000)};
    const std::string s = evaluate_stream({}, sessions, config).summary();
    const auto first = s.find("eval_cost_ratio_2: 2");
    const auto second = s.find("eval_cost_ratio_8: 8");
    EXPECT_NE(first, std::string::npos) << s;
    EXPECT_NE(second, std::string::npos) << s;
    EXPECT_LT(first, second);
}

TEST(StreamEvalTest, RejectsMalformedAnnotationsAndConfig) {
    std::vector<session_annotation> bad{one_fall_session(0, 150, 150, 1000)};
    EXPECT_THROW(evaluate_stream({}, bad, default_config()), invariant_error);

    std::vector<session_annotation> overlapping{one_fall_session(0, 100, 150, 1000)};
    overlapping[0].falls.push_back({140, 300});  // onset before previous impact
    EXPECT_THROW(evaluate_stream({}, overlapping, default_config()), invariant_error);

    std::vector<session_annotation> outside{one_fall_session(0, 100, 150, 1000, 120)};
    EXPECT_THROW(evaluate_stream({}, outside, default_config()), invariant_error);

    const std::vector<session_annotation> dup{one_fall_session(4, 100, 150, 1000),
                                              one_fall_session(4, 10, 20, 100)};
    EXPECT_THROW(evaluate_stream({}, dup, default_config()), invariant_error);

    const std::vector<session_annotation> ok{one_fall_session(0, 100, 150, 1000)};
    stream_eval_config bad_rate;
    bad_rate.sample_rate_hz = 0.0;
    EXPECT_THROW(evaluate_stream({}, ok, bad_rate), std::invalid_argument);
    stream_eval_config no_grid;
    no_grid.cost_ratios.clear();
    EXPECT_THROW(evaluate_stream({}, ok, no_grid), std::invalid_argument);
    stream_eval_config bad_grace;
    bad_grace.detection_grace_s = -0.1;
    EXPECT_THROW(evaluate_stream({}, ok, bad_grace), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::eval
