#include "eval/eval.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace fallsense::eval {
namespace {

std::vector<int> make_subjects(int n) {
    std::vector<int> ids(n);
    for (int i = 0; i < n; ++i) ids[i] = 100 + i;
    return ids;
}

TEST(KfoldTest, ProducesKSplits) {
    const auto splits = make_subject_folds(make_subjects(20), kfold_config{});
    EXPECT_EQ(splits.size(), 5u);
}

TEST(KfoldTest, SplitsAreDisjointWithinEachFold) {
    const auto splits = make_subject_folds(make_subjects(20), kfold_config{});
    for (const fold_split& s : splits) {
        std::set<int> all;
        for (const int id : s.train_subjects) EXPECT_TRUE(all.insert(id).second);
        for (const int id : s.validation_subjects) EXPECT_TRUE(all.insert(id).second);
        for (const int id : s.test_subjects) EXPECT_TRUE(all.insert(id).second);
        EXPECT_EQ(all.size(), 20u);  // every subject appears exactly once
    }
}

TEST(KfoldTest, EverySubjectTestedExactlyOnce) {
    const auto splits = make_subject_folds(make_subjects(23), kfold_config{});
    std::multiset<int> tested;
    for (const fold_split& s : splits) {
        tested.insert(s.test_subjects.begin(), s.test_subjects.end());
    }
    EXPECT_EQ(tested.size(), 23u);
    for (const int id : make_subjects(23)) EXPECT_EQ(tested.count(id), 1u);
}

TEST(KfoldTest, FoldSizesBalanced) {
    const auto splits = make_subject_folds(make_subjects(23), kfold_config{});
    for (const fold_split& s : splits) {
        EXPECT_GE(s.test_subjects.size(), 4u);
        EXPECT_LE(s.test_subjects.size(), 5u);
    }
}

TEST(KfoldTest, ValidationSubjectCountRespected) {
    kfold_config cfg;
    cfg.validation_subjects = 4;
    const auto splits = make_subject_folds(make_subjects(61), cfg);
    for (const fold_split& s : splits) {
        EXPECT_EQ(s.validation_subjects.size(), 4u);
    }
}

TEST(KfoldTest, PaperConfiguration) {
    // 61 subjects, 5 folds: test folds of 12-13 subjects, 4 validation.
    kfold_config cfg;
    cfg.folds = 5;
    cfg.validation_subjects = 4;
    const auto splits = make_subject_folds(make_subjects(61), cfg);
    ASSERT_EQ(splits.size(), 5u);
    for (const fold_split& s : splits) {
        EXPECT_GE(s.test_subjects.size(), 12u);
        EXPECT_LE(s.test_subjects.size(), 13u);
        EXPECT_EQ(s.validation_subjects.size(), 4u);
        EXPECT_EQ(s.train_subjects.size(),
                  61u - s.test_subjects.size() - s.validation_subjects.size());
    }
}

TEST(KfoldTest, DeterministicForSeed) {
    kfold_config cfg;
    const auto a = make_subject_folds(make_subjects(15), cfg);
    const auto b = make_subject_folds(make_subjects(15), cfg);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].test_subjects, b[i].test_subjects);
        EXPECT_EQ(a[i].train_subjects, b[i].train_subjects);
    }
}

TEST(KfoldTest, SeedChangesAssignment) {
    kfold_config a_cfg;
    a_cfg.shuffle_seed = 1;
    kfold_config b_cfg;
    b_cfg.shuffle_seed = 2;
    const auto a = make_subject_folds(make_subjects(20), a_cfg);
    const auto b = make_subject_folds(make_subjects(20), b_cfg);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].test_subjects != b[i].test_subjects) any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(KfoldTest, DuplicateSubjectIdsDeduplicated) {
    std::vector<int> ids{1, 2, 3, 4, 5, 6, 1, 2};
    kfold_config cfg;
    cfg.folds = 3;
    cfg.validation_subjects = 1;
    const auto splits = make_subject_folds(ids, cfg);
    std::multiset<int> tested;
    for (const fold_split& s : splits) {
        tested.insert(s.test_subjects.begin(), s.test_subjects.end());
    }
    EXPECT_EQ(tested.size(), 6u);
}

TEST(KfoldTest, Validation) {
    kfold_config cfg;
    cfg.folds = 1;
    EXPECT_THROW(make_subject_folds(make_subjects(10), cfg), std::invalid_argument);
    kfold_config cfg2;
    cfg2.folds = 5;
    EXPECT_THROW(make_subject_folds(make_subjects(4), cfg2), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::eval
