// Property sweeps over the event-level analysis: invariants that must hold
// for ANY scored segment set, checked on randomized inputs.
#include <gtest/gtest.h>

#include "eval/eval.hpp"
#include "util/rng.hpp"

namespace fallsense::eval {
namespace {

std::vector<segment_record> random_records(std::uint64_t seed, std::size_t n) {
    util::rng gen(seed);
    std::vector<segment_record> records;
    records.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        segment_record r;
        r.subject_id = static_cast<int>(gen.uniform_int(1, 6));
        r.task_id = static_cast<int>(gen.uniform_int(1, 44));
        r.trial_index = 0;
        // Trial identity must be consistent: derive fall-ness from task id
        // via the taxonomy convention (20-34, 37-42 are falls).
        const int t = r.task_id;
        r.trial_is_fall = (t >= 20 && t <= 34) || (t >= 37 && t <= 42);
        r.label = (r.trial_is_fall && gen.bernoulli(0.4)) ? 1.0f : 0.0f;
        r.probability = static_cast<float>(gen.uniform());
        records.push_back(r);
    }
    return records;
}

class EventsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventsProperty, DetectionsAndAlarmsMonotoneInThreshold) {
    const auto records = random_records(GetParam(), 600);
    std::size_t prev_detected = SIZE_MAX, prev_false = SIZE_MAX;
    for (double threshold = 0.1; threshold < 1.0; threshold += 0.1) {
        const event_counts c = count_events(records, threshold);
        // Raising the threshold can only reduce firings of both kinds.
        EXPECT_LE(c.falls_detected, prev_detected);
        EXPECT_LE(c.adl_false_alarms, prev_false);
        prev_detected = c.falls_detected;
        prev_false = c.adl_false_alarms;
    }
}

TEST_P(EventsProperty, TotalsIndependentOfThreshold) {
    const auto records = random_records(GetParam(), 400);
    const event_counts low = count_events(records, 0.05);
    const event_counts high = count_events(records, 0.95);
    EXPECT_EQ(low.falls_total, high.falls_total);
    EXPECT_EQ(low.adl_total, high.adl_total);
}

TEST_P(EventsProperty, AnalysisAveragesConsistentWithCounts) {
    const auto records = random_records(GetParam(), 500);
    const double threshold = 0.5;
    const event_analysis a = analyze_events(records, threshold);
    const event_counts c = count_events(records, threshold);
    const double expected_miss =
        c.falls_total ? 100.0 * static_cast<double>(c.falls_total - c.falls_detected) /
                            static_cast<double>(c.falls_total)
                      : 0.0;
    EXPECT_NEAR(a.fall_miss_percent_avg, expected_miss, 1e-9);
    const double expected_fp =
        c.adl_total ? 100.0 * static_cast<double>(c.adl_false_alarms) /
                          static_cast<double>(c.adl_total)
                    : 0.0;
    EXPECT_NEAR(a.adl_false_percent_avg, expected_fp, 1e-9);
}

TEST_P(EventsProperty, PerTaskEventsSumToTotals) {
    const auto records = random_records(GetParam(), 500);
    const event_analysis a = analyze_events(records, 0.5);
    const event_counts c = count_events(records, 0.5);
    std::size_t fall_events = 0;
    for (const task_event_stats& s : a.fall_misses) fall_events += s.events;
    std::size_t adl_events = 0;
    for (const task_event_stats& s : a.adl_false_alarms) adl_events += s.events;
    EXPECT_EQ(fall_events, c.falls_total);
    EXPECT_EQ(adl_events, c.adl_total);
}

TEST_P(EventsProperty, RedGreenPartitionCoversAdlAverage) {
    // The overall ADL false rate must lie between the red and green rates
    // (it is their event-weighted mean).
    const auto records = random_records(GetParam(), 800);
    const event_analysis a = analyze_events(records, 0.3);
    const double lo = std::min(a.red_adl_false_percent, a.green_adl_false_percent);
    const double hi = std::max(a.red_adl_false_percent, a.green_adl_false_percent);
    EXPECT_GE(a.adl_false_percent_avg, lo - 1e-9);
    EXPECT_LE(a.adl_false_percent_avg, hi + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventsProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                             return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace fallsense::eval
