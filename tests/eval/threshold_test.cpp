#include "eval/eval.hpp"

#include <gtest/gtest.h>

namespace fallsense::eval {
namespace {

segment_record seg(int subject, int task, bool is_fall, float label, float prob) {
    segment_record r;
    r.subject_id = subject;
    r.task_id = task;
    r.trial_index = 0;
    r.trial_is_fall = is_fall;
    r.label = label;
    r.probability = prob;
    return r;
}

TEST(ThresholdTest, PicksThresholdMeetingFalseBudget) {
    std::vector<segment_record> records;
    // 10 falls whose windows score 0.6.
    for (int s = 0; s < 10; ++s) records.push_back(seg(s, 30, true, 1.0f, 0.6f));
    // 10 ADLs: one scores 0.4 (false alarm below 0.4-ish thresholds).
    for (int s = 0; s < 10; ++s) {
        records.push_back(seg(s, 6, false, 0.0f, s == 0 ? 0.4f : 0.05f));
    }
    const threshold_selection sel = select_threshold_for_precision(records, 0.05);
    // Any threshold in (0.4, 0.6] detects all falls with zero false alarms.
    EXPECT_GT(sel.threshold, 0.4);
    EXPECT_LE(sel.threshold, 0.6);
    EXPECT_DOUBLE_EQ(sel.fall_detection_rate, 1.0);
    EXPECT_LE(sel.adl_false_rate, 0.05);
}

TEST(ThresholdTest, PrefersDetectionAmongQualifying) {
    std::vector<segment_record> records;
    // Two falls at different confidence; one ADL always quiet.
    records.push_back(seg(1, 30, true, 1.0f, 0.3f));
    records.push_back(seg(2, 30, true, 1.0f, 0.8f));
    records.push_back(seg(1, 6, false, 0.0f, 0.05f));
    const threshold_selection sel = select_threshold_for_precision(records, 0.5);
    // Low thresholds catch both falls and still meet the (loose) budget.
    EXPECT_LE(sel.threshold, 0.3);
    EXPECT_DOUBLE_EQ(sel.fall_detection_rate, 1.0);
}

TEST(ThresholdTest, FallbackWhenNothingQualifies) {
    std::vector<segment_record> records;
    // An ADL that fires at any threshold below 0.95.
    records.push_back(seg(1, 6, false, 0.0f, 0.95f));
    records.push_back(seg(1, 30, true, 1.0f, 0.5f));
    const threshold_selection sel = select_threshold_for_precision(records, 0.0, 9);
    // No scanned threshold reaches zero false alarms (max scan = 0.9);
    // the fallback picks the minimum-false-rate threshold anyway.
    EXPECT_GT(sel.threshold, 0.0);
}

TEST(ThresholdTest, Validation) {
    EXPECT_THROW(select_threshold_for_precision({}, 0.05), std::invalid_argument);
    const std::vector<segment_record> one{seg(1, 6, false, 0.0f, 0.1f)};
    EXPECT_THROW(select_threshold_for_precision(one, 1.5), std::invalid_argument);
    EXPECT_THROW(select_threshold_for_precision(one, 0.5, 0), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::eval
