#include "eval/eval.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fallsense::eval {
namespace {

TEST(ConfusionTest, CountsCells) {
    const std::vector<float> probs{0.9f, 0.2f, 0.8f, 0.1f};
    const std::vector<float> labels{1.0f, 1.0f, 0.0f, 0.0f};
    const confusion_matrix cm = make_confusion(probs, labels);
    EXPECT_EQ(cm.true_positive, 1u);
    EXPECT_EQ(cm.false_negative, 1u);
    EXPECT_EQ(cm.false_positive, 1u);
    EXPECT_EQ(cm.true_negative, 1u);
    EXPECT_EQ(cm.total(), 4u);
}

TEST(ConfusionTest, ThresholdShiftsDecisions) {
    const std::vector<float> probs{0.6f};
    const std::vector<float> labels{1.0f};
    EXPECT_EQ(make_confusion(probs, labels, 0.5).true_positive, 1u);
    EXPECT_EQ(make_confusion(probs, labels, 0.7).false_negative, 1u);
}

TEST(ConfusionTest, SizeMismatchThrows) {
    const std::vector<float> probs{0.5f};
    const std::vector<float> labels{1.0f, 0.0f};
    EXPECT_THROW(make_confusion(probs, labels), std::invalid_argument);
}

TEST(MetricsTest, PerfectClassifier) {
    confusion_matrix cm;
    cm.true_positive = 10;
    cm.true_negative = 90;
    EXPECT_DOUBLE_EQ(accuracy(cm), 1.0);
    EXPECT_DOUBLE_EQ(precision(cm), 1.0);
    EXPECT_DOUBLE_EQ(recall(cm), 1.0);
    EXPECT_DOUBLE_EQ(f1_score(cm), 1.0);
    EXPECT_DOUBLE_EQ(macro_f1(cm), 1.0);
}

TEST(MetricsTest, KnownHandComputedCase) {
    confusion_matrix cm;
    cm.true_positive = 8;
    cm.false_positive = 2;
    cm.false_negative = 4;
    cm.true_negative = 86;
    EXPECT_DOUBLE_EQ(accuracy(cm), 0.94);
    EXPECT_DOUBLE_EQ(precision(cm), 0.8);
    EXPECT_NEAR(recall(cm), 8.0 / 12.0, 1e-12);
    EXPECT_NEAR(f1_score(cm), 2.0 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0), 1e-12);
}

TEST(MetricsTest, DegenerateNoPredictedPositives) {
    confusion_matrix cm;
    cm.false_negative = 5;
    cm.true_negative = 95;
    EXPECT_DOUBLE_EQ(precision(cm), 0.0);
    EXPECT_DOUBLE_EQ(recall(cm), 0.0);
    EXPECT_DOUBLE_EQ(f1_score(cm), 0.0);
}

TEST(MetricsTest, MacroMetricsOfAllNegativePredictor) {
    // The Table III MLP pattern: predicting everything negative on a 96/4
    // imbalanced set gives high accuracy but macro recall exactly 0.5.
    confusion_matrix cm;
    cm.false_negative = 4;
    cm.true_negative = 96;
    EXPECT_DOUBLE_EQ(accuracy(cm), 0.96);
    EXPECT_DOUBLE_EQ(macro_recall(cm), 0.5);
    EXPECT_NEAR(macro_precision(cm), 0.5 * (0.0 + 0.96), 1e-12);
}

TEST(MetricsTest, MacroAveragesBothClasses) {
    confusion_matrix cm;
    cm.true_positive = 10;
    cm.false_positive = 10;
    cm.true_negative = 70;
    cm.false_negative = 10;
    const double pos_p = 0.5;
    const double neg_p = 70.0 / 80.0;
    EXPECT_NEAR(macro_precision(cm), 0.5 * (pos_p + neg_p), 1e-12);
}

TEST(MetricsTest, AccumulateMatrices) {
    confusion_matrix a;
    a.true_positive = 1;
    confusion_matrix b;
    b.false_negative = 2;
    a += b;
    EXPECT_EQ(a.true_positive, 1u);
    EXPECT_EQ(a.false_negative, 2u);
}

TEST(EvaluateTest, ReportFieldsConsistent) {
    const std::vector<float> probs{0.9f, 0.8f, 0.2f, 0.4f, 0.7f};
    const std::vector<float> labels{1.0f, 1.0f, 0.0f, 0.0f, 0.0f};
    const classification_report r = evaluate(probs, labels);
    EXPECT_DOUBLE_EQ(r.accuracy, accuracy(r.cm));
    EXPECT_DOUBLE_EQ(r.precision, macro_precision(r.cm));
    EXPECT_DOUBLE_EQ(r.recall, macro_recall(r.cm));
    EXPECT_DOUBLE_EQ(r.f1, macro_f1(r.cm));
}

TEST(EvaluateTest, ToStringFormatsPercentages) {
    const std::vector<float> probs{0.9f, 0.1f};
    const std::vector<float> labels{1.0f, 0.0f};
    const std::string s = to_string(evaluate(probs, labels));
    EXPECT_NE(s.find("acc=100.00"), std::string::npos);
}

TEST(MetricsTest, EmptyInputIsAllZero) {
    const confusion_matrix cm = make_confusion({}, {});
    EXPECT_DOUBLE_EQ(accuracy(cm), 0.0);
    EXPECT_DOUBLE_EQ(macro_f1(cm), 0.0);
}

}  // namespace
}  // namespace fallsense::eval
