#include "eval/eval.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

namespace fallsense::eval {
namespace {

// A small fleet of trials: two fall trials (one caught, one missed) and
// one ADL trial with a false-alarm window.
std::vector<segment_record> sample_records() {
    std::vector<segment_record> records;
    // Fall trial, detected: a high-probability falling window.
    records.push_back({1, 30, 0, true, 1.0f, 0.9f});
    records.push_back({1, 30, 0, true, 0.0f, 0.2f});
    // Fall trial, missed: probabilities stay under every threshold used.
    records.push_back({2, 31, 0, true, 1.0f, 0.1f});
    records.push_back({2, 31, 0, true, 0.0f, 0.05f});
    // ADL trial, false alarm.
    records.push_back({3, 15, 0, false, 0.0f, 0.8f});
    records.push_back({3, 15, 0, false, 0.0f, 0.3f});
    return records;
}

TEST(EvaluatorTest, KindNamesRoundTrip) {
    for (const evaluator_kind kind :
         {evaluator_kind::per_window, evaluator_kind::event_stream,
          evaluator_kind::cost_sensitive}) {
        const auto parsed = parse_evaluator_kind(evaluator_kind_name(kind));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, kind);
    }
    EXPECT_FALSE(parse_evaluator_kind("per-window").has_value());
    EXPECT_FALSE(parse_evaluator_kind("").has_value());
}

TEST(EvaluatorTest, PerWindowMatchesTheDirectEvalFunctions) {
    const std::vector<segment_record> records = sample_records();
    evaluator_spec spec;
    spec.kind = evaluator_kind::per_window;
    spec.threshold = 0.5;
    const std::unique_ptr<evaluator> ev = make_evaluator(spec);
    ev->add_segments(records);
    const evaluation_report report = ev->finish();

    ASSERT_TRUE(report.classification.has_value());
    ASSERT_TRUE(report.events.has_value());
    ASSERT_TRUE(report.counts.has_value());
    EXPECT_FALSE(report.stream.has_value());

    std::vector<float> probs, labels;
    for (const segment_record& r : records) {
        probs.push_back(r.probability);
        labels.push_back(r.label);
    }
    const classification_report direct = evaluate(probs, labels, 0.5);
    EXPECT_DOUBLE_EQ(report.classification->accuracy, direct.accuracy);
    EXPECT_DOUBLE_EQ(report.classification->f1, direct.f1);

    const event_counts counts = count_events(records, 0.5);
    EXPECT_EQ(report.counts->falls_detected, counts.falls_detected);
    EXPECT_EQ(report.counts->falls_total, counts.falls_total);
    EXPECT_EQ(report.counts->adl_false_alarms, counts.adl_false_alarms);
    EXPECT_EQ(report.counts->falls_detected, 1u);
    EXPECT_EQ(report.counts->falls_total, 2u);
    EXPECT_EQ(report.counts->adl_false_alarms, 1u);
}

TEST(EvaluatorTest, StreamKindsMatchEvaluateStreamAndDifferOnlyInCostCurve) {
    std::vector<session_annotation> sessions(1);
    sessions[0].session = 0;
    sessions[0].samples_ingested = 5000;
    sessions[0].falls.push_back({100, 160});
    const std::vector<stream_trigger> triggers{{0, 130}, {0, 3000}};

    evaluator_spec spec;
    spec.kind = evaluator_kind::cost_sensitive;
    const std::unique_ptr<evaluator> cost_ev = make_evaluator(spec);
    cost_ev->add_stream(triggers, sessions);
    const evaluation_report cost_report = cost_ev->finish();
    ASSERT_TRUE(cost_report.stream.has_value());
    EXPECT_FALSE(cost_report.classification.has_value());

    const stream_eval_report direct = evaluate_stream(triggers, sessions, spec.stream);
    EXPECT_EQ(cost_report.stream->summary(), direct.summary());
    EXPECT_EQ(cost_report.stream->cost_curve.size(), spec.stream.cost_ratios.size());

    spec.kind = evaluator_kind::event_stream;
    const std::unique_ptr<evaluator> event_ev = make_evaluator(spec);
    event_ev->add_stream(triggers, sessions);
    const evaluation_report event_report = event_ev->finish();
    ASSERT_TRUE(event_report.stream.has_value());
    EXPECT_TRUE(event_report.stream->cost_curve.empty());
    EXPECT_EQ(event_report.stream->falls_detected, cost_report.stream->falls_detected);
    EXPECT_EQ(event_report.stream->false_alarms, cost_report.stream->false_alarms);
}

TEST(EvaluatorTest, StreamAndPerWindowParadigmsAgreeOnCleanFalls) {
    // Clean, well-separated fall trials: both evaluation paradigms must
    // count the same detections.  Per-window sees one record per window;
    // the stream view sees one trigger per above-threshold window at the
    // matching sample tick.
    const double threshold = 0.5;
    std::vector<segment_record> records;
    std::vector<session_annotation> sessions;
    std::vector<stream_trigger> triggers;
    // Three single-fall sessions; the third stays under threshold.
    const float peaks[] = {0.9f, 0.8f, 0.2f};
    for (std::uint32_t i = 0; i < 3; ++i) {
        records.push_back({static_cast<int>(i + 1), 30, 0, true, 1.0f, peaks[i]});
        records.push_back({static_cast<int>(i + 1), 30, 0, true, 0.0f, 0.1f});
        session_annotation s;
        s.session = i;
        s.samples_ingested = 2000;
        s.falls.push_back({400, 500});
        sessions.push_back(std::move(s));
        if (peaks[i] > threshold) triggers.push_back({i, 450});
    }

    evaluator_spec window_spec;
    window_spec.threshold = threshold;
    const std::unique_ptr<evaluator> window_ev = make_evaluator(window_spec);
    window_ev->add_segments(records);
    const event_counts counts = *window_ev->finish().counts;

    evaluator_spec stream_spec;
    stream_spec.kind = evaluator_kind::event_stream;
    const std::unique_ptr<evaluator> stream_ev = make_evaluator(stream_spec);
    stream_ev->add_stream(triggers, sessions);
    const stream_eval_report stream = *stream_ev->finish().stream;

    EXPECT_EQ(counts.falls_total, 3u);
    EXPECT_EQ(stream.fall_events, counts.falls_total);
    EXPECT_EQ(stream.falls_detected, counts.falls_detected);
    EXPECT_EQ(stream.falls_missed, counts.falls_total - counts.falls_detected);
    EXPECT_EQ(stream.false_alarms, 0u);
}

TEST(EvaluatorTest, AccumulatesAcrossMultipleFeeds) {
    evaluator_spec spec;
    spec.kind = evaluator_kind::cost_sensitive;
    const std::unique_ptr<evaluator> ev = make_evaluator(spec);

    std::vector<session_annotation> first(1), second(1);
    first[0] = {0, 0, 2000, {{100, 160}}};
    second[0] = {1, 0, 2000, {{300, 380}}};
    ev->add_stream(std::vector<stream_trigger>{{0, 140}}, first);
    ev->add_stream(std::vector<stream_trigger>{{1, 350}}, second);
    const evaluation_report report = ev->finish();
    ASSERT_TRUE(report.stream.has_value());
    EXPECT_EQ(report.stream->sessions, 2u);
    EXPECT_EQ(report.stream->falls_detected, 2u);
}

TEST(EvaluatorTest, WrongInputKindAndDoubleFinishThrow) {
    evaluator_spec per_window;
    const std::unique_ptr<evaluator> pw = make_evaluator(per_window);
    EXPECT_THROW(pw->add_stream({}, {}), std::invalid_argument);
    pw->add_segments(sample_records());
    (void)pw->finish();
    EXPECT_THROW((void)pw->finish(), std::invalid_argument);
    EXPECT_THROW(pw->add_segments(sample_records()), std::invalid_argument);

    evaluator_spec streaming;
    streaming.kind = evaluator_kind::event_stream;
    const std::unique_ptr<evaluator> st = make_evaluator(streaming);
    EXPECT_THROW(st->add_segments(sample_records()), std::invalid_argument);
}

TEST(EvaluatorTest, RejectsUnusableSpecs) {
    evaluator_spec bad_threshold;
    bad_threshold.threshold = 1.5;
    EXPECT_THROW(make_evaluator(bad_threshold), std::invalid_argument);

    evaluator_spec bad_rate;
    bad_rate.kind = evaluator_kind::event_stream;
    bad_rate.stream.sample_rate_hz = 0.0;
    EXPECT_THROW(make_evaluator(bad_rate), std::invalid_argument);

    evaluator_spec no_grid;
    no_grid.kind = evaluator_kind::cost_sensitive;
    no_grid.stream.cost_ratios.clear();
    EXPECT_THROW(make_evaluator(no_grid), std::invalid_argument);
}

TEST(EvaluatorTest, DescribeNamesTheConfiguredKind) {
    evaluator_spec spec;
    spec.threshold = 0.65;
    EXPECT_NE(make_evaluator(spec)->describe().find("per_window"), std::string::npos);
    spec.kind = evaluator_kind::cost_sensitive;
    EXPECT_NE(make_evaluator(spec)->describe().find("cost_sensitive"),
              std::string::npos);
}

}  // namespace
}  // namespace fallsense::eval
