#include "eval/eval.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fallsense::eval {
namespace {

TEST(RocTest, PerfectSeparationGivesAucOne) {
    const std::vector<float> probs{0.9f, 0.8f, 0.2f, 0.1f};
    const std::vector<float> labels{1.0f, 1.0f, 0.0f, 0.0f};
    EXPECT_DOUBLE_EQ(roc_auc(probs, labels), 1.0);
}

TEST(RocTest, InvertedScoresGiveAucZero) {
    const std::vector<float> probs{0.1f, 0.2f, 0.8f, 0.9f};
    const std::vector<float> labels{1.0f, 1.0f, 0.0f, 0.0f};
    EXPECT_DOUBLE_EQ(roc_auc(probs, labels), 0.0);
}

TEST(RocTest, RandomScoresNearHalf) {
    util::rng gen(1);
    std::vector<float> probs, labels;
    for (int i = 0; i < 20'000; ++i) {
        probs.push_back(static_cast<float>(gen.uniform()));
        labels.push_back(gen.bernoulli(0.3) ? 1.0f : 0.0f);
    }
    EXPECT_NEAR(roc_auc(probs, labels), 0.5, 0.02);
}

TEST(RocTest, AucEqualsMannWhitneyProbability) {
    // Hand-computable case with a tie.
    const std::vector<float> probs{0.9f, 0.5f, 0.5f, 0.1f};
    const std::vector<float> labels{1.0f, 1.0f, 0.0f, 0.0f};
    // Pairs: (0.9 vs 0.5) win, (0.9 vs 0.1) win, (0.5 vs 0.5) tie=0.5,
    // (0.5 vs 0.1) win -> (3 + 0.5) / 4 = 0.875.
    EXPECT_NEAR(roc_auc(probs, labels), 0.875, 1e-9);
}

TEST(RocTest, CurveEndpointsAndMonotonicity) {
    util::rng gen(2);
    std::vector<float> probs, labels;
    for (int i = 0; i < 500; ++i) {
        const bool pos = gen.bernoulli(0.4);
        probs.push_back(static_cast<float>(
            std::clamp(gen.normal(pos ? 0.7 : 0.3, 0.2), 0.0, 1.0)));
        labels.push_back(pos ? 1.0f : 0.0f);
    }
    const auto curve = roc_curve(probs, labels);
    ASSERT_GE(curve.size(), 2u);
    EXPECT_DOUBLE_EQ(curve.front().true_positive_rate, 0.0);
    EXPECT_DOUBLE_EQ(curve.front().false_positive_rate, 0.0);
    EXPECT_DOUBLE_EQ(curve.back().true_positive_rate, 1.0);
    EXPECT_DOUBLE_EQ(curve.back().false_positive_rate, 1.0);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].true_positive_rate, curve[i - 1].true_positive_rate);
        EXPECT_GE(curve[i].false_positive_rate, curve[i - 1].false_positive_rate);
        EXPECT_LE(curve[i].threshold, curve[i - 1].threshold);
    }
    const double auc = roc_auc(probs, labels);
    EXPECT_GT(auc, 0.8);  // well-separated synthetic scores
}

TEST(PrTest, PerfectRankingGivesApOne) {
    const std::vector<float> probs{0.9f, 0.8f, 0.2f, 0.1f};
    const std::vector<float> labels{1.0f, 1.0f, 0.0f, 0.0f};
    EXPECT_DOUBLE_EQ(average_precision(probs, labels), 1.0);
}

TEST(PrTest, RandomScoresApproachPositiveRate) {
    // For uninformative scores AP converges to the positive prevalence.
    util::rng gen(3);
    std::vector<float> probs, labels;
    for (int i = 0; i < 30'000; ++i) {
        probs.push_back(static_cast<float>(gen.uniform()));
        labels.push_back(gen.bernoulli(0.2) ? 1.0f : 0.0f);
    }
    EXPECT_NEAR(average_precision(probs, labels), 0.2, 0.02);
}

TEST(PrTest, HandComputedCase) {
    // Ranked: P(0.9), N(0.8), P(0.7). AP = 1.0*(1/2) + (2/3)*(1/2) = 0.8333.
    const std::vector<float> probs{0.9f, 0.8f, 0.7f};
    const std::vector<float> labels{1.0f, 0.0f, 1.0f};
    EXPECT_NEAR(average_precision(probs, labels), 1.0 / 2.0 + (2.0 / 3.0) / 2.0, 1e-9);
}

TEST(PrTest, CurveRecallMonotoneAndEndsAtOne) {
    util::rng gen(4);
    std::vector<float> probs, labels;
    for (int i = 0; i < 400; ++i) {
        const bool pos = gen.bernoulli(0.3);
        probs.push_back(static_cast<float>(
            std::clamp(gen.normal(pos ? 0.65 : 0.35, 0.2), 0.0, 1.0)));
        labels.push_back(pos ? 1.0f : 0.0f);
    }
    const auto curve = pr_curve(probs, labels);
    ASSERT_FALSE(curve.empty());
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].recall, curve[i - 1].recall);
    }
    EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
    for (const pr_point& p : curve) {
        EXPECT_GE(p.precision, 0.0);
        EXPECT_LE(p.precision, 1.0);
    }
}

TEST(PrTest, Validation) {
    const std::vector<float> probs{0.5f, 0.6f};
    const std::vector<float> all_neg{0.0f, 0.0f};
    EXPECT_THROW(average_precision(probs, all_neg), std::invalid_argument);
}

TEST(RocTest, Validation) {
    const std::vector<float> probs{0.5f};
    const std::vector<float> one_class{1.0f};
    EXPECT_THROW(roc_auc(probs, one_class), std::invalid_argument);
    EXPECT_THROW(roc_auc({}, {}), std::invalid_argument);
    const std::vector<float> mismatched{0.5f, 0.6f};
    const std::vector<float> labels{1.0f};
    EXPECT_THROW(roc_auc(mismatched, labels), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::eval
