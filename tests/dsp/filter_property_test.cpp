// Property sweep over Butterworth designs: for every (order, cutoff) pair
// the digital filter must keep the defining Butterworth properties — unity
// DC gain, -3 dB at the cutoff, monotone magnitude, and stability under a
// long noisy input.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/biquad.hpp"
#include "util/rng.hpp"

namespace fallsense::dsp {
namespace {

struct design_params {
    std::size_t order;
    double cutoff_hz;
    double sample_rate_hz;
};

class ButterworthProperty : public ::testing::TestWithParam<design_params> {};

TEST_P(ButterworthProperty, UnityDcGain) {
    const auto [order, fc, fs] = GetParam();
    const butterworth_lowpass filter(order, fc, fs);
    EXPECT_NEAR(filter.magnitude_at(0.0), 1.0, 1e-9);
}

TEST_P(ButterworthProperty, Minus3dBAtCutoff) {
    const auto [order, fc, fs] = GetParam();
    const butterworth_lowpass filter(order, fc, fs);
    EXPECT_NEAR(filter.magnitude_at(fc), 1.0 / std::sqrt(2.0), 0.03);
}

TEST_P(ButterworthProperty, MonotoneMagnitude) {
    const auto [order, fc, fs] = GetParam();
    const butterworth_lowpass filter(order, fc, fs);
    double prev = filter.magnitude_at(fs * 0.001);
    for (double f = fs * 0.01; f < fs * 0.49; f += fs * 0.01) {
        const double mag = filter.magnitude_at(f);
        EXPECT_LE(mag, prev + 1e-9) << "at " << f << " Hz";
        prev = mag;
    }
}

TEST_P(ButterworthProperty, StableUnderNoise) {
    const auto [order, fc, fs] = GetParam();
    butterworth_lowpass filter(order, fc, fs);
    util::rng gen(order * 1000 + static_cast<std::uint64_t>(fc));
    double max_abs = 0.0;
    for (int i = 0; i < 20'000; ++i) {
        const float y = filter.process(static_cast<float>(gen.normal(0.0, 1.0)));
        ASSERT_TRUE(std::isfinite(y));
        max_abs = std::max(max_abs, std::abs(static_cast<double>(y)));
    }
    // A stable low-pass cannot blow up; output stays within a few sigma.
    EXPECT_LT(max_abs, 5.0);
}

TEST_P(ButterworthProperty, PrimeHoldsSteadyState) {
    const auto [order, fc, fs] = GetParam();
    butterworth_lowpass filter(order, fc, fs);
    filter.prime(1.3f);
    for (int i = 0; i < 16; ++i) EXPECT_NEAR(filter.process(1.3f), 1.3f, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, ButterworthProperty,
    ::testing::Values(design_params{2, 5.0, 100.0}, design_params{4, 5.0, 100.0},
                      design_params{6, 5.0, 100.0}, design_params{4, 2.0, 100.0},
                      design_params{4, 10.0, 100.0}, design_params{4, 5.0, 200.0},
                      design_params{8, 20.0, 1000.0}),
    [](const ::testing::TestParamInfo<design_params>& info) {
        return "o" + std::to_string(info.param.order) + "_fc" +
               std::to_string(static_cast<int>(info.param.cutoff_hz)) + "_fs" +
               std::to_string(static_cast<int>(info.param.sample_rate_hz));
    });

}  // namespace
}  // namespace fallsense::dsp
