#include "dsp/fusion.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/units.hpp"

namespace fallsense::dsp {
namespace {

TEST(AccelAttitudeTest, LevelSensorIsZero) {
    const euler_angles a = complementary_filter::accel_attitude({0, 0, 1});
    EXPECT_NEAR(a.pitch, 0.0, 1e-12);
    EXPECT_NEAR(a.roll, 0.0, 1e-12);
}

TEST(AccelAttitudeTest, ForwardPitch) {
    // Pitched forward 90 degrees: gravity appears along -x.
    const euler_angles a = complementary_filter::accel_attitude({-1, 0, 0});
    EXPECT_NEAR(a.pitch, std::numbers::pi / 2.0, 1e-9);
}

TEST(AccelAttitudeTest, RollQuarterTurn) {
    const euler_angles a = complementary_filter::accel_attitude({0, 1, 0});
    EXPECT_NEAR(a.roll, std::numbers::pi / 2.0, 1e-9);
}

TEST(ComplementaryFilterTest, BootstrapsFromFirstSample) {
    complementary_filter f;
    const euler_angles a = f.update({-0.5, 0, std::sqrt(0.75)}, {0, 0, 0});
    EXPECT_NEAR(a.pitch, std::asin(0.5), 1e-6);
}

TEST(ComplementaryFilterTest, ConvergesToStaticAttitude) {
    complementary_filter f;
    // Static sensor pitched 30 degrees, no rotation.
    const double pitch = deg_to_rad(30.0);
    const vec3 accel{-std::sin(pitch), 0.0, std::cos(pitch)};
    euler_angles a;
    for (int i = 0; i < 500; ++i) a = f.update(accel, {0, 0, 0});
    EXPECT_NEAR(a.pitch, pitch, 1e-3);
    EXPECT_NEAR(a.roll, 0.0, 1e-3);
}

TEST(ComplementaryFilterTest, IntegratesGyroDuringRotation) {
    // Rotate in pitch at a constant rate with matching gravity trace: the
    // filter must track the true angle closely.
    fusion_config cfg;
    complementary_filter f(cfg);
    const double rate = deg_to_rad(90.0);  // 90 deg/s about y
    const double dt = 1.0 / cfg.sample_rate_hz;
    double true_pitch = 0.0;
    euler_angles a;
    for (int i = 0; i < 50; ++i) {  // 0.5 s -> 45 degrees
        a = f.update({-std::sin(true_pitch), 0.0, std::cos(true_pitch)}, {0.0, rate, 0.0});
        true_pitch += rate * dt;
    }
    EXPECT_NEAR(a.pitch, true_pitch, deg_to_rad(3.0));
}

TEST(ComplementaryFilterTest, YawIsPureIntegration) {
    fusion_config cfg;
    complementary_filter f(cfg);
    const double rate = deg_to_rad(45.0);
    euler_angles a;
    for (int i = 0; i < 200; ++i) a = f.update({0, 0, 1}, {0, 0, rate});
    // First sample bootstraps (no integration), 199 integration steps.
    EXPECT_NEAR(a.yaw, rate * 199.0 / cfg.sample_rate_hz, 1e-9);
}

TEST(ComplementaryFilterTest, ResetClearsState) {
    complementary_filter f;
    f.update({-1, 0, 0}, {0, 0, 0});
    f.reset();
    EXPECT_NEAR(f.current().pitch, 0.0, 1e-12);
    // After reset the next update bootstraps again.
    const euler_angles a = f.update({0, 0, 1}, {5, 5, 5});
    EXPECT_NEAR(a.pitch, 0.0, 1e-12);
}

TEST(ComplementaryFilterTest, ConfigValidation) {
    fusion_config bad;
    bad.sample_rate_hz = 0.0;
    EXPECT_THROW(complementary_filter{bad}, std::invalid_argument);
    fusion_config bad2;
    bad2.gyro_weight = 1.5;
    EXPECT_THROW(complementary_filter{bad2}, std::invalid_argument);
}

TEST(UnitsTest, Conversions) {
    EXPECT_NEAR(ms2_to_g(9.80665), 1.0, 1e-12);
    EXPECT_NEAR(g_to_ms2(2.0), 19.6133, 1e-4);
    EXPECT_NEAR(deg_to_rad(180.0), std::numbers::pi, 1e-12);
    EXPECT_NEAR(rad_to_deg(std::numbers::pi / 2.0), 90.0, 1e-12);
    EXPECT_NEAR(ms2_to_g(g_to_ms2(3.7)), 3.7, 1e-12);
}

}  // namespace
}  // namespace fallsense::dsp
