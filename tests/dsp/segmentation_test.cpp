#include "dsp/segmentation.hpp"

#include <gtest/gtest.h>

namespace fallsense::dsp {
namespace {

TEST(SegmentationTest, HopFromOverlap) {
    segmentation_config c{40, 0.5};
    EXPECT_EQ(c.hop_samples(), 20u);
    c.overlap_fraction = 0.0;
    EXPECT_EQ(c.hop_samples(), 40u);
    c.overlap_fraction = 0.75;
    EXPECT_EQ(c.hop_samples(), 10u);
}

TEST(SegmentationTest, HopNeverZero) {
    segmentation_config c{2, 0.9};
    EXPECT_GE(c.hop_samples(), 1u);
}

TEST(SegmentationTest, StartsCoverStream) {
    const segmentation_config c{40, 0.5};
    const auto starts = segment_starts(100, c);
    ASSERT_EQ(starts.size(), 4u);  // 0, 20, 40, 60
    EXPECT_EQ(starts.front(), 0u);
    EXPECT_EQ(starts.back(), 60u);
}

TEST(SegmentationTest, AllWindowsFitInStream) {
    const segmentation_config c{30, 0.25};
    for (const std::size_t s : segment_starts(200, c)) {
        EXPECT_LE(s + c.window_samples, 200u);
    }
}

TEST(SegmentationTest, ShortStreamYieldsNothing) {
    const segmentation_config c{40, 0.5};
    EXPECT_TRUE(segment_starts(39, c).empty());
    EXPECT_EQ(segment_count(39, c), 0u);
}

TEST(SegmentationTest, ExactFitYieldsOne) {
    const segmentation_config c{40, 0.5};
    EXPECT_EQ(segment_count(40, c), 1u);
}

TEST(SegmentationTest, ZeroOverlapIsDisjoint) {
    const segmentation_config c{10, 0.0};
    const auto starts = segment_starts(35, c);
    ASSERT_EQ(starts.size(), 3u);
    EXPECT_EQ(starts[1] - starts[0], 10u);
}

TEST(SegmentationTest, MakeSegmentationFromMs) {
    const segmentation_config c = make_segmentation(400.0, 0.5, 100.0);
    EXPECT_EQ(c.window_samples, 40u);
    EXPECT_DOUBLE_EQ(c.overlap_fraction, 0.5);
    const segmentation_config c2 = make_segmentation(200.0, 0.25, 100.0);
    EXPECT_EQ(c2.window_samples, 20u);
}

TEST(SegmentationTest, Validation) {
    segmentation_config bad{0, 0.5};
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    segmentation_config bad2{10, 1.0};
    EXPECT_THROW(bad2.validate(), std::invalid_argument);
    segmentation_config bad3{10, -0.1};
    EXPECT_THROW(bad3.validate(), std::invalid_argument);
    EXPECT_THROW(make_segmentation(-5.0, 0.5, 100.0), std::invalid_argument);
}

// Property sweep: segment counts follow the closed form
// 1 + floor((total - window) / hop) for every config.
struct seg_params {
    std::size_t window;
    double overlap;
    std::size_t total;
};

class SegmentationProperty : public ::testing::TestWithParam<seg_params> {};

TEST_P(SegmentationProperty, CountMatchesClosedForm) {
    const auto [window, overlap, total] = GetParam();
    const segmentation_config c{window, overlap};
    const std::size_t count = segment_count(total, c);
    if (total < window) {
        EXPECT_EQ(count, 0u);
    } else {
        EXPECT_EQ(count, 1 + (total - window) / c.hop_samples());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SegmentationProperty,
    ::testing::Values(seg_params{10, 0.0, 100}, seg_params{10, 0.5, 100},
                      seg_params{20, 0.25, 100}, seg_params{20, 0.75, 101},
                      seg_params{30, 0.5, 29}, seg_params{30, 0.5, 30},
                      seg_params{40, 0.5, 1000}, seg_params{40, 0.75, 999},
                      seg_params{1, 0.0, 5}));

}  // namespace
}  // namespace fallsense::dsp
