#include "dsp/biquad.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace fallsense::dsp {
namespace {

constexpr double k_fs = 100.0;
constexpr double k_fc = 5.0;

std::vector<float> make_sine(double freq_hz, std::size_t n, double fs = k_fs) {
    std::vector<float> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<float>(
            std::sin(2.0 * std::numbers::pi * freq_hz * static_cast<double>(i) / fs));
    }
    return out;
}

double steady_state_amplitude(std::span<const float> signal) {
    double amp = 0.0;
    for (std::size_t i = signal.size() / 2; i < signal.size(); ++i) {
        amp = std::max(amp, std::abs(static_cast<double>(signal[i])));
    }
    return amp;
}

TEST(ButterworthTest, Minus3dBAtCutoff) {
    const butterworth_lowpass filter(4, k_fc, k_fs);
    EXPECT_NEAR(filter.magnitude_at(k_fc), 1.0 / std::sqrt(2.0), 0.02);
}

TEST(ButterworthTest, UnityGainAtDc) {
    const butterworth_lowpass filter(4, k_fc, k_fs);
    EXPECT_NEAR(filter.magnitude_at(0.0), 1.0, 1e-9);
}

TEST(ButterworthTest, MonotonicMagnitude) {
    // Butterworth is maximally flat: |H| must decrease monotonically.
    const butterworth_lowpass filter(4, k_fc, k_fs);
    double prev = filter.magnitude_at(0.1);
    for (double f = 1.0; f <= 45.0; f += 1.0) {
        const double mag = filter.magnitude_at(f);
        EXPECT_LE(mag, prev + 1e-9) << "at " << f << " Hz";
        prev = mag;
    }
}

TEST(ButterworthTest, StopbandRolloff24dBPerOctave) {
    // 4th order: at least -24 dB per octave past the cutoff.  The bilinear
    // transform steepens the response toward Nyquist, so the digital
    // rolloff may exceed the analog 24 dB figure.
    const butterworth_lowpass filter(4, k_fc, k_fs);
    const double m10 = filter.magnitude_at(10.0);
    const double m20 = filter.magnitude_at(20.0);
    const double octave_db = 20.0 * std::log10(m10 / m20);
    EXPECT_GT(octave_db, 22.0);
    EXPECT_LT(octave_db, 34.0);
}

TEST(ButterworthTest, TimeDomainPassesLowFrequency) {
    butterworth_lowpass filter(4, k_fc, k_fs);
    std::vector<float> sine = make_sine(1.0, 600);
    filter.process_inplace(sine);
    EXPECT_NEAR(steady_state_amplitude(sine), 1.0, 0.05);
}

TEST(ButterworthTest, TimeDomainAttenuatesHighFrequency) {
    butterworth_lowpass filter(4, k_fc, k_fs);
    std::vector<float> sine = make_sine(25.0, 600);
    filter.process_inplace(sine);
    EXPECT_LT(steady_state_amplitude(sine), 0.01);
}

TEST(ButterworthTest, StepResponseSettlesToOne) {
    butterworth_lowpass filter(4, k_fc, k_fs);
    float y = 0.0f;
    for (int i = 0; i < 400; ++i) y = filter.process(1.0f);
    EXPECT_NEAR(y, 1.0f, 1e-3);
}

TEST(ButterworthTest, ResetClearsState) {
    butterworth_lowpass filter(4, k_fc, k_fs);
    for (int i = 0; i < 50; ++i) filter.process(1.0f);
    filter.reset();
    // After reset the first output of a zero input must be zero.
    EXPECT_FLOAT_EQ(filter.process(0.0f), 0.0f);
}

TEST(ButterworthTest, PrimeRemovesStartupTransient) {
    butterworth_lowpass filter(4, k_fc, k_fs);
    filter.prime(0.7f);
    // A primed filter fed its steady input stays exactly at steady state.
    for (int i = 0; i < 20; ++i) EXPECT_NEAR(filter.process(0.7f), 0.7f, 1e-6);
}

TEST(BiquadTest, PrimeMatchesConvergedState) {
    biquad a = design_lowpass_biquad(k_fc, k_fs, 0.707);
    biquad b = design_lowpass_biquad(k_fc, k_fs, 0.707);
    for (int i = 0; i < 500; ++i) a.process(2.5f);  // converge the hard way
    b.prime(2.5f);
    // Both must now produce identical outputs for the same next input.
    EXPECT_NEAR(a.process(3.0f), b.process(3.0f), 1e-4);
}

TEST(ButterworthTest, OrderValidation) {
    EXPECT_THROW(butterworth_lowpass(3, k_fc, k_fs), std::invalid_argument);
    EXPECT_THROW(butterworth_lowpass(0, k_fc, k_fs), std::invalid_argument);
    EXPECT_NO_THROW(butterworth_lowpass(2, k_fc, k_fs));
    EXPECT_NO_THROW(butterworth_lowpass(8, k_fc, k_fs));
}

TEST(BiquadDesignTest, RejectsCutoffAboveNyquist) {
    EXPECT_THROW(design_lowpass_biquad(60.0, 100.0, 0.7), std::invalid_argument);
    EXPECT_THROW(design_lowpass_biquad(-1.0, 100.0, 0.7), std::invalid_argument);
    EXPECT_THROW(design_lowpass_biquad(5.0, 100.0, 0.0), std::invalid_argument);
}

TEST(FilterChannelsTest, ChannelsIndependent) {
    // Channel 0: DC. Channel 1: 25 Hz. After filtering, DC survives, the
    // 25 Hz tone dies — with no cross-channel leakage.
    constexpr std::size_t frames = 600;
    std::vector<float> buf(frames * 2);
    const std::vector<float> tone = make_sine(25.0, frames);
    for (std::size_t t = 0; t < frames; ++t) {
        buf[t * 2 + 0] = 1.0f;
        buf[t * 2 + 1] = tone[t];
    }
    filter_channels_inplace(buf, 2, 4, k_fc, k_fs);
    EXPECT_NEAR(buf[(frames - 1) * 2 + 0], 1.0f, 1e-3);
    double ch1_amp = 0.0;
    for (std::size_t t = frames / 2; t < frames; ++t) {
        ch1_amp = std::max(ch1_amp, std::abs(static_cast<double>(buf[t * 2 + 1])));
    }
    EXPECT_LT(ch1_amp, 0.01);
}

TEST(FilterChannelsTest, SizeValidation) {
    std::vector<float> buf(7);
    EXPECT_THROW(filter_channels_inplace(buf, 2, 4, k_fc, k_fs), std::invalid_argument);
    EXPECT_THROW(filter_channels_inplace(buf, 0, 4, k_fc, k_fs), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::dsp
