#include "dsp/rotation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace fallsense::dsp {
namespace {

TEST(Vec3Test, BasicOps) {
    const vec3 a{1, 2, 3};
    const vec3 b{4, 5, 6};
    EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
    const vec3 c = a.cross(b);
    EXPECT_DOUBLE_EQ(c.x, -3.0);
    EXPECT_DOUBLE_EQ(c.y, 6.0);
    EXPECT_DOUBLE_EQ(c.z, -3.0);
    EXPECT_DOUBLE_EQ((vec3{3, 4, 0}).norm(), 5.0);
}

TEST(Vec3Test, NormalizedUnitLength) {
    const vec3 n = vec3{2, 0, 0}.normalized();
    EXPECT_DOUBLE_EQ(n.x, 1.0);
    EXPECT_THROW((vec3{0, 0, 0}).normalized(), std::invalid_argument);
}

TEST(Mat3Test, IdentityApply) {
    const mat3 id = mat3::identity();
    const vec3 v{1, 2, 3};
    const vec3 r = id.apply(v);
    EXPECT_DOUBLE_EQ(r.x, 1.0);
    EXPECT_DOUBLE_EQ(r.y, 2.0);
    EXPECT_DOUBLE_EQ(r.z, 3.0);
    EXPECT_DOUBLE_EQ(id.determinant(), 1.0);
}

TEST(RodriguesTest, QuarterTurnAboutZ) {
    const mat3 r = rodrigues_rotation({0, 0, 1}, std::numbers::pi / 2.0);
    const vec3 v = r.apply({1, 0, 0});
    EXPECT_NEAR(v.x, 0.0, 1e-12);
    EXPECT_NEAR(v.y, 1.0, 1e-12);
    EXPECT_NEAR(v.z, 0.0, 1e-12);
}

TEST(RodriguesTest, FullTurnIsIdentity) {
    const mat3 r = rodrigues_rotation({1, 1, 1}, 2.0 * std::numbers::pi);
    const vec3 v = r.apply({0.3, -0.7, 0.2});
    EXPECT_NEAR(v.x, 0.3, 1e-12);
    EXPECT_NEAR(v.y, -0.7, 1e-12);
    EXPECT_NEAR(v.z, 0.2, 1e-12);
}

TEST(RodriguesTest, ProducesProperRotations) {
    for (const double angle : {0.1, 0.7, 1.9, 3.0}) {
        const mat3 r = rodrigues_rotation({0.2, -0.5, 0.8}, angle);
        EXPECT_TRUE(is_rotation_matrix(r, 1e-10)) << "angle " << angle;
    }
}

TEST(RodriguesTest, AxisIsInvariant) {
    const vec3 axis = vec3{1, 2, 3}.normalized();
    const mat3 r = rodrigues_rotation(axis, 1.1);
    const vec3 rotated = r.apply(axis);
    EXPECT_NEAR(rotated.x, axis.x, 1e-12);
    EXPECT_NEAR(rotated.y, axis.y, 1e-12);
    EXPECT_NEAR(rotated.z, axis.z, 1e-12);
}

TEST(RodriguesTest, CompositionMatchesAngleSum) {
    const vec3 axis{0, 1, 0};
    const mat3 a = rodrigues_rotation(axis, 0.4);
    const mat3 b = rodrigues_rotation(axis, 0.6);
    const mat3 ab = a.multiply(b);
    const mat3 direct = rodrigues_rotation(axis, 1.0);
    for (std::size_t i = 0; i < 9; ++i) EXPECT_NEAR(ab.m[i], direct.m[i], 1e-12);
}

TEST(RotationBetweenTest, MapsFromOntoTo) {
    const vec3 from{1, 0, 0};
    const vec3 to = vec3{1, 1, 0}.normalized();
    const mat3 r = rotation_between(from, to);
    const vec3 mapped = r.apply(from);
    EXPECT_NEAR(mapped.x, to.x, 1e-12);
    EXPECT_NEAR(mapped.y, to.y, 1e-12);
    EXPECT_NEAR(mapped.z, to.z, 1e-12);
    EXPECT_TRUE(is_rotation_matrix(r, 1e-10));
}

TEST(RotationBetweenTest, ParallelIsIdentity) {
    const mat3 r = rotation_between({0, 0, 2}, {0, 0, 5});
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(r(i, i), 1.0, 1e-12);
}

TEST(RotationBetweenTest, AntiparallelHandled) {
    const mat3 r = rotation_between({1, 0, 0}, {-1, 0, 0});
    const vec3 mapped = r.apply({1, 0, 0});
    EXPECT_NEAR(mapped.x, -1.0, 1e-9);
    EXPECT_TRUE(is_rotation_matrix(r, 1e-9));
}

TEST(IsRotationMatrixTest, DetectsNonRotations) {
    mat3 scaled;
    scaled(0, 0) = 2.0;
    EXPECT_FALSE(is_rotation_matrix(scaled));
    // Reflection: orthogonal but det = -1.
    mat3 reflect;
    reflect(0, 0) = -1.0;
    EXPECT_FALSE(is_rotation_matrix(reflect));
}

TEST(Mat3Test, TransposeOfRotationIsInverse) {
    const mat3 r = rodrigues_rotation({0.3, 0.4, 0.5}, 0.9);
    const mat3 should_be_identity = r.multiply(r.transpose());
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_NEAR(should_be_identity(i, j), i == j ? 1.0 : 0.0, 1e-12);
        }
    }
}

}  // namespace
}  // namespace fallsense::dsp
