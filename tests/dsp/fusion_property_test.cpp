// Complementary-filter behavioural properties across its blend parameter.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/fusion.hpp"
#include "util/rng.hpp"

namespace fallsense::dsp {
namespace {

class FusionBlend : public ::testing::TestWithParam<double> {};

TEST_P(FusionBlend, TracksStaticAttitudeForAnyBlend) {
    fusion_config cfg;
    cfg.gyro_weight = GetParam();
    complementary_filter f(cfg);
    const double pitch = 0.4;
    const vec3 accel{-std::sin(pitch), 0.0, std::cos(pitch)};
    euler_angles a;
    for (int i = 0; i < 2000; ++i) a = f.update(accel, {0, 0, 0});
    if (cfg.gyro_weight < 1.0) {
        // Any accel contribution eventually pulls to the true attitude.
        EXPECT_NEAR(a.pitch, pitch, 0.01) << "blend " << cfg.gyro_weight;
    } else {
        // Pure gyro: stays at the bootstrap value (also the true attitude
        // here because the first sample initializes from accel).
        EXPECT_NEAR(a.pitch, pitch, 1e-9);
    }
}

TEST_P(FusionBlend, BoundedUnderNoisyInput) {
    fusion_config cfg;
    cfg.gyro_weight = GetParam();
    complementary_filter f(cfg);
    util::rng gen(7);
    for (int i = 0; i < 5000; ++i) {
        const euler_angles a = f.update(
            {gen.normal(0.0, 0.3), gen.normal(0.0, 0.3), 1.0 + gen.normal(0.0, 0.3)},
            {gen.normal(0.0, 0.5), gen.normal(0.0, 0.5), gen.normal(0.0, 0.5)});
        ASSERT_TRUE(std::isfinite(a.pitch));
        ASSERT_TRUE(std::isfinite(a.roll));
        // Pitch/roll are physically bounded by the accel reference for any
        // blend below 1 (yaw integrates freely and is excluded).
        if (cfg.gyro_weight < 1.0) {
            EXPECT_LT(std::abs(a.pitch), std::numbers::pi);
            EXPECT_LT(std::abs(a.roll), std::numbers::pi);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Blends, FusionBlend,
                         ::testing::Values(0.0, 0.5, 0.9, 0.98, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                             return "w" + std::to_string(
                                              static_cast<int>(info.param * 100));
                         });

}  // namespace
}  // namespace fallsense::dsp
