// Property-style sweeps (TEST_P) over the quantization stack: for every
// window size the paper explores, the int8 executor must track the float
// reference within a bounded logit error, never produce non-finite output,
// and preserve footprint monotonicity.
#include <gtest/gtest.h>

#include <cmath>

#include "core/models.hpp"
#include "quant/quantized_cnn.hpp"
#include "util/rng.hpp"

namespace fallsense::quant {
namespace {

class QuantizationSweep : public ::testing::TestWithParam<std::size_t> {
protected:
    void SetUp() override {
        window_ = GetParam();
        net_ = core::build_fallsense_cnn(window_, 1000 + window_);
        spec_ = extract_cnn_spec(*net_, window_);
        util::rng gen(2000 + window_);
        calibration_ = nn::tensor({48, window_, 9});
        for (float& v : calibration_.values()) v = static_cast<float>(gen.normal());
        qmodel_.emplace(spec_, calibration_);
    }

    std::size_t window_ = 0;
    std::unique_ptr<nn::multi_branch_network> net_;
    cnn_spec spec_;
    nn::tensor calibration_;
    std::optional<quantized_cnn> qmodel_;
};

TEST_P(QuantizationSweep, LogitErrorBounded) {
    util::rng gen(3000 + window_);
    double max_err = 0.0;
    for (int trial = 0; trial < 24; ++trial) {
        nn::tensor seg({window_, 9});
        for (float& v : seg.values()) v = static_cast<float>(gen.normal());
        const float fl = spec_.forward_logit(seg.values());
        const float ql = qmodel_->predict_logit(seg.values());
        EXPECT_TRUE(std::isfinite(ql));
        max_err = std::max(max_err, std::abs(static_cast<double>(fl) - ql));
    }
    EXPECT_LT(max_err, 0.8) << "window " << window_;
}

TEST_P(QuantizationSweep, ProbabilitiesInUnitInterval) {
    util::rng gen(4000 + window_);
    for (int trial = 0; trial < 16; ++trial) {
        nn::tensor seg({window_, 9});
        for (float& v : seg.values()) v = static_cast<float>(gen.normal(0.0, 3.0));
        const float p = qmodel_->predict_proba(seg.values());
        EXPECT_GE(p, 0.0f);
        EXPECT_LE(p, 1.0f);
    }
}

TEST_P(QuantizationSweep, OutOfCalibrationInputsStillFinite) {
    // Inputs far outside the calibrated range saturate, never overflow.
    nn::tensor seg = nn::tensor::full({window_, 9}, 100.0f);
    EXPECT_TRUE(std::isfinite(qmodel_->predict_logit(seg.values())));
    seg.fill(-100.0f);
    EXPECT_TRUE(std::isfinite(qmodel_->predict_logit(seg.values())));
}

TEST_P(QuantizationSweep, WeightBytesEqualParameterWeights) {
    std::size_t expected = 0;
    for (const conv_branch_spec& b : spec_.branches) expected += b.conv_weight.size();
    for (const dense_spec& d : spec_.trunk) expected += d.weight.size();
    EXPECT_EQ(qmodel_->weight_bytes(), expected);
}

TEST_P(QuantizationSweep, MacCountScalesWithWindow) {
    const op_counts ops = qmodel_->count_ops();
    // Conv MACs grow linearly in conv output length; dense dominates.
    EXPECT_GT(ops.macs, 10'000u);
    EXPECT_LT(ops.macs, 200'000u);
}

INSTANTIATE_TEST_SUITE_P(WindowSizes, QuantizationSweep,
                         ::testing::Values(std::size_t{10}, std::size_t{20},
                                           std::size_t{30}, std::size_t{40}),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                             return "w" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace fallsense::quant
