#include "quant/cnn_spec.hpp"

#include <gtest/gtest.h>

#include "core/models.hpp"
#include "util/rng.hpp"

namespace fallsense::quant {
namespace {

constexpr std::size_t k_window = 20;

nn::tensor random_segments(std::size_t count, util::rng& gen) {
    nn::tensor t({count, k_window, 9});
    for (float& v : t.values()) v = static_cast<float>(gen.normal(0.0, 1.0));
    return t;
}

TEST(CnnSpecTest, ExtractionMatchesArchitecture) {
    auto net = core::build_fallsense_cnn(k_window, 7);
    const cnn_spec spec = extract_cnn_spec(*net, k_window);
    EXPECT_EQ(spec.time_steps, k_window);
    EXPECT_EQ(spec.branches.size(), 3u);
    EXPECT_EQ(spec.group_channels, (std::vector<std::size_t>{3, 3, 3}));
    ASSERT_EQ(spec.trunk.size(), 3u);
    EXPECT_EQ(spec.trunk[0].out_features(), 64u);
    EXPECT_TRUE(spec.trunk[0].relu_after);
    EXPECT_EQ(spec.trunk[1].out_features(), 32u);
    EXPECT_EQ(spec.trunk[2].out_features(), 1u);
    EXPECT_FALSE(spec.trunk[2].relu_after);
    EXPECT_NO_THROW(spec.validate());
}

TEST(CnnSpecTest, ParameterCountMatchesNetwork) {
    auto net = core::build_fallsense_cnn(k_window, 7);
    const cnn_spec spec = extract_cnn_spec(*net, k_window);
    EXPECT_EQ(spec.parameter_count(), net->parameter_count());
}

TEST(CnnSpecTest, ForwardMatchesNetworkLogit) {
    // The float reference executor must agree with the training network.
    auto net = core::build_fallsense_cnn(k_window, 11);
    const cnn_spec spec = extract_cnn_spec(*net, k_window);
    util::rng gen(3);
    const nn::tensor segments = random_segments(8, gen);
    const nn::tensor logits = net->forward(segments, false);
    const std::size_t seg_size = k_window * 9;
    for (std::size_t i = 0; i < 8; ++i) {
        const std::span<const float> seg(segments.data() + i * seg_size, seg_size);
        EXPECT_NEAR(spec.forward_logit(seg), logits[i], 1e-3) << "segment " << i;
    }
}

TEST(CnnSpecTest, ConcatWidthFormula) {
    auto net = core::build_fallsense_cnn(40, 7);
    const cnn_spec spec = extract_cnn_spec(*net, 40);
    // window 40 -> conv(k=3) 38 -> pool(2) 19 -> 19*16 per branch * 3.
    EXPECT_EQ(spec.concat_width(), 3u * 19u * 16u);
}

TEST(CnnSpecTest, CalibrationRangesCoverData) {
    auto net = core::build_fallsense_cnn(k_window, 13);
    const cnn_spec spec = extract_cnn_spec(*net, k_window);
    util::rng gen(5);
    const nn::tensor segments = random_segments(16, gen);
    const activation_ranges ranges = calibrate(spec, segments);
    EXPECT_LT(ranges.input_min, 0.0f);
    EXPECT_GT(ranges.input_max, 0.0f);
    EXPECT_GE(ranges.concat_max, ranges.concat_min);
    EXPECT_GE(ranges.concat_min, 0.0f);  // post-ReLU activations
    ASSERT_EQ(ranges.trunk_min.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_LE(ranges.trunk_min[i], ranges.trunk_max[i]);
    }
}

TEST(CnnSpecTest, ForwardRejectsWrongSegmentSize) {
    auto net = core::build_fallsense_cnn(k_window, 17);
    const cnn_spec spec = extract_cnn_spec(*net, k_window);
    const std::vector<float> wrong(10, 0.0f);
    EXPECT_THROW(spec.forward_logit(wrong), std::invalid_argument);
}

TEST(CnnSpecTest, CalibrateValidatesShape) {
    auto net = core::build_fallsense_cnn(k_window, 19);
    const cnn_spec spec = extract_cnn_spec(*net, k_window);
    EXPECT_THROW(calibrate(spec, nn::tensor({0, k_window, 9})), std::invalid_argument);
    EXPECT_THROW(calibrate(spec, nn::tensor({4, k_window, 8})), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::quant
