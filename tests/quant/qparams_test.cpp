#include "quant/qparams.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fallsense::quant {
namespace {

TEST(QparamsTest, ActivationRangeCovered) {
    const qparams qp = choose_activation_qparams(-2.0f, 6.0f);
    // Both endpoints must be representable within one step.
    const float lo = dequantize_value(-128, qp);
    const float hi = dequantize_value(127, qp);
    EXPECT_LE(lo, -2.0f + qp.scale);
    EXPECT_GE(hi, 6.0f - qp.scale);
}

TEST(QparamsTest, ZeroIsExactlyRepresentable) {
    for (const auto& [lo, hi] : {std::pair{-3.0f, 5.0f}, {0.5f, 9.0f}, {-7.0f, -1.0f}}) {
        const qparams qp = choose_activation_qparams(lo, hi);
        const std::int8_t zq = quantize_value(0.0f, qp);
        EXPECT_FLOAT_EQ(dequantize_value(zq, qp), 0.0f);
    }
}

TEST(QparamsTest, DegenerateRangeHandled) {
    const qparams qp = choose_activation_qparams(0.0f, 0.0f);
    EXPECT_GT(qp.scale, 0.0f);
    EXPECT_THROW(choose_activation_qparams(1.0f, -1.0f), std::invalid_argument);
}

TEST(QparamsTest, WeightQuantizationSymmetric) {
    const qparams qp = choose_weight_qparams(0.5f);
    EXPECT_EQ(qp.zero_point, 0);
    EXPECT_EQ(quantize_value(0.5f, qp), 127);
    EXPECT_EQ(quantize_value(-0.5f, qp), -127);
}

TEST(QparamsTest, QuantizeDequantizeRoundTripError) {
    const qparams qp = choose_activation_qparams(-1.0f, 1.0f);
    for (float v = -1.0f; v <= 1.0f; v += 0.05f) {
        const float back = dequantize_value(quantize_value(v, qp), qp);
        EXPECT_NEAR(back, v, qp.scale * 0.51f);
    }
}

TEST(QparamsTest, QuantizeClampsOutOfRange) {
    const qparams qp = choose_activation_qparams(-1.0f, 1.0f);
    EXPECT_EQ(quantize_value(100.0f, qp), 127);
    EXPECT_EQ(quantize_value(-100.0f, qp), -128);
}

TEST(MultiplierTest, EncodesSubUnitValues) {
    for (const double m : {0.5, 0.25, 0.1, 0.0123, 0.9999}) {
        const quantized_multiplier qm = encode_multiplier(m);
        EXPECT_GE(qm.mantissa, 1 << 30);
        EXPECT_GE(qm.right_shift, 0);
        // Reconstruct: mantissa * 2^-31 * 2^-shift ~ m.
        const double reconstructed =
            static_cast<double>(qm.mantissa) / (1ULL << 31) / (1ULL << qm.right_shift);
        EXPECT_NEAR(reconstructed, m, m * 1e-6);
    }
}

TEST(MultiplierTest, RejectsOutOfDomain) {
    EXPECT_THROW(encode_multiplier(0.0), std::invalid_argument);
    EXPECT_THROW(encode_multiplier(1.0), std::invalid_argument);
    EXPECT_THROW(encode_multiplier(-0.5), std::invalid_argument);
}

TEST(MultiplierTest, FixedPointMatchesFloatWithin1) {
    const quantized_multiplier qm = encode_multiplier(0.0037);
    for (const std::int32_t acc : {0, 1, -1, 100, -100, 12345, -54321, 1'000'000}) {
        const std::int32_t fixed = multiply_by_quantized_multiplier(acc, qm);
        const double exact = 0.0037 * acc;
        EXPECT_NEAR(static_cast<double>(fixed), exact, 1.0) << acc;
    }
}

TEST(MultiplierTest, RoundsToNearest) {
    const quantized_multiplier half = encode_multiplier(0.5);
    EXPECT_EQ(multiply_by_quantized_multiplier(7, half), 4);   // 3.5 -> 4
    EXPECT_EQ(multiply_by_quantized_multiplier(-7, half), -4); // -3.5 -> -4 (away from 0)
    EXPECT_EQ(multiply_by_quantized_multiplier(6, half), 3);
}

TEST(RequantizeTest, ClampsAndAppliesZeroPoint) {
    const quantized_multiplier qm = encode_multiplier(0.5);
    EXPECT_EQ(requantize(10, qm, 5), 10);          // 5 + 5
    EXPECT_EQ(requantize(1000, qm, 0), 127);       // clamp high
    EXPECT_EQ(requantize(-1000, qm, 0), -128);     // clamp low
    // Fused ReLU: clamp_min at zero point.
    EXPECT_EQ(requantize(-50, qm, -10, -10), -10);
}

}  // namespace
}  // namespace fallsense::quant
