#include "quant/quantized_cnn.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/models.hpp"
#include "util/rng.hpp"

namespace fallsense::quant {
namespace {

constexpr std::size_t k_window = 20;

nn::tensor random_segments(std::size_t count, util::rng& gen, double scale = 1.0) {
    nn::tensor t({count, k_window, 9});
    for (float& v : t.values()) v = static_cast<float>(gen.normal(0.0, scale));
    return t;
}

struct fixture {
    std::unique_ptr<nn::multi_branch_network> net;
    cnn_spec spec;
    nn::tensor calibration;
    quantized_cnn qmodel;

    explicit fixture(std::uint64_t seed)
        : net(core::build_fallsense_cnn(k_window, seed)),
          spec(extract_cnn_spec(*net, k_window)),
          calibration([&] {
              util::rng gen(seed + 1);
              return random_segments(64, gen);
          }()),
          qmodel(spec, calibration) {}
};

TEST(QuantizedCnnTest, LogitsCloseToFloatReference) {
    fixture f(21);
    util::rng gen(9);
    const nn::tensor test = random_segments(32, gen);
    const std::size_t seg_size = k_window * 9;
    double max_err = 0.0;
    for (std::size_t i = 0; i < 32; ++i) {
        const std::span<const float> seg(test.data() + i * seg_size, seg_size);
        const float fl = f.spec.forward_logit(seg);
        const float ql = f.qmodel.predict_logit(seg);
        max_err = std::max(max_err, std::abs(static_cast<double>(fl) - ql));
    }
    // Int8 quantization error budget on a 3-layer trunk.
    EXPECT_LT(max_err, 0.6);
}

TEST(QuantizedCnnTest, DecisionsMostlyAgreeWithFloat) {
    fixture f(23);
    util::rng gen(10);
    const nn::tensor test = random_segments(128, gen);
    const std::size_t seg_size = k_window * 9;
    std::size_t agree = 0;
    for (std::size_t i = 0; i < 128; ++i) {
        const std::span<const float> seg(test.data() + i * seg_size, seg_size);
        const bool fd = f.spec.forward_logit(seg) >= 0.0f;
        const bool qd = f.qmodel.predict_logit(seg) >= 0.0f;
        agree += (fd == qd) ? 1 : 0;
    }
    EXPECT_GE(agree, 120u);  // > 93% decision agreement on random inputs
}

TEST(QuantizedCnnTest, ProbaIsSigmoidOfLogit) {
    fixture f(25);
    util::rng gen(11);
    const nn::tensor test = random_segments(4, gen);
    const std::size_t seg_size = k_window * 9;
    const std::span<const float> seg(test.data(), seg_size);
    const float logit = f.qmodel.predict_logit(seg);
    const float proba = f.qmodel.predict_proba(seg);
    EXPECT_NEAR(proba, 1.0f / (1.0f + std::exp(-logit)), 1e-5);
    EXPECT_GE(proba, 0.0f);
    EXPECT_LE(proba, 1.0f);
}

TEST(QuantizedCnnTest, WeightBytesMatchParameterCount) {
    fixture f(27);
    std::size_t expected_weights = 0;
    for (const conv_branch_spec& b : f.spec.branches) expected_weights += b.conv_weight.size();
    for (const dense_spec& d : f.spec.trunk) expected_weights += d.weight.size();
    EXPECT_EQ(f.qmodel.weight_bytes(), expected_weights);

    std::size_t expected_biases = 0;
    for (const conv_branch_spec& b : f.spec.branches) expected_biases += b.conv_bias.size();
    for (const dense_spec& d : f.spec.trunk) expected_biases += d.bias.size();
    EXPECT_EQ(f.qmodel.bias_bytes(), expected_biases * 4);
}

TEST(QuantizedCnnTest, OpCountsMatchArchitecture) {
    fixture f(29);
    const op_counts ops = f.qmodel.count_ops();
    // Conv: 3 branches x out_time(18) x 16 filters x k(3) x 3 channels.
    const std::uint64_t conv_macs = 3ULL * 18 * 16 * 3 * 3;
    // Dense: concat(3*9*16=432) x 64 + 64x32 + 32x1.
    const std::uint64_t dense_macs = 432ULL * 64 + 64 * 32 + 32;
    EXPECT_EQ(ops.macs, conv_macs + dense_macs);
    EXPECT_EQ(ops.requants, 3ULL * 18 * 16 + 64 + 32 + 1);
    EXPECT_EQ(ops.pool_compares, 3ULL * 9 * 16 * 1);
}

TEST(QuantizedCnnTest, ActivationArenaIsSmall) {
    fixture f(31);
    // The whole activation footprint of the 20-step model is well under
    // 8 KiB (Section IV-C reports 16.87 KiB total RAM including runtime).
    EXPECT_LT(f.qmodel.activation_arena_bytes(), 8u * 1024u);
    EXPECT_GT(f.qmodel.activation_arena_bytes(), 500u);
}

TEST(QuantizedCnnTest, InputSizeValidated) {
    fixture f(33);
    const std::vector<float> wrong(17, 0.0f);
    EXPECT_THROW(f.qmodel.predict_logit(wrong), std::invalid_argument);
}

TEST(QuantizedCnnTest, DeterministicInference) {
    fixture f(35);
    util::rng gen(12);
    const nn::tensor test = random_segments(1, gen);
    const std::span<const float> seg(test.data(), k_window * 9);
    EXPECT_FLOAT_EQ(f.qmodel.predict_logit(seg), f.qmodel.predict_logit(seg));
}

}  // namespace
}  // namespace fallsense::quant
