// Validation tests for the firmware-loading constructor of quantized_cnn:
// a flashed image must be structurally consistent before it is allowed to
// execute.
#include <gtest/gtest.h>

#include "core/models.hpp"
#include "mcu/deployment.hpp"
#include "quant/quantized_cnn.hpp"
#include "util/rng.hpp"

namespace fallsense::quant {
namespace {

quantized_cnn make_model(std::uint64_t seed) {
    auto net = core::build_fallsense_cnn(20, seed);
    const cnn_spec spec = extract_cnn_spec(*net, 20);
    util::rng gen(seed + 1);
    nn::tensor calibration({16, 20, 9});
    for (float& v : calibration.values()) v = static_cast<float>(gen.normal());
    return quantized_cnn(spec, calibration);
}

/// Round-trip through the blob to obtain mutable parts.
quantized_cnn_parts make_parts(std::uint64_t seed) {
    const quantized_cnn model = make_model(seed);
    quantized_cnn_parts parts;
    parts.time_steps = model.time_steps();
    parts.input_q = model.input_q();
    parts.concat_q = model.concat_q();
    parts.branches.assign(model.branches().begin(), model.branches().end());
    parts.trunk.assign(model.trunk().begin(), model.trunk().end());
    return parts;
}

TEST(QuantizedPartsTest, ValidPartsConstruct) {
    EXPECT_NO_THROW(quantized_cnn{make_parts(1)});
}

TEST(QuantizedPartsTest, PartsModelMatchesOriginal) {
    const quantized_cnn original = make_model(2);
    const quantized_cnn rebuilt{make_parts(2)};
    util::rng gen(9);
    nn::tensor seg({20, 9});
    for (float& v : seg.values()) v = static_cast<float>(gen.normal());
    EXPECT_FLOAT_EQ(rebuilt.predict_logit(seg.values()),
                    original.predict_logit(seg.values()));
}

TEST(QuantizedPartsTest, RejectsEmptyBranches) {
    quantized_cnn_parts parts = make_parts(3);
    parts.branches.clear();
    EXPECT_THROW(quantized_cnn{std::move(parts)}, std::invalid_argument);
}

TEST(QuantizedPartsTest, RejectsZeroTimeSteps) {
    quantized_cnn_parts parts = make_parts(4);
    parts.time_steps = 0;
    EXPECT_THROW(quantized_cnn{std::move(parts)}, std::invalid_argument);
}

TEST(QuantizedPartsTest, RejectsWeightSizeMismatch) {
    quantized_cnn_parts parts = make_parts(5);
    parts.branches[0].weight.pop_back();
    EXPECT_THROW(quantized_cnn{std::move(parts)}, std::invalid_argument);
}

TEST(QuantizedPartsTest, RejectsBrokenTrunkChain) {
    quantized_cnn_parts parts = make_parts(6);
    parts.trunk[1].in_features += 1;
    EXPECT_THROW(quantized_cnn{std::move(parts)}, std::invalid_argument);
}

TEST(QuantizedPartsTest, RejectsMultiLogitOutput) {
    quantized_cnn_parts parts = make_parts(7);
    parts.trunk.pop_back();  // now ends with the 32-wide hidden layer
    EXPECT_THROW(quantized_cnn{std::move(parts)}, std::invalid_argument);
}

TEST(QuantizedPartsTest, RejectsKernelLongerThanWindow) {
    quantized_cnn_parts parts = make_parts(8);
    parts.time_steps = 2;  // kernel is 3
    EXPECT_THROW(quantized_cnn{std::move(parts)}, std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::quant
