// Hyperparameter plumbing: custom model_hyperparams must reach the built
// networks, and the MCU cost model must respond to its cost constants —
// the knobs DESIGN.md's ablations and docs/MCU_MODEL.md's recalibration
// guide rely on.
#include <gtest/gtest.h>

#include "core/models.hpp"
#include "mcu/cost_model.hpp"
#include "quant/cnn_spec.hpp"

namespace fallsense {
namespace {

TEST(ModelHyperparamsTest, CnnFiltersChangeParameterCount) {
    core::model_hyperparams small;
    small.cnn_filters = 8;
    core::model_hyperparams big;
    big.cnn_filters = 32;
    auto a = core::build_fallsense_cnn(20, 1, small);
    auto b = core::build_fallsense_cnn(20, 1, big);
    EXPECT_LT(a->parameter_count(), b->parameter_count());
}

TEST(ModelHyperparamsTest, CnnKernelAffectsConcatWidth) {
    core::model_hyperparams k3;
    k3.cnn_kernel = 3;
    core::model_hyperparams k5;
    k5.cnn_kernel = 5;
    auto a = core::build_fallsense_cnn(20, 1, k3);
    auto b = core::build_fallsense_cnn(20, 1, k5);
    // Larger kernel -> shorter conv output -> narrower concat -> smaller trunk.
    EXPECT_GT(a->parameter_count(), b->parameter_count());
}

TEST(ModelHyperparamsTest, LstmHiddenSizeHonored) {
    core::model_hyperparams hp;
    hp.lstm_hidden = 12;
    core::built_model bm = core::build_model(core::model_kind::lstm, 20, 1, hp);
    // lstm params: in(9)x4H + HxH4 + 4H + dense head.
    const std::size_t h = hp.lstm_hidden;
    const std::size_t lstm_params = 9 * 4 * h + h * 4 * h + 4 * h;
    EXPECT_GT(bm.network->parameter_count(), lstm_params);
    core::model_hyperparams hp2;
    hp2.lstm_hidden = 48;
    core::built_model bm2 = core::build_model(core::model_kind::lstm, 20, 1, hp2);
    EXPECT_GT(bm2.network->parameter_count(), bm.network->parameter_count());
}

TEST(CostModelKnobsTest, MacCostScalesInferenceEstimate) {
    auto net = core::build_fallsense_cnn(20, 3);
    const quant::cnn_spec spec = quant::extract_cnn_spec(*net, 20);
    util::rng gen(4);
    nn::tensor calibration({8, 20, 9});
    for (float& v : calibration.values()) v = static_cast<float>(gen.normal());
    const quant::quantized_cnn model(spec, calibration);

    mcu::cycle_costs cheap;
    cheap.cycles_per_mac = 1.0;
    mcu::cycle_costs expensive;
    expensive.cycles_per_mac = 20.0;
    const double t_cheap =
        mcu::estimate_inference(model, mcu::stm32f722(), cheap).milliseconds;
    const double t_exp =
        mcu::estimate_inference(model, mcu::stm32f722(), expensive).milliseconds;
    EXPECT_GT(t_exp, t_cheap * 3.0);
}

TEST(CostModelKnobsTest, FusionCostsScaleEstimate) {
    mcu::fusion_costs light;
    light.cycles_per_fusion_update = 100.0;
    light.cycles_per_sample_io = 100.0;
    const double t_light = mcu::estimate_fusion(40, mcu::stm32f722(), light).milliseconds;
    const double t_default = mcu::estimate_fusion(40, mcu::stm32f722()).milliseconds;
    EXPECT_LT(t_light, t_default / 3.0);
}

}  // namespace
}  // namespace fallsense
