// Behavioural tests for the experiment harness's train_options: each
// toggle must actually reach the trainer.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace fallsense::core {
namespace {

struct harness {
    experiment_scale scale;
    data::dataset merged;
    std::vector<eval::fold_split> splits;
    windowing_config windows;

    harness()
        : scale([] {
              experiment_scale s = scale_preset(util::run_scale::tiny);
              s.max_epochs = 3;
              s.early_stop_patience = 0;
              return s;
          }()),
          merged(make_merged_dataset(scale, 31)),
          windows(standard_windowing(200.0)) {
        eval::kfold_config kf;
        kf.folds = scale.folds;
        kf.validation_subjects = scale.validation_subjects;
        splits = eval::make_subject_folds(merged.subject_ids(), kf);
    }
};

TEST(ExperimentOptionsTest, ClassWeightsReachTheTrainer) {
    const harness h;
    train_options with;
    with.class_weights = true;
    const fold_result a = run_fold(model_kind::mlp, h.merged, h.splits[0], h.windows,
                                   h.scale, 1, with);
    EXPECT_GT(a.history.weight_positive, a.history.weight_negative);

    train_options without;
    without.class_weights = false;
    const fold_result b = run_fold(model_kind::mlp, h.merged, h.splits[0], h.windows,
                                   h.scale, 1, without);
    EXPECT_DOUBLE_EQ(b.history.weight_positive, 1.0);
    EXPECT_DOUBLE_EQ(b.history.weight_negative, 1.0);
}

TEST(ExperimentOptionsTest, OptionsChangeOutcome) {
    const harness h;
    const fold_result a =
        run_fold(model_kind::mlp, h.merged, h.splits[0], h.windows, h.scale, 2, {});
    train_options none;
    none.augment = false;
    none.class_weights = false;
    none.output_bias_init = false;
    const fold_result b =
        run_fold(model_kind::mlp, h.merged, h.splits[0], h.windows, h.scale, 2, none);
    // Identical seeds but different training regimes: scores must differ.
    ASSERT_EQ(a.test_records.size(), b.test_records.size());
    bool any_diff = false;
    for (std::size_t i = 0; i < a.test_records.size(); ++i) {
        any_diff |= a.test_records[i].probability != b.test_records[i].probability;
    }
    EXPECT_TRUE(any_diff);
}

TEST(ExperimentOptionsTest, AugmentationOnlyAffectsTraining) {
    // Test-set size is identical with and without augmentation — the
    // minority-class copies must never leak into evaluation.
    const harness h;
    train_options with;
    with.augment = true;
    train_options without;
    without.augment = false;
    const fold_result a =
        run_fold(model_kind::mlp, h.merged, h.splits[0], h.windows, h.scale, 3, with);
    const fold_result b =
        run_fold(model_kind::mlp, h.merged, h.splits[0], h.windows, h.scale, 3, without);
    EXPECT_EQ(a.test_records.size(), b.test_records.size());
}

}  // namespace
}  // namespace fallsense::core
