#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fallsense::core {
namespace {

experiment_scale test_scale() {
    experiment_scale s = scale_preset(util::run_scale::tiny);
    s.max_epochs = 3;
    s.early_stop_patience = 2;
    return s;
}

TEST(ExperimentTest, ScalePresetsOrdered) {
    const experiment_scale tiny = scale_preset(util::run_scale::tiny);
    const experiment_scale quick = scale_preset(util::run_scale::quick);
    const experiment_scale full = scale_preset(util::run_scale::full);
    EXPECT_LT(tiny.kfall_subjects, quick.kfall_subjects);
    EXPECT_LT(quick.kfall_subjects, full.kfall_subjects);
    // Full matches the paper protocol.
    EXPECT_EQ(full.kfall_subjects, 32);
    EXPECT_EQ(full.protechto_subjects, 29);
    EXPECT_EQ(full.folds, 5u);
    EXPECT_EQ(full.validation_subjects, 4u);
    EXPECT_EQ(full.max_epochs, 200u);
    EXPECT_EQ(full.early_stop_patience, 20u);
}

TEST(ExperimentTest, MergedDatasetCombinesBothSources) {
    const experiment_scale s = test_scale();
    const data::dataset merged = make_merged_dataset(s, 1);
    EXPECT_EQ(merged.subject_ids().size(),
              static_cast<std::size_t>(s.kfall_subjects + s.protechto_subjects));
    // KFall subjects contribute 36 trials each, protechto 44.
    EXPECT_EQ(merged.trial_count(),
              static_cast<std::size_t>(s.kfall_subjects) * 36u +
                  static_cast<std::size_t>(s.protechto_subjects) * 44u);
    // All aligned.
    for (const data::trial& t : merged.trials) {
        EXPECT_EQ(t.accel_units, data::accel_unit::g);
        EXPECT_EQ(t.gyro_units, data::gyro_unit::rad_per_s);
    }
}

TEST(ExperimentTest, StandardWindowingMatchesPaper) {
    const windowing_config c = standard_windowing(400.0);
    EXPECT_EQ(c.segmentation.window_samples, 40u);
    EXPECT_DOUBLE_EQ(c.segmentation.overlap_fraction, 0.5);
    EXPECT_DOUBLE_EQ(c.truncation_ms, 150.0);
    EXPECT_EQ(c.preprocess.filter_order, 4u);
    EXPECT_DOUBLE_EQ(c.preprocess.cutoff_hz, 5.0);
}

TEST(ExperimentTest, RunFoldProducesCoherentResult) {
    const experiment_scale s = test_scale();
    const data::dataset merged = make_merged_dataset(s, 2);
    eval::kfold_config kf;
    kf.folds = s.folds;
    kf.validation_subjects = s.validation_subjects;
    const auto splits = eval::make_subject_folds(merged.subject_ids(), kf);
    const fold_result r =
        run_fold(model_kind::mlp, merged, splits[0], standard_windowing(200.0), s, 3);

    EXPECT_FALSE(r.test_records.empty());
    EXPECT_GT(r.report.accuracy, 0.5);
    EXPECT_FALSE(r.history.train_loss.empty());
    // Test records only contain test subjects.
    const std::set<int> test_set(splits[0].test_subjects.begin(),
                                 splits[0].test_subjects.end());
    for (const eval::segment_record& rec : r.test_records) {
        EXPECT_TRUE(test_set.contains(rec.subject_id));
    }
}

TEST(ExperimentTest, CrossValidationPoolsFolds) {
    experiment_scale s = test_scale();
    s.folds_to_run = 2;
    const data::dataset merged = make_merged_dataset(s, 4);
    const cross_validation_result cv =
        run_cross_validation(model_kind::mlp, merged, standard_windowing(200.0), s, 5);
    EXPECT_EQ(cv.folds.size(), 2u);
    std::size_t total = 0;
    for (const fold_result& f : cv.folds) total += f.test_records.size();
    EXPECT_EQ(cv.all_records.size(), total);
    EXPECT_EQ(cv.pooled.cm.total(), total);
}

TEST(ExperimentTest, AugmentationIncreasesPositives) {
    const experiment_scale s = test_scale();
    const data::dataset merged = make_merged_dataset(s, 6);
    eval::kfold_config kf;
    kf.folds = s.folds;
    kf.validation_subjects = s.validation_subjects;
    const auto splits = eval::make_subject_folds(merged.subject_ids(), kf);

    train_options no_aug;
    no_aug.augment = false;
    // Compare positive counts indirectly: both runs train fine; the
    // augmented run sees more fall windows, which we verify through the
    // windowing layer directly.
    std::vector<data::trial> train_trials;
    for (const data::trial& t : merged.trials) {
        if (std::find(splits[0].train_subjects.begin(), splits[0].train_subjects.end(),
                      t.subject_id) != splits[0].train_subjects.end()) {
            train_trials.push_back(t);
        }
    }
    const auto before = extract_windows(train_trials, standard_windowing(200.0));
    util::rng gen(7);
    augment::augment_fall_trials(train_trials, 2, augment::trial_augment_config{}, gen);
    const auto after = extract_windows(train_trials, standard_windowing(200.0));
    auto positives = [](const std::vector<window_example>& w) {
        std::size_t n = 0;
        for (const window_example& e : w) n += e.label > 0.5f ? 1 : 0;
        return n;
    };
    EXPECT_GT(positives(after), positives(before));
}

}  // namespace
}  // namespace fallsense::core
