#include "core/models.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fallsense::core {
namespace {

nn::tensor random_features(std::size_t n, std::size_t window, std::uint64_t seed) {
    util::rng gen(seed);
    nn::tensor t({n, window, 9});
    for (float& v : t.values()) v = static_cast<float>(gen.normal());
    return t;
}

TEST(ModelsTest, AllKindsEmitOneLogitPerSample) {
    for (const model_kind kind :
         {model_kind::mlp, model_kind::lstm, model_kind::conv_lstm2d, model_kind::cnn}) {
        built_model bm = build_model(kind, 20, 1);
        const nn::tensor x = bm.adapt_features(random_features(4, 20, 2));
        const nn::tensor y = bm.network->forward(x, false);
        EXPECT_EQ(y.size(), 4u) << model_kind_name(kind);
    }
}

TEST(ModelsTest, CnnMatchesPaperArchitecture) {
    auto cnn = build_fallsense_cnn(40, 1);
    EXPECT_EQ(cnn->branch_count(), 3u);
    EXPECT_EQ(cnn->group_channels(), (std::vector<std::size_t>{3, 3, 3}));
    // Branch: conv1d -> relu -> maxpool -> flatten.
    EXPECT_EQ(cnn->branch(0).layer_count(), 4u);
    EXPECT_EQ(cnn->branch(0).layer_at(0).kind(), nn::layer_kind::conv1d);
    // Trunk: dense(64) relu dense(32) relu dense(1).
    EXPECT_EQ(cnn->trunk().layer_count(), 5u);
    EXPECT_EQ(cnn->output_shape({40, 9}), (nn::shape_t{1}));
}

TEST(ModelsTest, CnnParameterCountNearPaperModelSize) {
    // The 400 ms CNN should have ~60-70k parameters (67.03 KiB after int8
    // quantization in the paper).
    auto cnn = build_fallsense_cnn(40, 1);
    const std::size_t params = cnn->parameter_count();
    EXPECT_GT(params, 55'000u);
    EXPECT_LT(params, 75'000u);
}

TEST(ModelsTest, CnnIsTheLightestRecurrentFreeModel) {
    // Sanity on baseline capacities: the CNN must not be the largest model.
    built_model mlp = build_model(model_kind::mlp, 40, 1);
    built_model cnn = build_model(model_kind::cnn, 40, 1);
    EXPECT_GT(mlp.network->parameter_count(), 0u);
    EXPECT_GT(cnn.network->parameter_count(), 0u);
}

TEST(ModelsTest, GridAdapterReshapesForConvLstm) {
    built_model bm = build_model(model_kind::conv_lstm2d, 20, 1);
    const nn::tensor x = random_features(2, 20, 3);
    const nn::tensor adapted = bm.adapt_features(x);
    EXPECT_EQ(adapted.shape(), (nn::shape_t{2, 20, 3, 3, 1}));
    // Same data, just regridded.
    EXPECT_FLOAT_EQ(adapted.at({0, 0, 1, 0, 0}), x.at({0, 0, 3}));
}

TEST(ModelsTest, IdentityAdapterForOthers) {
    built_model bm = build_model(model_kind::lstm, 20, 1);
    const nn::tensor x = random_features(2, 20, 4);
    const nn::tensor adapted = bm.adapt_features(x);
    EXPECT_EQ(adapted.shape(), x.shape());
}

TEST(ModelsTest, SeedDeterminesWeights) {
    built_model a = build_model(model_kind::cnn, 20, 7);
    built_model b = build_model(model_kind::cnn, 20, 7);
    built_model c = build_model(model_kind::cnn, 20, 8);
    const nn::tensor x = random_features(2, 20, 5);
    const nn::tensor ya = a.network->forward(x, false);
    const nn::tensor yb = b.network->forward(x, false);
    const nn::tensor yc = c.network->forward(x, false);
    EXPECT_FLOAT_EQ(ya[0], yb[0]);
    EXPECT_NE(ya[0], yc[0]);
}

TEST(ModelsTest, KindNames) {
    EXPECT_STREQ(model_kind_name(model_kind::mlp), "MLP");
    EXPECT_STREQ(model_kind_name(model_kind::cnn), "CNN (Proposed)");
    EXPECT_STREQ(model_kind_name(model_kind::lstm), "LSTM");
    EXPECT_STREQ(model_kind_name(model_kind::conv_lstm2d), "ConvLSTM2D");
}

TEST(ModelsTest, WindowShorterThanKernelRejected) {
    EXPECT_THROW(build_fallsense_cnn(2, 1), std::invalid_argument);
    EXPECT_THROW(build_model(model_kind::cnn, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::core
