#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthesizer.hpp"

namespace fallsense::core {
namespace {

data::trial make_trial(int task, std::uint64_t seed) {
    util::rng gen(seed);
    data::subject_profile subject;
    subject.id = 1;
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.5;
    tuning.locomotion_s = 2.0;
    tuning.post_fall_hold_s = 1.0;
    return data::synthesize_task(task, subject, tuning, data::synthesis_config{}, gen);
}

detector_config make_config(double threshold = 0.5) {
    detector_config c;
    c.window_samples = 20;
    c.overlap_fraction = 0.5;
    c.threshold = threshold;
    return c;
}

/// Scorer keyed on free fall: mean |a| much below 1 g in the window tail.
float freefall_scorer(std::span<const float> window) {
    double mag = 0.0;
    const std::size_t n = window.size() / 9;
    for (std::size_t i = n / 2; i < n; ++i) {
        const float ax = window[i * 9 + 0];
        const float ay = window[i * 9 + 1];
        const float az = window[i * 9 + 2];
        mag += std::sqrt(static_cast<double>(ax) * ax + ay * ay + az * az);
    }
    mag /= static_cast<double>(n - n / 2);
    return static_cast<float>(std::clamp(1.3 - mag, 0.0, 1.0));
}

TEST(StreamingDetectorTest, ScoresEveryHopAfterWarmup) {
    streaming_detector det(make_config(1.0), [](std::span<const float>) { return 0.3f; });
    std::size_t scored = 0;
    const data::trial t = make_trial(6, 1);
    for (std::size_t i = 0; i < t.sample_count(); ++i) {
        det.push(t.samples[i]);
        if (!std::isnan(det.last_score())) ++scored;
    }
    EXPECT_EQ(det.samples_seen(), t.sample_count());
    EXPECT_GT(scored, 0u);
}

TEST(StreamingDetectorTest, DetectsFreeFallInFallTrial) {
    const data::trial t = make_trial(30, 2);
    streaming_detector det(make_config(0.65), freefall_scorer);
    bool detected = false;
    std::size_t detect_at = 0;
    for (std::size_t i = 0; i < t.sample_count(); ++i) {
        if (const auto d = det.push(t.samples[i]); d && !detected) {
            detected = true;
            detect_at = d->sample_index;
        }
    }
    ASSERT_TRUE(detected);
    // The triggering window must overlap the falling phase.
    EXPECT_GE(detect_at + 20, t.fall->onset_index);
}

TEST(StreamingDetectorTest, QuietOnStandingTrial) {
    const data::trial t = make_trial(1, 3);
    streaming_detector det(make_config(0.65), freefall_scorer);
    for (std::size_t i = 0; i < t.sample_count(); ++i) {
        EXPECT_FALSE(det.push(t.samples[i]).has_value()) << "tick " << i;
    }
}

TEST(StreamingDetectorTest, MatchesBatchWindowingCadence) {
    // With window W and overlap 50%, scores happen at ticks W, W+hop, ...
    detector_config c = make_config(1.0);
    streaming_detector det(c, [](std::span<const float>) { return 0.5f; });
    const data::trial t = make_trial(1, 4);
    std::vector<std::size_t> scored_at;
    float prev = -1.0f;
    for (std::size_t i = 0; i < 60; ++i) {
        det.push(t.samples[i]);
        if (!std::isnan(det.last_score()) && prev < 0.0f) {
            scored_at.push_back(i);
            prev = 1.0f;
        }
    }
    ASSERT_FALSE(scored_at.empty());
    EXPECT_EQ(scored_at.front(), 19u);  // first full window at tick 20 (index 19)
}

TEST(StreamingDetectorTest, ResetClearsEverything) {
    const data::trial t = make_trial(6, 5);
    streaming_detector det(make_config(0.9), freefall_scorer);
    for (std::size_t i = 0; i < 50; ++i) det.push(t.samples[i]);
    det.reset();
    EXPECT_EQ(det.samples_seen(), 0u);
    EXPECT_TRUE(std::isnan(det.last_score()));
}

TEST(StreamingDetectorTest, ResetReproducesFreshDetectionSequence) {
    // After reset() a detector must replay a trial exactly like a freshly
    // constructed one: same scores at every tick, same trigger indices.
    // Pins that reset clears the filters, fusion attitude, ring buffer and
    // debounce run — a stale remnant in any of them shifts the sequence.
    const data::trial t = make_trial(30, 11);
    const detector_config c = make_config(0.65);

    const auto run = [&](streaming_detector& det) {
        std::vector<std::pair<std::size_t, float>> events;
        std::vector<float> scores;
        for (const data::raw_sample& s : t.samples) {
            if (const auto d = det.push(s)) events.emplace_back(d->sample_index, d->probability);
            scores.push_back(det.last_score());
        }
        return std::make_pair(events, scores);
    };

    streaming_detector recycled(c, freefall_scorer);
    const data::trial warmup = make_trial(6, 12);  // pollute all internal state
    for (const data::raw_sample& s : warmup.samples) recycled.push(s);
    recycled.reset();

    streaming_detector fresh(c, freefall_scorer);
    const auto [fresh_events, fresh_scores] = run(fresh);
    const auto [recycled_events, recycled_scores] = run(recycled);

    ASSERT_FALSE(fresh_events.empty());
    EXPECT_EQ(recycled_events, fresh_events);
    ASSERT_EQ(recycled_scores.size(), fresh_scores.size());
    for (std::size_t i = 0; i < fresh_scores.size(); ++i) {
        if (std::isnan(fresh_scores[i])) {
            EXPECT_TRUE(std::isnan(recycled_scores[i])) << "tick " << i;
        } else {
            EXPECT_EQ(recycled_scores[i], fresh_scores[i]) << "tick " << i;
        }
    }
}

TEST(StreamingDetectorTest, WindowContentIsChronological) {
    // Feed an index ramp through a pass-through scorer and check ordering.
    detector_config c = make_config(1.0);
    c.preprocess.cutoff_hz = 45.0;  // nearly transparent filter
    std::vector<float> captured;
    streaming_detector det(c, [&](std::span<const float> w) {
        captured.assign(w.begin(), w.end());
        return 0.0f;
    });
    data::raw_sample s;
    for (std::size_t i = 0; i < 25; ++i) {
        s.accel = {static_cast<float>(i), 0.0f, 1.0f};
        s.gyro = {0.0f, 0.0f, 0.0f};
        det.push(s);
    }
    ASSERT_EQ(captured.size(), 20u * 9u);
    // ax channel must be increasing across the window (filter is smooth
    // and the ramp monotone).
    for (std::size_t i = 1; i < 20; ++i) {
        EXPECT_GE(captured[i * 9 + 0] + 0.5f, captured[(i - 1) * 9 + 0]);
    }
}

TEST(StreamingDetectorTest, DebounceRequiresConsecutiveWindows) {
    // A scorer that fires on exactly one window: with consecutive_required=2
    // the single positive window must NOT trigger.
    detector_config c = make_config(0.5);
    c.consecutive_required = 2;
    std::size_t calls = 0;
    streaming_detector det(c, [&](std::span<const float>) {
        ++calls;
        return calls == 3 ? 0.9f : 0.1f;  // only the third scored window is hot
    });
    const data::trial t = make_trial(1, 20);
    for (const data::raw_sample& s : t.samples) {
        EXPECT_FALSE(det.push(s).has_value());
    }
    EXPECT_GT(calls, 4u);
}

TEST(StreamingDetectorTest, DebounceFiresOnSustainedPositives) {
    detector_config c = make_config(0.5);
    c.consecutive_required = 2;
    std::size_t calls = 0;
    streaming_detector det(c, [&](std::span<const float>) {
        ++calls;
        return calls >= 3 ? 0.9f : 0.1f;  // hot from the third window onward
    });
    const data::trial t = make_trial(1, 21);
    std::size_t fired_at_call = 0;
    for (const data::raw_sample& s : t.samples) {
        if (det.push(s) && fired_at_call == 0) fired_at_call = calls;
    }
    // Needs windows 3 and 4 both hot: fires at the 4th scored window.
    EXPECT_EQ(fired_at_call, 4u);
}

TEST(StreamingDetectorTest, DefaultDebounceIsSingleWindow) {
    detector_config c = make_config(0.5);
    ASSERT_EQ(c.consecutive_required, 1u);
    std::size_t calls = 0;
    streaming_detector det(c, [&](std::span<const float>) {
        ++calls;
        return calls == 2 ? 0.9f : 0.1f;
    });
    const data::trial t = make_trial(1, 22);
    bool fired = false;
    for (const data::raw_sample& s : t.samples) fired |= det.push(s).has_value();
    EXPECT_TRUE(fired);
}

TEST(StreamingDetectorTest, ConfigValidation) {
    EXPECT_THROW(streaming_detector(detector_config{.window_samples = 0},
                                    [](std::span<const float>) { return 0.0f; }),
                 std::invalid_argument);
    detector_config bad = make_config();
    bad.threshold = 1.5;
    EXPECT_THROW(streaming_detector(bad, [](std::span<const float>) { return 0.0f; }),
                 std::invalid_argument);
    EXPECT_THROW(streaming_detector(make_config(), nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::core
