#include "core/windowing.hpp"

#include <gtest/gtest.h>

#include "data/synthesizer.hpp"

namespace fallsense::core {
namespace {

data::trial make_trial(int task, std::uint64_t seed) {
    util::rng gen(seed);
    data::subject_profile subject;
    subject.id = 4;
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.5;
    tuning.locomotion_s = 2.0;
    tuning.post_fall_hold_s = 1.0;
    data::trial t = data::synthesize_task(task, subject, tuning, data::synthesis_config{}, gen);
    t.trial_index = 2;
    return t;
}

windowing_config config_400ms() {
    windowing_config c;
    c.segmentation = dsp::make_segmentation(400.0, 0.5, 100.0);
    return c;
}

TEST(WindowingTest, AdlSegmentsAllNegative) {
    const data::trial t = make_trial(6, 1);
    const auto windows = extract_windows(t, config_400ms());
    EXPECT_FALSE(windows.empty());
    for (const window_example& w : windows) {
        EXPECT_FLOAT_EQ(w.label, 0.0f);
        EXPECT_FALSE(w.trial_is_fall);
        EXPECT_EQ(w.subject_id, 4);
        EXPECT_EQ(w.task_id, 6);
        EXPECT_EQ(w.trial_index, 2);
        EXPECT_EQ(w.features.size(), 40u * 9u);
    }
}

TEST(WindowingTest, FallTrialHasPositiveAndNegativeSegments) {
    const data::trial t = make_trial(30, 2);
    const auto windows = extract_windows(t, config_400ms());
    std::size_t positives = 0, negatives = 0;
    for (const window_example& w : windows) {
        (w.label > 0.5f ? positives : negatives) += 1;
        EXPECT_TRUE(w.trial_is_fall);
    }
    EXPECT_GT(positives, 0u);
    EXPECT_GT(negatives, 0u);  // the pre-fall walking part
}

TEST(WindowingTest, TruncatedSliceNeverEnters) {
    // No kept segment may extend past impact - 150 ms.
    const data::trial t = make_trial(30, 3);
    const windowing_config c = config_400ms();
    const auto windows = extract_windows(t, c);
    const std::size_t usable_end = t.fall->impact_index - 15;  // 150 ms at 100 Hz
    // Count how many samples fit: every window with end <= usable_end is in;
    // reconstruct ends from count of all stream segments.
    const auto starts = dsp::segment_starts(t.sample_count(), c.segmentation);
    std::size_t kept = 0;
    for (const std::size_t s : starts) {
        if (s + c.segmentation.window_samples <= usable_end) ++kept;
    }
    EXPECT_EQ(windows.size(), kept);
}

TEST(WindowingTest, PositiveLabelsRequireMinimumOverlap) {
    const data::trial t = make_trial(28, 4);
    windowing_config c = config_400ms();
    c.min_overlap_fraction = 0.35;  // 14 samples of a 40-sample window
    c.min_overlap_ms = 50.0;
    const auto windows = extract_windows(t, c);
    const std::size_t onset = t.fall->onset_index;
    const std::size_t usable_end = t.fall->impact_index - 15;
    const auto starts = dsp::segment_starts(t.sample_count(), c.segmentation);
    std::size_t wi = 0;
    for (const std::size_t s : starts) {
        const std::size_t end = s + 40;
        if (end > usable_end) continue;
        const std::size_t ov_begin = std::max(s, onset);
        const std::size_t ov_end = std::min(end, usable_end);
        const std::size_t overlap = ov_end > ov_begin ? ov_end - ov_begin : 0;
        ASSERT_LT(wi, windows.size());
        EXPECT_EQ(windows[wi].label > 0.5f, overlap >= 14u) << "segment at " << s;
        ++wi;
    }
}

TEST(WindowingTest, OverlapFractionScalesWithWindow) {
    // The same trial labeled at 200 ms vs 400 ms: the minimum overlap in
    // samples scales with the window, keeping the positive-class definition
    // consistent (fraction-based labeling).
    const data::trial t = make_trial(30, 10);
    windowing_config c200;
    c200.segmentation = dsp::make_segmentation(200.0, 0.5, 100.0);
    windowing_config c400 = config_400ms();
    const auto w200 = extract_windows(t, c200);
    const auto w400 = extract_windows(t, c400);
    auto positives = [](const std::vector<window_example>& w) {
        std::size_t n = 0;
        for (const auto& e : w) n += e.label > 0.5f ? 1 : 0;
        return n;
    };
    // Both window sizes must find positives in a fall trial.
    EXPECT_GT(positives(w200), 0u);
    EXPECT_GT(positives(w400), 0u);
}

TEST(WindowingTest, SubjectFilterRestricts) {
    std::vector<data::trial> trials{make_trial(6, 5), make_trial(6, 6)};
    trials[1].subject_id = 99;
    const std::vector<int> only_99{99};
    const auto windows = extract_windows(trials, config_400ms(), &only_99);
    EXPECT_FALSE(windows.empty());
    for (const window_example& w : windows) EXPECT_EQ(w.subject_id, 99);
}

TEST(WindowingTest, ToLabeledDataPacksRows) {
    const data::trial t = make_trial(6, 7);
    const auto windows = extract_windows(t, config_400ms());
    const nn::labeled_data data = to_labeled_data(windows, 40);
    EXPECT_EQ(data.features.shape(), (nn::shape_t{windows.size(), 40, 9}));
    EXPECT_EQ(data.labels.size(), windows.size());
    // Spot-check a row copy.
    EXPECT_FLOAT_EQ(data.features.at({0, 0, 0}), windows[0].features[0]);
}

TEST(WindowingTest, ToSegmentRecordsAttachesProbabilities) {
    const data::trial t = make_trial(6, 8);
    const auto windows = extract_windows(t, config_400ms());
    std::vector<float> probs(windows.size(), 0.25f);
    const auto records = to_segment_records(windows, probs);
    ASSERT_EQ(records.size(), windows.size());
    EXPECT_FLOAT_EQ(records[0].probability, 0.25f);
    EXPECT_EQ(records[0].task_id, 6);
    std::vector<float> wrong(windows.size() + 1);
    EXPECT_THROW(to_segment_records(windows, wrong), std::invalid_argument);
}

TEST(WindowingTest, OverlapIncreasesSegmentCount) {
    const data::trial t = make_trial(6, 9);
    windowing_config none = config_400ms();
    none.segmentation.overlap_fraction = 0.0;
    windowing_config half = config_400ms();
    EXPECT_GT(extract_windows(t, half).size(), extract_windows(t, none).size());
}

}  // namespace
}  // namespace fallsense::core
