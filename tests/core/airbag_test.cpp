#include "core/airbag.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthesizer.hpp"

namespace fallsense::core {
namespace {

data::trial make_fall_trial(std::uint64_t seed, int task = 30) {
    util::rng gen(seed);
    data::subject_profile subject;
    subject.id = 1;
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.5;
    tuning.locomotion_s = 2.0;
    tuning.post_fall_hold_s = 1.0;
    return data::synthesize_task(task, subject, tuning, data::synthesis_config{}, gen);
}

float freefall_scorer(std::span<const float> window) {
    double mag = 0.0;
    const std::size_t n = window.size() / 9;
    for (std::size_t i = n / 2; i < n; ++i) {
        const float ax = window[i * 9 + 0];
        const float ay = window[i * 9 + 1];
        const float az = window[i * 9 + 2];
        mag += std::sqrt(static_cast<double>(ax) * ax + ay * ay + az * az);
    }
    mag /= static_cast<double>(n - n / 2);
    return static_cast<float>(std::clamp(1.3 - mag, 0.0, 1.0));
}

TEST(AirbagControllerTest, StateMachineProgression) {
    airbag_controller bag(150.0, 100.0);
    EXPECT_EQ(bag.state(), airbag_state::idle);
    bag.trigger(100);
    EXPECT_EQ(bag.state(), airbag_state::inflating);
    EXPECT_EQ(*bag.inflated_index(), 115u);  // 150 ms at 100 Hz
    bag.tick(110);
    EXPECT_EQ(bag.state(), airbag_state::inflating);
    bag.tick(115);
    EXPECT_EQ(bag.state(), airbag_state::inflated);
}

TEST(AirbagControllerTest, TriggerIsIdempotent) {
    airbag_controller bag;
    bag.trigger(50);
    bag.trigger(80);  // ignored
    EXPECT_EQ(*bag.trigger_index(), 50u);
}

TEST(AirbagControllerTest, ResetReturnsToIdle) {
    airbag_controller bag;
    bag.trigger(10);
    bag.reset();
    EXPECT_EQ(bag.state(), airbag_state::idle);
    EXPECT_FALSE(bag.trigger_index().has_value());
}

TEST(AirbagControllerTest, Validation) {
    EXPECT_THROW(airbag_controller(0.0, 100.0), std::invalid_argument);
    EXPECT_THROW(airbag_controller(150.0, 0.0), std::invalid_argument);
}

TEST(EvaluateProtectionTest, DetectsAndComputesMargin) {
    const data::trial t = make_fall_trial(1);
    detector_config c;
    c.window_samples = 20;
    c.overlap_fraction = 0.75;  // score every 5 ticks: reactive
    c.threshold = 0.5;
    const protection_outcome outcome = evaluate_protection(t, c, freefall_scorer);
    ASSERT_TRUE(outcome.detected);
    EXPECT_GT(outcome.trigger_to_impact_ms, 0.0);
    EXPECT_DOUBLE_EQ(outcome.margin_ms, outcome.trigger_to_impact_ms - 150.0);
    EXPECT_EQ(outcome.protected_in_time, outcome.margin_ms >= 0.0);
}

TEST(EvaluateProtectionTest, UndetectedWhenScorerBlind) {
    const data::trial t = make_fall_trial(2);
    detector_config c;
    c.window_samples = 20;
    const protection_outcome outcome =
        evaluate_protection(t, c, [](std::span<const float>) { return 0.0f; });
    EXPECT_FALSE(outcome.detected);
    EXPECT_FALSE(outcome.protected_in_time);
}

TEST(EvaluateProtectionTest, TriggerAlwaysInsideFallingPhase) {
    for (const std::uint64_t seed : {3u, 4u, 5u}) {
        const data::trial t = make_fall_trial(seed, 28);
        detector_config c;
        c.window_samples = 20;
        c.overlap_fraction = 0.75;
        const protection_outcome outcome = evaluate_protection(t, c, freefall_scorer);
        if (outcome.detected) {
            EXPECT_GE(outcome.trigger_sample, t.fall->onset_index);
            EXPECT_LE(outcome.trigger_sample, t.fall->impact_index);
        }
    }
}

TEST(EvaluateProtectionTest, RejectsAdlTrial) {
    util::rng gen(6);
    data::subject_profile subject;
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.0;
    const data::trial adl =
        data::synthesize_task(1, subject, tuning, data::synthesis_config{}, gen);
    detector_config c;
    EXPECT_THROW(evaluate_protection(adl, c, freefall_scorer), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::core
