#include "core/threshold_detector.hpp"

#include <gtest/gtest.h>

#include "data/synthesizer.hpp"
#include "data/taxonomy.hpp"

namespace fallsense::core {
namespace {

data::trial make_trial(int task, std::uint64_t seed) {
    util::rng gen(seed);
    data::subject_profile subject;
    subject.id = 1;
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.5;
    tuning.locomotion_s = 2.0;
    tuning.post_fall_hold_s = 1.0;
    return data::synthesize_task(task, subject, tuning, data::synthesis_config{}, gen);
}

TEST(ThresholdDetectorTest, QuietWhileStanding) {
    threshold_detector det;
    const data::trial t = make_trial(1, 1);
    for (const data::raw_sample& s : t.samples) {
        EXPECT_FALSE(det.push(s).has_value());
    }
    EXPECT_NEAR(det.velocity_estimate(), 0.0, 0.3);
}

TEST(ThresholdDetectorTest, QuietWhileWalking) {
    threshold_detector det;
    const data::trial t = make_trial(6, 2);
    std::size_t fires = 0;
    for (const data::raw_sample& s : t.samples) fires += det.push(s) ? 1 : 0;
    EXPECT_EQ(fires, 0u);
}

TEST(ThresholdDetectorTest, FiresOnDeepFall) {
    // Fall from height (39): near-total unloading — the baseline's favorite.
    const data::trial t = make_trial(39, 3);
    threshold_detector det;
    bool fired_in_window = false;
    for (std::size_t i = 0; i <= t.fall->impact_index; ++i) {
        if (const auto d = det.push(t.samples[i])) {
            if (d->sample_index >= t.fall->onset_index) fired_in_window = true;
        }
    }
    EXPECT_TRUE(fired_in_window);
}

TEST(ThresholdDetectorTest, VelocityEstimateGrowsInFreeFall) {
    threshold_detector det;
    data::raw_sample freefall;
    freefall.accel = {0.02f, 0.02f, 0.05f};
    for (int i = 0; i < 40; ++i) det.push(freefall);  // 400 ms of free fall
    // v ~ g * t ~ 9.8 * 0.4 ~ 3.9 m/s downward (leak reduces slightly).
    EXPECT_LT(det.velocity_estimate(), -2.5);
}

TEST(ThresholdDetectorTest, RefractoryPeriodSuppressesRetrigger) {
    threshold_config cfg;
    cfg.refractory_ms = 500.0;
    threshold_detector det(cfg);
    data::raw_sample freefall;
    freefall.accel = {0.0f, 0.0f, 0.1f};
    std::size_t fires = 0;
    for (int i = 0; i < 60; ++i) fires += det.push(freefall) ? 1 : 0;
    EXPECT_EQ(fires, 1u);  // one trigger, then refractory
}

TEST(ThresholdDetectorTest, ResetRearms) {
    threshold_detector det;
    data::raw_sample freefall;
    freefall.accel = {0.0f, 0.0f, 0.1f};
    for (int i = 0; i < 30; ++i) det.push(freefall);
    det.reset();
    EXPECT_EQ(det.samples_seen(), 0u);
    EXPECT_DOUBLE_EQ(det.velocity_estimate(), 0.0);
}

TEST(ThresholdDetectorTest, ConfigValidation) {
    threshold_config bad;
    bad.freefall_threshold_g = 1.2;
    EXPECT_THROW(threshold_detector{bad}, std::invalid_argument);
    threshold_config bad2;
    bad2.velocity_threshold_ms = 0.5;
    EXPECT_THROW(threshold_detector{bad2}, std::invalid_argument);
    threshold_config bad3;
    bad3.velocity_leak_per_tick = 0.0;
    EXPECT_THROW(threshold_detector{bad3}, std::invalid_argument);
}

TEST(ThresholdBaselineTest, EventCountsOverMixedTrials) {
    std::vector<data::trial> trials;
    for (const int task : {1, 6, 39, 40, 31}) {
        trials.push_back(make_trial(task, 10 + static_cast<std::uint64_t>(task)));
    }
    const threshold_event_counts counts = evaluate_threshold_baseline(trials);
    EXPECT_EQ(counts.falls_total, 3u);
    EXPECT_EQ(counts.adl_total, 2u);
    EXPECT_GE(counts.falls_detected, 1u);  // deep height falls at minimum
    if (counts.falls_detected > 0) {
        EXPECT_GT(counts.mean_lead_time_ms, 0.0);
    }
}

TEST(ThresholdBaselineTest, JumpTasksAreItsWeakness) {
    // The ballistic flight of jump tasks looks exactly like free fall to a
    // threshold rule — the structural reason learned models win (paper
    // Table I discussion).
    std::vector<data::trial> trials;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        trials.push_back(make_trial(44, 100 + seed));
    }
    threshold_config sensitive;
    sensitive.velocity_threshold_ms = -0.8;
    const threshold_event_counts counts = evaluate_threshold_baseline(trials, sensitive);
    EXPECT_EQ(counts.adl_total, 6u);
    EXPECT_GT(counts.adl_false_alarms, 0u);
}

}  // namespace
}  // namespace fallsense::core
