#include "core/preprocess.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthesizer.hpp"

namespace fallsense::core {
namespace {

data::trial make_trial(int task, std::uint64_t seed) {
    util::rng gen(seed);
    data::subject_profile subject;
    subject.id = 1;
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.5;
    tuning.locomotion_s = 2.0;
    tuning.post_fall_hold_s = 0.8;
    return data::synthesize_task(task, subject, tuning, data::synthesis_config{}, gen);
}

TEST(PreprocessTest, OutputHasNineChannelsPerSample) {
    const data::trial t = make_trial(1, 1);
    const std::vector<float> stream = preprocess_trial(t, preprocess_config{});
    EXPECT_EQ(stream.size(), t.sample_count() * k_feature_channels);
}

TEST(PreprocessTest, StandingStreamIsCalm) {
    const data::trial t = make_trial(1, 2);
    const std::vector<float> stream = preprocess_trial(t, preprocess_config{});
    // After the filter settles, az ~ 1 g and pitch/roll ~ 0.
    const std::size_t n = t.sample_count();
    for (std::size_t i = n / 2; i < n; ++i) {
        EXPECT_NEAR(stream[i * 9 + 2], 1.0f, 0.1f);   // az
        EXPECT_NEAR(stream[i * 9 + 6], 0.0f, 0.15f);  // pitch
        EXPECT_NEAR(stream[i * 9 + 7], 0.0f, 0.15f);  // roll
    }
}

TEST(PreprocessTest, FilterSuppressesNoise) {
    // The filtered accel variance must be lower than the raw variance for a
    // static trial (whose only content above 5 Hz is noise).
    const data::trial t = make_trial(1, 3);
    const std::vector<float> stream = preprocess_trial(t, preprocess_config{});
    const std::size_t n = t.sample_count();
    double raw_var = 0.0, filt_var = 0.0, raw_mean = 0.0, filt_mean = 0.0;
    for (std::size_t i = n / 2; i < n; ++i) {
        raw_mean += t.samples[i].accel[0];
        filt_mean += stream[i * 9 + 0];
    }
    raw_mean /= static_cast<double>(n - n / 2);
    filt_mean /= static_cast<double>(n - n / 2);
    for (std::size_t i = n / 2; i < n; ++i) {
        raw_var += std::pow(t.samples[i].accel[0] - raw_mean, 2);
        filt_var += std::pow(stream[i * 9 + 0] - filt_mean, 2);
    }
    EXPECT_LT(filt_var, raw_var * 0.8);
}

TEST(PreprocessTest, FallProducesLargePitchExcursion) {
    const data::trial t = make_trial(30, 4);  // forward fall while walking
    const std::vector<float> stream = preprocess_trial(t, preprocess_config{});
    float max_pitch = 0.0f;
    for (std::size_t i = 0; i < t.sample_count(); ++i) {
        max_pitch = std::max(max_pitch, stream[i * 9 + 6]);
    }
    EXPECT_GT(max_pitch, 0.8f);  // forward fall pitches > ~45 degrees
}

TEST(PreprocessTest, RejectsUnalignedTrial) {
    data::trial t = make_trial(1, 5);
    t.accel_units = data::accel_unit::meters_per_s2;
    EXPECT_THROW(preprocess_trial(t, preprocess_config{}), std::invalid_argument);
}

TEST(PreprocessTest, EmptyTrialRejected) {
    data::trial t;
    EXPECT_THROW(preprocess_trial(t, preprocess_config{}), std::logic_error);
}

}  // namespace
}  // namespace fallsense::core
