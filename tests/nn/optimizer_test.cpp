#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fallsense::nn {
namespace {

parameter make_param(std::initializer_list<float> values) {
    parameter p("p", {values.size()});
    std::size_t i = 0;
    for (const float v : values) p.value[i++] = v;
    return p;
}

TEST(SgdTest, BasicStepDescendsGradient) {
    parameter p = make_param({1.0f});
    p.grad[0] = 2.0f;
    sgd opt({&p}, 0.1);
    opt.step();
    EXPECT_NEAR(p.value[0], 0.8f, 1e-6);
    EXPECT_FLOAT_EQ(p.grad[0], 0.0f);  // cleared
}

TEST(SgdTest, MomentumAccumulates) {
    parameter p = make_param({0.0f});
    sgd opt({&p}, 0.1, 0.9);
    p.grad[0] = 1.0f;
    opt.step();  // v = -0.1, x = -0.1
    p.grad[0] = 1.0f;
    opt.step();  // v = -0.19, x = -0.29
    EXPECT_NEAR(p.value[0], -0.29f, 1e-6);
}

TEST(AdamTest, FirstStepIsLearningRateSized) {
    parameter p = make_param({1.0f});
    adam opt({&p}, 0.01);
    p.grad[0] = 0.5f;
    opt.step();
    // Bias-corrected Adam takes ~lr-sized first step regardless of grad scale.
    EXPECT_NEAR(p.value[0], 1.0f - 0.01f, 1e-3);
}

TEST(AdamTest, ConvergesOnQuadratic) {
    // Minimize f(x) = (x - 3)^2 from x = 0.
    parameter p = make_param({0.0f});
    adam opt({&p}, 0.1);
    for (int i = 0; i < 500; ++i) {
        p.grad[0] = 2.0f * (p.value[0] - 3.0f);
        opt.step();
    }
    EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
}

TEST(AdamTest, HandlesMultipleParameters) {
    parameter a = make_param({5.0f});
    parameter b = make_param({-5.0f, 2.0f});
    adam opt({&a, &b}, 0.2);
    for (int i = 0; i < 300; ++i) {
        a.grad[0] = 2.0f * a.value[0];
        b.grad[0] = 2.0f * b.value[0];
        b.grad[1] = 2.0f * (b.value[1] - 1.0f);
        opt.step();
    }
    EXPECT_NEAR(a.value[0], 0.0f, 0.05f);
    EXPECT_NEAR(b.value[0], 0.0f, 0.05f);
    EXPECT_NEAR(b.value[1], 1.0f, 0.05f);
}

TEST(OptimizerTest, ZeroGradClears) {
    parameter p = make_param({1.0f});
    p.grad[0] = 7.0f;
    sgd opt({&p}, 0.1);
    opt.zero_grad();
    EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
}

TEST(OptimizerTest, ConstructionValidation) {
    EXPECT_THROW(sgd({}, 0.1), std::invalid_argument);
    parameter p = make_param({1.0f});
    EXPECT_THROW(sgd({&p}, -0.1), std::invalid_argument);
    EXPECT_THROW(sgd({&p}, 0.1, 1.5), std::invalid_argument);
    EXPECT_THROW(adam({&p}, 0.1, 1.0), std::invalid_argument);
    EXPECT_THROW(adam({&p}, 0.1, 0.9, 0.999, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::nn
