#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace fallsense::nn {
namespace {

std::unique_ptr<sequential> make_net(std::uint64_t seed) {
    util::rng gen(seed);
    auto net = std::make_unique<sequential>();
    net->emplace<dense>(4, 6, gen, true, "d0");
    net->emplace<relu>();
    net->emplace<dense>(6, 1, gen, false, "out");
    return net;
}

TEST(SerializeTest, RoundTripPreservesWeights) {
    auto src = make_net(1);
    std::stringstream buffer;
    save_weights(*src, buffer);

    auto dst = make_net(2);  // different init
    load_weights(*dst, buffer);

    const auto ps = src->parameters();
    const auto pd = dst->parameters();
    ASSERT_EQ(ps.size(), pd.size());
    for (std::size_t i = 0; i < ps.size(); ++i) {
        for (std::size_t j = 0; j < ps[i]->value.size(); ++j) {
            EXPECT_FLOAT_EQ(ps[i]->value[j], pd[i]->value[j]);
        }
    }
}

TEST(SerializeTest, RoundTripPreservesPredictions) {
    auto src = make_net(3);
    const tensor x({2, 4}, {0.1f, -0.2f, 0.3f, 0.4f, 1.0f, -1.0f, 0.5f, -0.5f});
    const tensor y_src = src->forward(x, false);

    std::stringstream buffer;
    save_weights(*src, buffer);
    auto dst = make_net(4);
    load_weights(*dst, buffer);
    const tensor y_dst = dst->forward(x, false);
    for (std::size_t i = 0; i < y_src.size(); ++i) EXPECT_FLOAT_EQ(y_src[i], y_dst[i]);
}

TEST(SerializeTest, RejectsBadMagic) {
    auto net = make_net(5);
    std::stringstream buffer("XXXXjunkjunkjunk");
    EXPECT_THROW(load_weights(*net, buffer), std::runtime_error);
}

TEST(SerializeTest, RejectsTruncatedStream) {
    auto src = make_net(6);
    std::stringstream buffer;
    save_weights(*src, buffer);
    const std::string full = buffer.str();
    std::stringstream truncated(full.substr(0, full.size() / 2));
    auto dst = make_net(7);
    EXPECT_THROW(load_weights(*dst, truncated), std::runtime_error);
}

TEST(SerializeTest, RejectsArchitectureMismatch) {
    auto src = make_net(8);
    std::stringstream buffer;
    save_weights(*src, buffer);

    util::rng gen(9);
    sequential other;
    other.emplace<dense>(4, 5, gen, true, "d0");  // different width
    EXPECT_THROW(load_weights(other, buffer), std::runtime_error);
}

TEST(SerializeTest, RejectsParameterNameMismatch) {
    auto src = make_net(10);
    std::stringstream buffer;
    save_weights(*src, buffer);

    util::rng gen(11);
    sequential other;
    other.emplace<dense>(4, 6, gen, true, "renamed");
    other.emplace<relu>();
    other.emplace<dense>(6, 1, gen, false, "out");
    EXPECT_THROW(load_weights(other, buffer), std::runtime_error);
}

TEST(SerializeTest, LoadsHeaderlessVersionZeroStream) {
    // Files written before the magic/version header started directly at
    // the u64 parameter count; stripping the 8-byte header off a current
    // stream reproduces that layout exactly.
    auto src = make_net(20);
    std::stringstream buffer;
    save_weights(*src, buffer);
    std::stringstream headerless(buffer.str().substr(8));

    auto dst = make_net(21);
    load_weights(*dst, headerless);
    const auto ps = src->parameters();
    const auto pd = dst->parameters();
    ASSERT_EQ(ps.size(), pd.size());
    for (std::size_t i = 0; i < ps.size(); ++i) {
        for (std::size_t j = 0; j < ps[i]->value.size(); ++j) {
            EXPECT_FLOAT_EQ(ps[i]->value[j], pd[i]->value[j]);
        }
    }
}

TEST(SerializeTest, RejectsFutureVersionWithTypedError) {
    auto src = make_net(22);
    std::stringstream buffer;
    save_weights(*src, buffer);
    std::string bytes = buffer.str();
    bytes[4] = 99;  // u32 version little-endian low byte
    std::stringstream future(bytes);

    auto dst = make_net(23);
    try {
        load_weights(*dst, future);
        FAIL() << "future version should not load";
    } catch (const serialize_error& e) {
        EXPECT_EQ(e.kind(), serialize_error_kind::bad_version);
    }
}

TEST(SerializeTest, ErrorKindsDistinguishTruncationFromMismatch) {
    auto src = make_net(24);
    std::stringstream buffer;
    save_weights(*src, buffer);
    const std::string full = buffer.str();

    auto dst = make_net(25);
    std::stringstream truncated(full.substr(0, full.size() / 2));
    try {
        load_weights(*dst, truncated);
        FAIL() << "truncated stream should not load";
    } catch (const serialize_error& e) {
        EXPECT_EQ(e.kind(), serialize_error_kind::truncated);
    }

    util::rng gen(26);
    sequential other;
    other.emplace<dense>(4, 5, gen, true, "d0");  // wrong parameter count
    std::stringstream again(full);
    try {
        load_weights(other, again);
        FAIL() << "mismatched model should not load";
    } catch (const serialize_error& e) {
        EXPECT_EQ(e.kind(), serialize_error_kind::mismatch);
    }
}

TEST(SerializeTest, FileRoundTrip) {
    const auto path = std::filesystem::temp_directory_path() / "fallsense_weights_test.bin";
    auto src = make_net(12);
    save_weights_file(*src, path);
    auto dst = make_net(13);
    load_weights_file(*dst, path);
    const auto ps = src->parameters();
    const auto pd = dst->parameters();
    for (std::size_t i = 0; i < ps.size(); ++i) {
        EXPECT_FLOAT_EQ(ps[i]->value[0], pd[i]->value[0]);
    }
    std::filesystem::remove(path);
}

TEST(SerializeTest, MissingFileThrows) {
    auto net = make_net(14);
    EXPECT_THROW(load_weights_file(*net, "/nonexistent/weights.bin"), std::runtime_error);
}

}  // namespace
}  // namespace fallsense::nn
