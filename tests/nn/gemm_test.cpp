// The GEMM substrate must agree with the legacy naive loops (which stay in
// nn::reference as ground truth) and must be bit-deterministic across
// thread counts — the two properties the training stack's correctness and
// the reproducibility contract rest on.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/gemm.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fallsense {
namespace {

std::vector<float> random_values(std::size_t n, std::uint64_t seed) {
    util::rng gen(seed);
    std::vector<float> v(n);
    for (float& x : v) x = static_cast<float>(gen.normal());
    return v;
}

nn::tensor random_tensor(nn::shape_t shape, std::uint64_t seed) {
    nn::tensor t(shape);
    const std::vector<float> v = random_values(t.size(), seed);
    std::copy(v.begin(), v.end(), t.data());
    return t;
}

/// Restores the default pool size even when an assertion fails mid-test.
struct thread_guard {
    ~thread_guard() { util::set_global_threads(0); }
};

TEST(GemmTest, GemmNNMatchesTripleLoop) {
    const std::size_t shapes[][3] = {{1, 1, 1},  {3, 5, 7},   {4, 8, 16},
                                     {7, 9, 13}, {33, 17, 5}, {64, 19, 912}};
    for (const auto& s : shapes) {
        const std::size_t m = s[0], n = s[1], k = s[2];
        const std::vector<float> a = random_values(m * k, 1 + m);
        const std::vector<float> b = random_values(k * n, 2 + n);
        std::vector<float> c = random_values(m * n, 3 + k);
        std::vector<float> expected = c;
        for (std::size_t i = 0; i < m; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                double acc = expected[i * n + j];
                for (std::size_t kk = 0; kk < k; ++kk) {
                    acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
                }
                expected[i * n + j] = static_cast<float>(acc);
            }
        }
        nn::gemm_nn(m, n, k, a.data(), b.data(), c.data(), /*accumulate=*/true);
        // Magnitude-relative tolerance: under FALLSENSE_SIMD=native the
        // FMA kernels round once where this double-accumulated reference
        // rounds per step, so long-k rows of large magnitude legitimately
        // drift past a fixed 1e-4.
        for (std::size_t i = 0; i < m * n; ++i) {
            EXPECT_NEAR(c[i], expected[i], 1e-4 * (1.0 + std::abs(expected[i])))
                << "m=" << m << " n=" << n << " k=" << k;
        }
    }
}

TEST(GemmTest, GemmTnAccMatchesTripleLoop) {
    // k = 1000 exercises the chunked-reduction path (grain 256 -> 4 chunks).
    const std::size_t m = 12, n = 7, k = 1000;
    const std::vector<float> a = random_values(k * m, 11);
    const std::vector<float> b = random_values(k * n, 12);
    std::vector<float> c = random_values(m * n, 13);
    std::vector<float> expected = c;
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t kk = 0; kk < k; ++kk) {
                acc += static_cast<double>(a[kk * m + i]) * b[kk * n + j];
            }
            expected[i * n + j] += static_cast<float>(acc);
        }
    }
    nn::gemm_tn_acc(m, n, k, a.data(), b.data(), c.data());
    for (std::size_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], expected[i], 1e-3);
}

TEST(GemmTest, GemmTnAccBitIdenticalAcrossThreadCounts) {
    thread_guard guard;
    const std::size_t m = 27, n = 16, k = 2048;
    const std::vector<float> a = random_values(k * m, 21);
    const std::vector<float> b = random_values(k * n, 22);
    const std::vector<float> c0 = random_values(m * n, 23);

    util::set_global_threads(1);
    std::vector<float> c1 = c0;
    nn::gemm_tn_acc(m, n, k, a.data(), b.data(), c1.data());

    util::set_global_threads(4);
    std::vector<float> c4 = c0;
    nn::gemm_tn_acc(m, n, k, a.data(), b.data(), c4.data());

    for (std::size_t i = 0; i < m * n; ++i) {
        EXPECT_EQ(c1[i], c4[i]) << "element " << i << " differs between 1 and 4 threads";
    }
}

TEST(GemmTest, Conv1dForwardBackwardMatchesNaiveReference) {
    const std::size_t shapes[][4] = {
        // batch, time, in_ch, out_ch (kernel fixed per case below)
        {2, 10, 3, 5},
        {4, 40, 3, 16},
        {3, 150, 3, 16},
        {1, 7, 9, 4},
    };
    const std::size_t kernels[] = {3, 3, 5, 7};
    for (std::size_t case_i = 0; case_i < 4; ++case_i) {
        const std::size_t batch = shapes[case_i][0], time = shapes[case_i][1];
        const std::size_t in_ch = shapes[case_i][2], out_ch = shapes[case_i][3];
        const std::size_t kernel = kernels[case_i];
        const std::size_t out_time = time - kernel + 1;

        util::rng gen(31 + case_i);
        nn::conv1d layer(in_ch, out_ch, kernel, gen);
        const nn::tensor x = random_tensor({batch, time, in_ch}, 41 + case_i);
        const nn::tensor gy = random_tensor({batch, out_time, out_ch}, 51 + case_i);

        const nn::tensor y = layer.forward(x, /*training=*/true);
        std::vector<float> y_ref(batch * out_time * out_ch);
        nn::reference::conv1d_forward(x.data(), layer.weight().value.data(),
                                      layer.bias().value.data(), batch, time, in_ch, out_ch,
                                      kernel, y_ref.data());
        ASSERT_EQ(y.size(), y_ref.size());
        for (std::size_t i = 0; i < y_ref.size(); ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-5);

        const nn::tensor gx = layer.backward(gy);
        std::vector<float> gx_ref(batch * time * in_ch, 0.0f);
        std::vector<float> gw_ref(kernel * in_ch * out_ch, 0.0f);
        std::vector<float> gb_ref(out_ch, 0.0f);
        nn::reference::conv1d_backward(x.data(), layer.weight().value.data(), gy.data(),
                                       batch, time, in_ch, out_ch, kernel, gx_ref.data(),
                                       gw_ref.data(), gb_ref.data());
        for (std::size_t i = 0; i < gx_ref.size(); ++i) EXPECT_NEAR(gx[i], gx_ref[i], 1e-5);
        for (std::size_t i = 0; i < gw_ref.size(); ++i) {
            EXPECT_NEAR(layer.weight().grad[i], gw_ref[i], 1e-4);
        }
        for (std::size_t i = 0; i < gb_ref.size(); ++i) {
            EXPECT_NEAR(layer.bias().grad[i], gb_ref[i], 1e-4);
        }
    }
}

TEST(GemmTest, DenseForwardBackwardMatchesNaiveReference) {
    const std::size_t shapes[][3] = {{1, 1, 1}, {5, 12, 8}, {32, 912, 64}, {17, 31, 3}};
    for (std::size_t case_i = 0; case_i < 4; ++case_i) {
        const std::size_t batch = shapes[case_i][0];
        const std::size_t in = shapes[case_i][1];
        const std::size_t out = shapes[case_i][2];

        util::rng gen(61 + case_i);
        nn::dense layer(in, out, gen);
        const nn::tensor x = random_tensor({batch, in}, 71 + case_i);
        const nn::tensor gy = random_tensor({batch, out}, 81 + case_i);

        const nn::tensor y = layer.forward(x, /*training=*/true);
        std::vector<float> y_ref(batch * out);
        nn::reference::dense_forward(x.data(), layer.weight().value.data(),
                                     layer.bias().value.data(), batch, in, out,
                                     y_ref.data());
        for (std::size_t i = 0; i < y_ref.size(); ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-5);

        const nn::tensor gx = layer.backward(gy);
        std::vector<float> gx_ref(batch * in, 0.0f);
        std::vector<float> gw_ref(in * out, 0.0f);
        std::vector<float> gb_ref(out, 0.0f);
        nn::reference::dense_backward(x.data(), layer.weight().value.data(), gy.data(),
                                      batch, in, out, gx_ref.data(), gw_ref.data(),
                                      gb_ref.data());
        for (std::size_t i = 0; i < gx_ref.size(); ++i) EXPECT_NEAR(gx[i], gx_ref[i], 1e-5);
        for (std::size_t i = 0; i < gw_ref.size(); ++i) {
            EXPECT_NEAR(layer.weight().grad[i], gw_ref[i], 1e-4);
        }
        for (std::size_t i = 0; i < gb_ref.size(); ++i) {
            EXPECT_NEAR(layer.bias().grad[i], gb_ref[i], 1e-4);
        }
    }
}

TEST(GemmTest, Conv1dRejectsInputShorterThanKernel) {
    util::rng gen(91);
    nn::conv1d layer(3, 8, 5, gen);
    const nn::tensor x = random_tensor({2, 4, 3}, 92);  // time 4 < kernel 5
    EXPECT_THROW(layer.forward(x, false), std::invalid_argument);
    EXPECT_THROW(layer.output_shape({4, 3}), std::invalid_argument);
}

TEST(GemmTest, Conv1dBitIdenticalAcrossThreadCounts) {
    thread_guard guard;
    const std::size_t batch = 16, time = 150, in_ch = 3, out_ch = 16, kernel = 3;
    const nn::tensor x = random_tensor({batch, time, in_ch}, 101);
    const nn::tensor gy = random_tensor({batch, time - kernel + 1, out_ch}, 102);

    auto run = [&](std::size_t threads) {
        util::set_global_threads(threads);
        util::rng gen(103);
        nn::conv1d layer(in_ch, out_ch, kernel, gen);
        nn::tensor y = layer.forward(x, true);
        nn::tensor gx = layer.backward(gy);
        return std::tuple<nn::tensor, nn::tensor, nn::tensor, nn::tensor>(
            std::move(y), std::move(gx), layer.weight().grad, layer.bias().grad);
    };
    const auto [y1, gx1, gw1, gb1] = run(1);
    const auto [y4, gx4, gw4, gb4] = run(4);
    for (std::size_t i = 0; i < y1.size(); ++i) ASSERT_EQ(y1[i], y4[i]);
    for (std::size_t i = 0; i < gx1.size(); ++i) ASSERT_EQ(gx1[i], gx4[i]);
    for (std::size_t i = 0; i < gw1.size(); ++i) ASSERT_EQ(gw1[i], gw4[i]);
    for (std::size_t i = 0; i < gb1.size(); ++i) ASSERT_EQ(gb1[i], gb4[i]);
}

}  // namespace
}  // namespace fallsense
