#include "nn/dense.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fallsense::nn {
namespace {

TEST(DenseTest, ForwardComputesAffineMap) {
    util::rng gen(1);
    dense layer(2, 3, gen);
    // Overwrite weights with a known matrix.
    layer.weight().value = tensor({2, 3}, {1, 2, 3, 4, 5, 6});
    layer.bias().value = tensor({3}, {0.5f, -0.5f, 1.0f});
    const tensor x({1, 2}, {1.0f, 2.0f});
    const tensor y = layer.forward(x, false);
    EXPECT_FLOAT_EQ(y.at({0, 0}), 1 * 1 + 2 * 4 + 0.5f);
    EXPECT_FLOAT_EQ(y.at({0, 1}), 1 * 2 + 2 * 5 - 0.5f);
    EXPECT_FLOAT_EQ(y.at({0, 2}), 1 * 3 + 2 * 6 + 1.0f);
}

TEST(DenseTest, ForwardHandlesBatches) {
    util::rng gen(2);
    dense layer(2, 1, gen);
    layer.weight().value = tensor({2, 1}, {1.0f, 1.0f});
    layer.bias().value = tensor({1}, {0.0f});
    const tensor x({3, 2}, {1, 2, 3, 4, 5, 6});
    const tensor y = layer.forward(x, false);
    EXPECT_FLOAT_EQ(y[0], 3.0f);
    EXPECT_FLOAT_EQ(y[1], 7.0f);
    EXPECT_FLOAT_EQ(y[2], 11.0f);
}

TEST(DenseTest, BackwardGradientsMatchManualDerivation) {
    util::rng gen(3);
    dense layer(2, 2, gen);
    layer.weight().value = tensor({2, 2}, {1, 2, 3, 4});
    layer.bias().value = tensor({2}, {0.0f, 0.0f});
    const tensor x({1, 2}, {5.0f, 7.0f});
    layer.forward(x, true);
    const tensor gy({1, 2}, {1.0f, 1.0f});
    const tensor gx = layer.backward(gy);
    // dL/dx_i = sum_o W[i][o] * gy[o]
    EXPECT_FLOAT_EQ(gx.at({0, 0}), 3.0f);
    EXPECT_FLOAT_EQ(gx.at({0, 1}), 7.0f);
    // dL/dW[i][o] = x[i] * gy[o]
    EXPECT_FLOAT_EQ(layer.weight().grad.at({0, 0}), 5.0f);
    EXPECT_FLOAT_EQ(layer.weight().grad.at({1, 1}), 7.0f);
    // dL/db[o] = gy[o]
    EXPECT_FLOAT_EQ(layer.bias().grad[0], 1.0f);
}

TEST(DenseTest, GradientsAccumulateAcrossCalls) {
    util::rng gen(4);
    dense layer(1, 1, gen);
    layer.weight().value = tensor({1, 1}, {2.0f});
    const tensor x({1, 1}, {3.0f});
    const tensor gy({1, 1}, {1.0f});
    layer.forward(x, true);
    layer.backward(gy);
    layer.forward(x, true);
    layer.backward(gy);
    EXPECT_FLOAT_EQ(layer.weight().grad[0], 6.0f);  // 3 + 3
}

TEST(DenseTest, ParametersExposed) {
    util::rng gen(5);
    dense layer(4, 8, gen, true, "mylayer");
    const auto params = layer.parameters();
    ASSERT_EQ(params.size(), 2u);
    EXPECT_EQ(params[0]->name, "mylayer.weight");
    EXPECT_EQ(params[0]->value.shape(), (shape_t{4, 8}));
    EXPECT_EQ(params[1]->value.shape(), (shape_t{8}));
}

TEST(DenseTest, InputValidation) {
    util::rng gen(6);
    dense layer(2, 2, gen);
    EXPECT_THROW(layer.forward(tensor({1, 3}), false), std::invalid_argument);
    EXPECT_THROW(layer.forward(tensor({4}), false), std::invalid_argument);
    EXPECT_THROW(layer.backward(tensor({1, 2})), std::logic_error);  // no forward yet
}

TEST(DenseTest, OutputShape) {
    util::rng gen(7);
    dense layer(6, 3, gen);
    EXPECT_EQ(layer.output_shape({6}), (shape_t{3}));
    EXPECT_THROW(layer.output_shape({5}), std::invalid_argument);
}

TEST(DenseTest, InitializationIsSeedDeterministic) {
    util::rng g1(9), g2(9);
    dense a(8, 8, g1), b(8, 8, g2);
    for (std::size_t i = 0; i < a.weight().value.size(); ++i) {
        EXPECT_FLOAT_EQ(a.weight().value[i], b.weight().value[i]);
    }
}

}  // namespace
}  // namespace fallsense::nn
