// Property sweep over the four architectures of Table III: each must be
// trainable end-to-end — a few epochs on a small separable segment problem
// must reduce the training loss and beat chance — and must be seed-
// deterministic.  This guards the whole backprop stack per architecture.
#include <gtest/gtest.h>

#include "core/models.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace fallsense::core {
namespace {

/// Small synthetic segment problem: positives carry a distinct temporal
/// pattern on the first channel group; negatives are noise.
nn::labeled_data make_segment_toy(std::size_t n, std::size_t window, std::uint64_t seed) {
    util::rng gen(seed);
    nn::labeled_data data;
    data.features = nn::tensor({n, window, 9});
    for (std::size_t i = 0; i < n; ++i) {
        const bool positive = gen.bernoulli(0.4);
        for (std::size_t t = 0; t < window; ++t) {
            for (std::size_t c = 0; c < 9; ++c) {
                double v = gen.normal(0.0, 0.4);
                if (positive && c < 3) {
                    // Ramp + dip pattern localized in the window.
                    v += 1.5 * static_cast<double>(t) / static_cast<double>(window) - 0.6;
                }
                data.features.at({i, t, c}) = static_cast<float>(v);
            }
        }
        data.labels.push_back(positive ? 1.0f : 0.0f);
    }
    return data;
}

class ModelTraining : public ::testing::TestWithParam<model_kind> {};

TEST_P(ModelTraining, LossDecreasesAndBeatsChance) {
    constexpr std::size_t window = 12;
    nn::labeled_data train = make_segment_toy(240, window, 1);
    nn::labeled_data test = make_segment_toy(120, window, 2);

    built_model bm = build_model(GetParam(), window, 3);
    train.features = bm.adapt_features(train.features);
    test.features = bm.adapt_features(test.features);

    nn::train_config tc;
    tc.max_epochs = 12;
    tc.early_stop_patience = 0;
    tc.batch_size = 32;
    const nn::train_history h = nn::fit(*bm.network, train, {}, tc);
    EXPECT_LT(h.train_loss.back(), h.train_loss.front())
        << model_kind_name(GetParam());

    const std::vector<float> probs = nn::predict_proba(*bm.network, test.features);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < probs.size(); ++i) {
        correct += ((probs[i] >= 0.5f) == (test.labels[i] > 0.5f)) ? 1 : 0;
    }
    EXPECT_GT(static_cast<double>(correct) / static_cast<double>(probs.size()), 0.8)
        << model_kind_name(GetParam());
}

TEST_P(ModelTraining, SeedDeterministic) {
    constexpr std::size_t window = 10;
    nn::labeled_data train = make_segment_toy(80, window, 4);
    nn::train_config tc;
    tc.max_epochs = 3;
    tc.early_stop_patience = 0;

    built_model a = build_model(GetParam(), window, 5);
    built_model b = build_model(GetParam(), window, 5);
    nn::labeled_data ta = train;
    ta.features = a.adapt_features(ta.features);
    nn::labeled_data tb = train;
    tb.features = b.adapt_features(tb.features);
    nn::fit(*a.network, ta, {}, tc);
    nn::fit(*b.network, tb, {}, tc);

    const auto pa = a.network->parameters();
    const auto pb = b.network->parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
        for (std::size_t j = 0; j < pa[i]->value.size(); j += 7) {
            ASSERT_FLOAT_EQ(pa[i]->value[j], pb[i]->value[j]) << model_kind_name(GetParam());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ModelTraining,
                         ::testing::Values(model_kind::mlp, model_kind::lstm,
                                           model_kind::conv_lstm2d, model_kind::cnn),
                         [](const ::testing::TestParamInfo<model_kind>& info) {
                             switch (info.param) {
                                 case model_kind::mlp: return "mlp";
                                 case model_kind::lstm: return "lstm";
                                 case model_kind::conv_lstm2d: return "conv_lstm2d";
                                 case model_kind::cnn: return "cnn";
                             }
                             return "unknown";
                         });

}  // namespace
}  // namespace fallsense::core
