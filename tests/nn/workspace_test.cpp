// The inference workspace-plan contract (nn/layer.hpp forward_into):
//   - every layer's forward_into writes the same bits its training-path
//     forward produces,
//   - the layer stays inside the workspace it reported via
//     infer_workspace_bytes (checked with poisoned arenas and guard
//     regions on both workspace and output),
//   - model plans are stable: repeated predictions through one
//     nn::predict_scratch never re-plan or outgrow the arena.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/models.hpp"
#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/conv_lstm2d.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "nn/misc_layers.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace fallsense::nn {
namespace {

constexpr float k_guard = 1234.5f;
constexpr std::size_t k_guard_floats = 16;

tensor random_batch(const shape_t& row_shape, std::size_t batch, util::rng& gen) {
    shape_t full;
    full.push_back(batch);
    for (const std::size_t d : row_shape) full.push_back(d);
    tensor x(full);
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = static_cast<float>(gen.uniform(-1.5, 1.5));
    }
    return x;
}

/// Run `l` through forward and through forward_into with a NaN-poisoned
/// workspace arena and guarded output buffer; expect bit-identical output
/// and untouched guards.  Templated so it covers both layer and model
/// (sequential, multi_branch_network) implementations of the contract.
template <typename Net>
void expect_forward_into_matches(Net& l, const shape_t& row_shape, std::size_t batch,
                                 util::rng& gen) {
    const tensor x = random_batch(row_shape, batch, gen);
    const tensor y = l.forward(x, /*training=*/false);

    const std::size_t ws_bytes = l.infer_workspace_bytes(row_shape, batch);
    const std::size_t ws_floats = (ws_bytes + sizeof(float) - 1) / sizeof(float);
    const float poison = std::numeric_limits<float>::quiet_NaN();
    std::vector<float> arena(ws_floats + 2 * k_guard_floats, k_guard);
    std::fill(arena.begin() + static_cast<std::ptrdiff_t>(k_guard_floats),
              arena.end() - static_cast<std::ptrdiff_t>(k_guard_floats), poison);
    std::vector<float> out_buf(y.size() + 2 * k_guard_floats, k_guard);
    std::fill(out_buf.begin() + static_cast<std::ptrdiff_t>(k_guard_floats),
              out_buf.end() - static_cast<std::ptrdiff_t>(k_guard_floats), poison);

    l.forward_into(std::span<const float>(x.data(), x.size()), row_shape, batch,
                   std::span<float>(arena.data() + k_guard_floats, ws_floats),
                   std::span<float>(out_buf.data() + k_guard_floats, y.size()));

    for (std::size_t i = 0; i < y.size(); ++i) {
        EXPECT_EQ(out_buf[k_guard_floats + i], y[i]) << "element " << i;
    }
    for (std::size_t g = 0; g < k_guard_floats; ++g) {
        EXPECT_EQ(arena[g], k_guard) << "workspace guard underrun at " << g;
        EXPECT_EQ(arena[k_guard_floats + ws_floats + g], k_guard)
            << "workspace guard overrun at " << g;
        EXPECT_EQ(out_buf[g], k_guard) << "output guard underrun at " << g;
        EXPECT_EQ(out_buf[k_guard_floats + y.size() + g], k_guard)
            << "output guard overrun at " << g;
    }
}

TEST(WorkspaceTest, DenseMatchesForward) {
    util::rng gen(11);
    dense l(17, 9, gen);
    expect_forward_into_matches(l, {17}, 5, gen);
}

TEST(WorkspaceTest, ReluMatchesForward) {
    util::rng gen(12);
    relu l;
    EXPECT_TRUE(l.infer_in_place());
    expect_forward_into_matches(l, {6, 4}, 3, gen);
}

TEST(WorkspaceTest, SigmoidMatchesForward) {
    util::rng gen(13);
    sigmoid l;
    expect_forward_into_matches(l, {10}, 4, gen);
}

TEST(WorkspaceTest, Conv1dMatchesForward) {
    util::rng gen(14);
    conv1d l(3, 16, 3, gen);
    expect_forward_into_matches(l, {20, 3}, 6, gen);
}

TEST(WorkspaceTest, MaxPoolMatchesForward) {
    util::rng gen(15);
    maxpool1d l(2);
    expect_forward_into_matches(l, {9, 5}, 4, gen);  // ragged tail dropped
}

TEST(WorkspaceTest, FlattenMatchesForward) {
    util::rng gen(16);
    flatten l;
    expect_forward_into_matches(l, {4, 3, 2}, 3, gen);
}

TEST(WorkspaceTest, DropoutIsIdentityAtInference) {
    util::rng gen(17);
    dropout l(0.5, gen);
    expect_forward_into_matches(l, {8, 2}, 3, gen);
}

TEST(WorkspaceTest, LstmMatchesForward) {
    util::rng gen(18);
    lstm l(5, 7, gen);
    expect_forward_into_matches(l, {12, 5}, 4, gen);
}

TEST(WorkspaceTest, ConvLstm2dMatchesForward) {
    util::rng gen(19);
    conv_lstm2d l(2, 4, 3, gen);
    expect_forward_into_matches(l, {6, 3, 3, 2}, 3, gen);
}

/// An in-place layer may be handed the same buffer as input and output
/// (how sequential routes it mid-stack); the rewrite must equal forward.
TEST(WorkspaceTest, InPlaceLayersRewriteTheirBuffer) {
    util::rng gen(20);
    relu l;
    const shape_t row_shape{7, 3};
    const tensor x = random_batch(row_shape, 4, gen);
    const tensor y = l.forward(x, false);
    std::vector<float> buf(x.data(), x.data() + x.size());
    l.forward_into(std::span<const float>(buf.data(), buf.size()), row_shape, 4, {},
                   std::span<float>(buf.data(), buf.size()));
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(buf[i], y[i]);
}

TEST(WorkspaceTest, SequentialMatchesForwardThroughPoisonedArena) {
    util::rng gen(21);
    sequential net;
    net.emplace<conv1d>(3, 8, 3, gen);
    net.emplace<relu>();
    net.emplace<maxpool1d>(2);
    net.emplace<flatten>();
    net.emplace<dense>(9 * 8, 6, gen);
    net.emplace<sigmoid>();
    expect_forward_into_matches(net, {20, 3}, 5, gen);
}

TEST(WorkspaceTest, MultiBranchCnnMatchesForward) {
    const auto cnn = core::build_fallsense_cnn(24, 77);
    util::rng gen(22);
    expect_forward_into_matches(*cnn, {24, 9}, 7, gen);
}

TEST(WorkspaceTest, SequentialRejectsTooSmallOutput) {
    util::rng gen(23);
    sequential net;
    net.emplace<dense>(4, 3, gen);
    const shape_t row_shape{4};
    const tensor x = random_batch(row_shape, 2, gen);
    const std::size_t ws_floats =
        (net.infer_workspace_bytes(row_shape, 2) + sizeof(float) - 1) / sizeof(float);
    std::vector<float> arena(ws_floats);
    std::vector<float> out(2 * 3 - 1);  // one float short
    EXPECT_THROW(net.forward_into(std::span<const float>(x.data(), x.size()), row_shape, 2,
                                  arena, out),
                 std::invalid_argument);
}

TEST(WorkspaceTest, PredictScratchOverloadMatchesAllocating) {
    const auto cnn = core::build_fallsense_cnn(20, 5);
    util::rng gen(24);
    const shape_t row_shape{20, 9};
    const std::size_t rows = 11;
    const tensor x = random_batch(row_shape, rows, gen);
    std::vector<float> expected(rows);
    predict_proba_rows(*cnn, std::span<const float>(x.data(), x.size()), rows, row_shape,
                       expected, /*batch_size=*/4);
    predict_scratch scratch;
    std::vector<float> got(rows);
    predict_proba_rows(*cnn, std::span<const float>(x.data(), x.size()), rows, row_shape,
                       got, scratch, /*batch_size=*/4);
    for (std::size_t i = 0; i < rows; ++i) EXPECT_EQ(got[i], expected[i]);
}

/// The plan and the scratch arena reach their high-water marks on the
/// first (largest) batch; later calls — same size or smaller — must reuse
/// both without regrowing.
TEST(WorkspaceTest, PlanAndArenaAreStableAcrossRepeatedPredicts) {
    const auto cnn = core::build_fallsense_cnn(20, 9);
    const shape_t row_shape{20, 9};
    const std::size_t big = cnn->infer_workspace_bytes(row_shape, 8);
    // Smaller batches reuse the capacity-8 plan verbatim.
    EXPECT_EQ(cnn->infer_workspace_bytes(row_shape, 3), big);
    EXPECT_EQ(cnn->infer_workspace_bytes(row_shape, 8), big);

    util::rng gen(25);
    const tensor x = random_batch(row_shape, 8, gen);
    predict_scratch scratch;
    std::vector<float> out(8);
    predict_proba_rows(*cnn, std::span<const float>(x.data(), x.size()), 8, row_shape, out,
                       scratch, /*batch_size=*/8);
    const float* const arena_data = scratch.arena.data();
    const std::size_t arena_size = scratch.arena.size();
    std::vector<float> first = out;
    for (int repeat = 0; repeat < 3; ++repeat) {
        predict_proba_rows(*cnn, std::span<const float>(x.data(), x.size()), 8, row_shape,
                           out, scratch, /*batch_size=*/8);
        EXPECT_EQ(scratch.arena.data(), arena_data) << "arena reallocated";
        EXPECT_EQ(scratch.arena.size(), arena_size);
        for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], first[i]);
    }
}

TEST(WorkspaceTest, WorkspaceGrowsMonotonicallyWithBatch) {
    const auto cnn = core::build_fallsense_cnn(20, 13);
    const shape_t row_shape{20, 9};
    const std::size_t one = cnn->infer_workspace_bytes(row_shape, 1);
    const std::size_t eight = cnn->infer_workspace_bytes(row_shape, 8);
    EXPECT_GT(one, 0u);
    EXPECT_GE(eight, one);
}

}  // namespace
}  // namespace fallsense::nn
