#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"

namespace fallsense::nn {
namespace {

TEST(LossTest, MatchesNaiveBceAtModerateLogits) {
    const tensor logits({3, 1}, {0.5f, -1.0f, 2.0f});
    const std::vector<float> targets{1.0f, 0.0f, 1.0f};
    const bce_result r = weighted_bce_with_logits(logits, targets, 1.0, 1.0);
    double expected = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
        const double p = sigmoid_scalar(logits[i]);
        expected += -(targets[i] * std::log(p) + (1.0 - targets[i]) * std::log(1.0 - p));
    }
    expected /= 3.0;
    EXPECT_NEAR(r.loss, expected, 1e-6);
}

TEST(LossTest, GradientIsSigmoidMinusTargetOverN) {
    const tensor logits({2, 1}, {0.0f, 0.0f});
    const std::vector<float> targets{1.0f, 0.0f};
    const bce_result r = weighted_bce_with_logits(logits, targets, 1.0, 1.0);
    EXPECT_NEAR(r.grad_logits[0], (0.5 - 1.0) / 2.0, 1e-6);
    EXPECT_NEAR(r.grad_logits[1], (0.5 - 0.0) / 2.0, 1e-6);
}

TEST(LossTest, StableAtExtremeLogits) {
    const tensor logits({2, 1}, {60.0f, -60.0f});
    const std::vector<float> targets{1.0f, 0.0f};
    const bce_result r = weighted_bce_with_logits(logits, targets, 1.0, 1.0);
    EXPECT_FALSE(std::isnan(r.loss));
    EXPECT_FALSE(std::isinf(r.loss));
    EXPECT_NEAR(r.loss, 0.0, 1e-6);  // both confidently correct
}

TEST(LossTest, ExtremeWrongPredictionsPenalizedLinearly) {
    const tensor logits({1, 1}, {-50.0f});
    const std::vector<float> targets{1.0f};
    const bce_result r = weighted_bce_with_logits(logits, targets, 1.0, 1.0);
    EXPECT_NEAR(r.loss, 50.0, 1e-3);  // -log(sigmoid(-50)) ~ 50
}

TEST(LossTest, PositiveWeightScalesPositiveSamples) {
    const tensor logits({2, 1}, {0.0f, 0.0f});
    const std::vector<float> targets{1.0f, 0.0f};
    const bce_result unweighted = weighted_bce_with_logits(logits, targets, 1.0, 1.0);
    const bce_result weighted = weighted_bce_with_logits(logits, targets, 3.0, 1.0);
    // Sample 0 (positive) triples; sample 1 unchanged.
    EXPECT_NEAR(weighted.grad_logits[0], 3.0 * unweighted.grad_logits[0], 1e-7);
    EXPECT_NEAR(weighted.grad_logits[1], unweighted.grad_logits[1], 1e-7);
}

TEST(LossTest, LossOnlyAgreesWithFullVersion) {
    const tensor logits({4}, {0.3f, -0.7f, 1.2f, -2.0f});
    const std::vector<float> targets{1.0f, 0.0f, 0.0f, 1.0f};
    const bce_result full = weighted_bce_with_logits(logits, targets, 2.0, 0.5);
    const double loss = weighted_bce_loss_only(logits, targets, 2.0, 0.5);
    EXPECT_NEAR(full.loss, loss, 1e-9);
}

TEST(LossTest, GradientMatchesFiniteDifference) {
    const std::vector<float> targets{1.0f, 0.0f, 1.0f};
    tensor logits({3, 1}, {0.4f, -0.3f, 1.1f});
    const bce_result r = weighted_bce_with_logits(logits, targets, 1.7, 0.6);
    constexpr float eps = 1e-3f;
    for (std::size_t i = 0; i < 3; ++i) {
        tensor lp = logits, lm = logits;
        lp[i] += eps;
        lm[i] -= eps;
        const double numeric = (weighted_bce_loss_only(lp, targets, 1.7, 0.6) -
                                weighted_bce_loss_only(lm, targets, 1.7, 0.6)) /
                               (2.0 * eps);
        EXPECT_NEAR(r.grad_logits[i], numeric, 1e-4);
    }
}

TEST(LossTest, Validation) {
    const tensor logits({2, 1});
    const std::vector<float> targets{1.0f};
    EXPECT_THROW(weighted_bce_with_logits(logits, targets, 1.0, 1.0), std::invalid_argument);
    const std::vector<float> two{1.0f, 0.0f};
    EXPECT_THROW(weighted_bce_with_logits(logits, two, 0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(weighted_bce_with_logits(tensor({2, 3}), two, 1.0, 1.0),
                 std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::nn
