#include "nn/conv_lstm2d.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace fallsense::nn {
namespace {

TEST(Conv2dSameTest, IdentityKernelCenterTap) {
    // 3x3 kernel with only the center tap set: output == input.
    tensor x({1, 3, 3, 1}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
    tensor w({3, 3, 1, 1});
    w.at({1, 1, 0, 0}) = 1.0f;
    tensor y({1, 3, 3, 1});
    conv2d_same_accumulate(x, w, y);
    for (std::size_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2dSameTest, BorderPaddingIsZero) {
    // All-ones 3x3 kernel on an all-ones 3x3 image: corner sums 4,
    // edge sums 6, center sums 9.
    tensor x = tensor::full({1, 3, 3, 1}, 1.0f);
    tensor w = tensor::full({3, 3, 1, 1}, 1.0f);
    tensor y({1, 3, 3, 1});
    conv2d_same_accumulate(x, w, y);
    EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 4.0f);
    EXPECT_FLOAT_EQ(y.at({0, 0, 1, 0}), 6.0f);
    EXPECT_FLOAT_EQ(y.at({0, 1, 1, 0}), 9.0f);
}

TEST(Conv2dSameTest, AccumulatesIntoOutput) {
    tensor x = tensor::full({1, 2, 2, 1}, 1.0f);
    tensor w({1, 1, 1, 1}, {2.0f});
    tensor y = tensor::full({1, 2, 2, 1}, 10.0f);
    conv2d_same_accumulate(x, w, y);
    EXPECT_FLOAT_EQ(y[0], 12.0f);
}

TEST(ConvLstm2dTest, OutputShape) {
    util::rng gen(1);
    conv_lstm2d layer(1, 8, 3, gen);
    const tensor x({2, 10, 3, 3, 1});
    const tensor y = layer.forward(x, false);
    EXPECT_EQ(y.shape(), (shape_t{2, 3, 3, 8}));
}

TEST(ConvLstm2dTest, HiddenBounded) {
    util::rng gen(2);
    conv_lstm2d layer(1, 4, 3, gen);
    tensor x({1, 12, 3, 3, 1});
    for (float& v : x.values()) v = static_cast<float>(gen.normal(0.0, 2.0));
    const tensor y = layer.forward(x, false);
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_LT(std::abs(y[i]), 1.0f);
}

TEST(ConvLstm2dTest, Deterministic) {
    util::rng gen(3);
    conv_lstm2d layer(1, 3, 3, gen);
    tensor x({1, 6, 3, 3, 1});
    util::rng dg(7);
    for (float& v : x.values()) v = static_cast<float>(dg.normal());
    const tensor y1 = layer.forward(x, false);
    const tensor y2 = layer.forward(x, false);
    for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

TEST(ConvLstm2dTest, TemporalSensitivity) {
    util::rng gen(4);
    conv_lstm2d layer(1, 3, 3, gen);
    tensor early({1, 4, 3, 3, 1});
    tensor late({1, 4, 3, 3, 1});
    // Same total energy, different temporal placement.
    for (std::size_t i = 0; i < 9; ++i) {
        early.at({0, 0, i / 3, i % 3, 0}) = 1.0f;
        late.at({0, 3, i / 3, i % 3, 0}) = 1.0f;
    }
    const tensor y1 = layer.forward(early, false);
    const tensor y2 = layer.forward(late, false);
    double diff = 0.0;
    for (std::size_t i = 0; i < y1.size(); ++i) diff += std::abs(y1[i] - y2[i]);
    EXPECT_GT(diff, 1e-4);
}

TEST(ConvLstm2dTest, Validation) {
    util::rng gen(5);
    conv_lstm2d layer(1, 4, 3, gen);
    EXPECT_THROW(layer.forward(tensor({1, 5, 3, 3, 2}), false), std::invalid_argument);
    EXPECT_THROW(layer.forward(tensor({5, 3, 3, 1}), false), std::invalid_argument);
    EXPECT_EQ(layer.output_shape({10, 3, 3, 1}), (shape_t{3, 3, 4}));
}

TEST(ConvLstm2dTest, ParameterShapes) {
    util::rng gen(6);
    conv_lstm2d layer(2, 4, 3, gen);
    const auto params = layer.parameters();
    ASSERT_EQ(params.size(), 3u);
    EXPECT_EQ(params[0]->value.shape(), (shape_t{3, 3, 2, 16}));
    EXPECT_EQ(params[1]->value.shape(), (shape_t{3, 3, 4, 16}));
    EXPECT_EQ(params[2]->value.shape(), (shape_t{16}));
}

}  // namespace
}  // namespace fallsense::nn
