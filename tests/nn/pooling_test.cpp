#include "nn/pooling.hpp"

#include <gtest/gtest.h>

namespace fallsense::nn {
namespace {

TEST(MaxPoolTest, PoolsPairsTakingMax) {
    maxpool1d layer(2);
    const tensor x({1, 4, 1}, {1, 3, 2, 5});
    const tensor y = layer.forward(x, false);
    ASSERT_EQ(y.shape(), (shape_t{1, 2, 1}));
    EXPECT_FLOAT_EQ(y[0], 3.0f);
    EXPECT_FLOAT_EQ(y[1], 5.0f);
}

TEST(MaxPoolTest, DropsTrailingRemainder) {
    maxpool1d layer(2);
    const tensor x({1, 5, 1}, {1, 2, 3, 4, 9});
    const tensor y = layer.forward(x, false);
    EXPECT_EQ(y.shape(), (shape_t{1, 2, 1}));  // the 9 is dropped
}

TEST(MaxPoolTest, ChannelsPooledIndependently) {
    maxpool1d layer(2);
    const tensor x({1, 2, 2}, {1, 10, 5, 2});
    const tensor y = layer.forward(x, false);
    EXPECT_FLOAT_EQ(y.at({0, 0, 0}), 5.0f);
    EXPECT_FLOAT_EQ(y.at({0, 0, 1}), 10.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
    maxpool1d layer(2);
    const tensor x({1, 4, 1}, {1, 3, 5, 2});
    layer.forward(x, true);
    const tensor gy({1, 2, 1}, {7.0f, 9.0f});
    const tensor gx = layer.backward(gy);
    EXPECT_FLOAT_EQ(gx[0], 0.0f);
    EXPECT_FLOAT_EQ(gx[1], 7.0f);
    EXPECT_FLOAT_EQ(gx[2], 9.0f);
    EXPECT_FLOAT_EQ(gx[3], 0.0f);
}

TEST(MaxPoolTest, TiesGoToFirstOccurrence) {
    maxpool1d layer(2);
    const tensor x({1, 2, 1}, {4.0f, 4.0f});
    layer.forward(x, true);
    const tensor gx = layer.backward(tensor({1, 1, 1}, {1.0f}));
    EXPECT_FLOAT_EQ(gx[0], 1.0f);
    EXPECT_FLOAT_EQ(gx[1], 0.0f);
}

TEST(MaxPoolTest, NegativeValuesHandled) {
    maxpool1d layer(2);
    const tensor x({1, 2, 1}, {-5.0f, -2.0f});
    const tensor y = layer.forward(x, false);
    EXPECT_FLOAT_EQ(y[0], -2.0f);
}

TEST(MaxPoolTest, Validation) {
    EXPECT_THROW(maxpool1d(0), std::invalid_argument);
    maxpool1d layer(4);
    EXPECT_THROW(layer.forward(tensor({1, 3, 1}), false), std::invalid_argument);
    EXPECT_THROW(layer.forward(tensor({3, 1}), false), std::invalid_argument);
}

TEST(MaxPoolTest, OutputShapeHelper) {
    maxpool1d layer(2);
    EXPECT_EQ(layer.output_shape({38, 16}), (shape_t{19, 16}));
}

}  // namespace
}  // namespace fallsense::nn
