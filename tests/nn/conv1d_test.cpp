#include "nn/conv1d.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fallsense::nn {
namespace {

TEST(Conv1dTest, ValidConvolutionShape) {
    util::rng gen(1);
    conv1d layer(3, 16, 3, gen);
    const tensor x({2, 20, 3});
    const tensor y = layer.forward(x, false);
    EXPECT_EQ(y.shape(), (shape_t{2, 18, 16}));
}

TEST(Conv1dTest, IdentityKernelPassesThrough) {
    util::rng gen(2);
    conv1d layer(1, 1, 1, gen);
    layer.weight().value = tensor({1, 1, 1}, {1.0f});
    layer.bias().value = tensor({1}, {0.0f});
    const tensor x({1, 4, 1}, {1, 2, 3, 4});
    const tensor y = layer.forward(x, false);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv1dTest, KnownMovingSum) {
    util::rng gen(3);
    conv1d layer(1, 1, 2, gen);
    layer.weight().value = tensor({2, 1, 1}, {1.0f, 1.0f});
    layer.bias().value = tensor({1}, {0.5f});
    const tensor x({1, 4, 1}, {1, 2, 3, 4});
    const tensor y = layer.forward(x, false);
    ASSERT_EQ(y.shape(), (shape_t{1, 3, 1}));
    EXPECT_FLOAT_EQ(y[0], 3.5f);
    EXPECT_FLOAT_EQ(y[1], 5.5f);
    EXPECT_FLOAT_EQ(y[2], 7.5f);
}

TEST(Conv1dTest, MultiChannelMixing) {
    util::rng gen(4);
    conv1d layer(2, 1, 1, gen);
    layer.weight().value = tensor({1, 2, 1}, {2.0f, 3.0f});
    layer.bias().value = tensor({1}, {0.0f});
    const tensor x({1, 2, 2}, {1, 10, 2, 20});
    const tensor y = layer.forward(x, false);
    EXPECT_FLOAT_EQ(y[0], 2 * 1 + 3 * 10);
    EXPECT_FLOAT_EQ(y[1], 2 * 2 + 3 * 20);
}

TEST(Conv1dTest, BackwardInputGradientForIdentity) {
    util::rng gen(5);
    conv1d layer(1, 1, 1, gen);
    layer.weight().value = tensor({1, 1, 1}, {2.0f});
    const tensor x({1, 3, 1}, {1, 2, 3});
    layer.forward(x, true);
    const tensor gy({1, 3, 1}, {1, 1, 1});
    const tensor gx = layer.backward(gy);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(gx[i], 2.0f);
    EXPECT_FLOAT_EQ(layer.weight().grad[0], 6.0f);  // sum of x
    EXPECT_FLOAT_EQ(layer.bias().grad[0], 3.0f);
}

TEST(Conv1dTest, BackwardOverlappingKernelAccumulates) {
    util::rng gen(6);
    conv1d layer(1, 1, 2, gen);
    layer.weight().value = tensor({2, 1, 1}, {1.0f, 1.0f});
    const tensor x({1, 3, 1}, {1, 2, 3});
    layer.forward(x, true);
    const tensor gy({1, 2, 1}, {1.0f, 1.0f});
    const tensor gx = layer.backward(gy);
    // Middle sample contributes to both output positions.
    EXPECT_FLOAT_EQ(gx[0], 1.0f);
    EXPECT_FLOAT_EQ(gx[1], 2.0f);
    EXPECT_FLOAT_EQ(gx[2], 1.0f);
}

TEST(Conv1dTest, RejectsBadInputs) {
    util::rng gen(7);
    conv1d layer(3, 4, 3, gen);
    EXPECT_THROW(layer.forward(tensor({1, 20, 2}), false), std::invalid_argument);
    EXPECT_THROW(layer.forward(tensor({1, 2, 3}), false), std::invalid_argument);  // t < k
    EXPECT_THROW(layer.forward(tensor({20, 3}), false), std::invalid_argument);
}

TEST(Conv1dTest, OutputShapeHelper) {
    util::rng gen(8);
    conv1d layer(3, 16, 3, gen);
    EXPECT_EQ(layer.output_shape({40, 3}), (shape_t{38, 16}));
    EXPECT_THROW(layer.output_shape({40, 4}), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::nn
