#include "nn/lstm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace fallsense::nn {
namespace {

TEST(LstmTest, OutputShapeIsLastHidden) {
    util::rng gen(1);
    lstm layer(9, 16, gen);
    const tensor x({3, 20, 9});
    const tensor y = layer.forward(x, false);
    EXPECT_EQ(y.shape(), (shape_t{3, 16}));
}

TEST(LstmTest, HiddenStatesBounded) {
    util::rng gen(2);
    lstm layer(4, 8, gen);
    tensor x({2, 30, 4});
    for (float& v : x.values()) v = static_cast<float>(gen.normal(0.0, 3.0));
    const tensor y = layer.forward(x, false);
    for (std::size_t i = 0; i < y.size(); ++i) {
        // h = o * tanh(c) with o in (0,1), tanh in (-1,1).
        EXPECT_LT(std::abs(y[i]), 1.0f);
    }
}

TEST(LstmTest, ZeroInputZeroishOutput) {
    util::rng gen(3);
    lstm layer(4, 8, gen);
    const tensor x({1, 5, 4});  // zeros
    const tensor y = layer.forward(x, false);
    // With zero input, gates depend only on biases; output is small but
    // finite and deterministic.
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_FALSE(std::isnan(y[i]));
}

TEST(LstmTest, DeterministicAcrossCalls) {
    util::rng gen(4);
    lstm layer(3, 5, gen);
    tensor x({2, 7, 3});
    util::rng data_gen(5);
    for (float& v : x.values()) v = static_cast<float>(data_gen.normal());
    const tensor y1 = layer.forward(x, false);
    const tensor y2 = layer.forward(x, false);
    for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

TEST(LstmTest, SequenceOrderMatters) {
    util::rng gen(6);
    lstm layer(2, 4, gen);
    tensor forward_x({1, 4, 2}, {1, 0, 2, 0, 3, 0, 4, 0});
    tensor reversed_x({1, 4, 2}, {4, 0, 3, 0, 2, 0, 1, 0});
    const tensor y1 = layer.forward(forward_x, false);
    const tensor y2 = layer.forward(reversed_x, false);
    double diff = 0.0;
    for (std::size_t i = 0; i < y1.size(); ++i) diff += std::abs(y1[i] - y2[i]);
    EXPECT_GT(diff, 1e-4);
}

TEST(LstmTest, ForgetBiasInitializedToOne) {
    util::rng gen(7);
    lstm layer(3, 4, gen);
    const auto params = layer.parameters();
    const parameter* bias = params[2];
    ASSERT_EQ(bias->value.size(), 16u);
    for (std::size_t h = 4; h < 8; ++h) EXPECT_FLOAT_EQ(bias->value[h], 1.0f);
    for (std::size_t h = 0; h < 4; ++h) EXPECT_FLOAT_EQ(bias->value[h], 0.0f);
}

TEST(LstmTest, BatchesIndependent) {
    util::rng gen(8);
    lstm layer(2, 3, gen);
    util::rng data_gen(9);
    tensor a({1, 5, 2});
    for (float& v : a.values()) v = static_cast<float>(data_gen.normal());
    tensor b({1, 5, 2});
    for (float& v : b.values()) v = static_cast<float>(data_gen.normal());
    // Stack a and b into one batch.
    tensor both({2, 5, 2});
    std::copy(a.values().begin(), a.values().end(), both.data());
    std::copy(b.values().begin(), b.values().end(), both.data() + a.size());

    const tensor ya = layer.forward(a, false);
    const tensor yb = layer.forward(b, false);
    const tensor yboth = layer.forward(both, false);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_NEAR(yboth[i], ya[i], 1e-6);
        EXPECT_NEAR(yboth[3 + i], yb[i], 1e-6);
    }
}

TEST(LstmTest, Validation) {
    util::rng gen(10);
    lstm layer(3, 4, gen);
    EXPECT_THROW(layer.forward(tensor({1, 5, 2}), false), std::invalid_argument);
    EXPECT_THROW(layer.forward(tensor({5, 3}), false), std::invalid_argument);
    EXPECT_THROW(layer.backward(tensor({1, 4})), std::logic_error);
    EXPECT_EQ(layer.output_shape({10, 3}), (shape_t{4}));
}

}  // namespace
}  // namespace fallsense::nn
