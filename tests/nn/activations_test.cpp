#include "nn/activations.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fallsense::nn {
namespace {

TEST(SigmoidScalarTest, KnownValues) {
    EXPECT_FLOAT_EQ(sigmoid_scalar(0.0f), 0.5f);
    EXPECT_NEAR(sigmoid_scalar(2.0f), 1.0f / (1.0f + std::exp(-2.0f)), 1e-7);
}

TEST(SigmoidScalarTest, StableAtExtremes) {
    EXPECT_NEAR(sigmoid_scalar(100.0f), 1.0f, 1e-7);
    EXPECT_NEAR(sigmoid_scalar(-100.0f), 0.0f, 1e-7);
    EXPECT_FALSE(std::isnan(sigmoid_scalar(1000.0f)));
    EXPECT_FALSE(std::isnan(sigmoid_scalar(-1000.0f)));
}

TEST(SigmoidScalarTest, Symmetry) {
    for (const float x : {0.5f, 1.5f, 3.0f}) {
        EXPECT_NEAR(sigmoid_scalar(x) + sigmoid_scalar(-x), 1.0f, 1e-6);
    }
}

TEST(ReluTest, ForwardClampsNegatives) {
    relu layer;
    const tensor x({1, 4}, {-1.0f, 0.0f, 2.0f, -3.0f});
    const tensor y = layer.forward(x, false);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[1], 0.0f);
    EXPECT_FLOAT_EQ(y[2], 2.0f);
    EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(ReluTest, BackwardMasksGradient) {
    relu layer;
    const tensor x({1, 3}, {-1.0f, 1.0f, 2.0f});
    layer.forward(x, true);
    const tensor gy({1, 3}, {5.0f, 5.0f, 5.0f});
    const tensor gx = layer.backward(gy);
    EXPECT_FLOAT_EQ(gx[0], 0.0f);
    EXPECT_FLOAT_EQ(gx[1], 5.0f);
    EXPECT_FLOAT_EQ(gx[2], 5.0f);
}

TEST(ReluTest, ZeroInputHasZeroGradient) {
    relu layer;
    const tensor x({1, 1}, {0.0f});
    layer.forward(x, true);
    const tensor gx = layer.backward(tensor({1, 1}, {1.0f}));
    EXPECT_FLOAT_EQ(gx[0], 0.0f);
}

TEST(SigmoidLayerTest, ForwardMatchesScalar) {
    sigmoid layer;
    const tensor x({1, 2}, {0.0f, 1.0f});
    const tensor y = layer.forward(x, false);
    EXPECT_FLOAT_EQ(y[0], 0.5f);
    EXPECT_FLOAT_EQ(y[1], sigmoid_scalar(1.0f));
}

TEST(SigmoidLayerTest, BackwardUsesDerivative) {
    sigmoid layer;
    const tensor x({1, 1}, {0.0f});
    layer.forward(x, true);
    const tensor gx = layer.backward(tensor({1, 1}, {1.0f}));
    EXPECT_NEAR(gx[0], 0.25f, 1e-6);  // sigma'(0) = 0.25
}

TEST(ActivationLayersTest, ShapePreserved) {
    relu r;
    sigmoid s;
    EXPECT_EQ(r.output_shape({5, 7}), (shape_t{5, 7}));
    EXPECT_EQ(s.output_shape({5, 7}), (shape_t{5, 7}));
}

}  // namespace
}  // namespace fallsense::nn
