#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <span>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "nn/simd.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fallsense::nn {
namespace {

/// Linearly separable 2-D toy problem: label = 1 iff x0 + x1 > 0.
labeled_data make_toy_data(std::size_t n, std::uint64_t seed, double positive_fraction = 0.5) {
    util::rng gen(seed);
    labeled_data data;
    data.features = tensor({n, 2});
    for (std::size_t i = 0; i < n; ++i) {
        const bool positive = gen.uniform() < positive_fraction;
        const double cx = positive ? 1.0 : -1.0;
        data.features.at({i, 0}) = static_cast<float>(gen.normal(cx, 0.4));
        data.features.at({i, 1}) = static_cast<float>(gen.normal(cx, 0.4));
        data.labels.push_back(positive ? 1.0f : 0.0f);
    }
    return data;
}

std::unique_ptr<sequential> make_toy_model(std::uint64_t seed) {
    util::rng gen(seed);
    auto net = std::make_unique<sequential>();
    net->emplace<dense>(2, 8, gen, true, "d0");
    net->emplace<relu>();
    net->emplace<dense>(8, 1, gen, false, "out");
    return net;
}

TEST(TrainerTest, LearnsLinearlySeparableProblem) {
    const labeled_data train = make_toy_data(400, 1);
    const labeled_data val = make_toy_data(100, 2);
    auto net = make_toy_model(3);
    train_config tc;
    tc.max_epochs = 60;
    tc.batch_size = 32;
    tc.early_stop_patience = 15;
    const train_history h = fit(*net, train, val, tc);

    const labeled_data test = make_toy_data(200, 4);
    const std::vector<float> probs = predict_proba(*net, test.features);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < probs.size(); ++i) {
        correct += ((probs[i] >= 0.5f) == (test.labels[i] > 0.5f)) ? 1 : 0;
    }
    EXPECT_GT(static_cast<double>(correct) / probs.size(), 0.95);
    EXPECT_FALSE(h.train_loss.empty());
    EXPECT_LT(h.train_loss.back(), h.train_loss.front());
}

TEST(TrainerTest, EarlyStoppingTriggersAndRestoresBest) {
    // Validation labels inverted w.r.t. the training distribution: the more
    // the model learns, the worse validation gets, so early stopping must
    // fire after exactly `patience` non-improving epochs and the best epoch
    // stays near the start.
    const labeled_data train = make_toy_data(200, 5);
    labeled_data val = make_toy_data(60, 6);
    for (float& y : val.labels) y = 1.0f - y;
    auto net = make_toy_model(7);
    train_config tc;
    tc.max_epochs = 200;
    tc.early_stop_patience = 5;
    const train_history h = fit(*net, train, val, tc);
    EXPECT_TRUE(h.stopped_early);
    EXPECT_LT(h.train_loss.size(), 200u);
    EXPECT_LE(h.best_epoch, h.train_loss.size() - 1);
    EXPECT_EQ(h.train_loss.size(), h.best_epoch + 1 + tc.early_stop_patience);
    // Restored weights must reproduce the recorded best validation loss.
    const std::vector<float> probs = predict_proba(*net, val.features);
    double restored_loss = 0.0;
    for (std::size_t i = 0; i < probs.size(); ++i) {
        const double p = std::clamp(static_cast<double>(probs[i]), 1e-7, 1.0 - 1e-7);
        const double y = val.labels[i];
        const double w = (y > 0.5) ? h.weight_positive : h.weight_negative;
        restored_loss += -w * (y * std::log(p) + (1.0 - y) * std::log(1.0 - p));
    }
    restored_loss /= static_cast<double>(probs.size());
    EXPECT_NEAR(restored_loss, h.val_loss[h.best_epoch], 1e-3);
}

TEST(TrainerTest, ClassWeightsComputedFromImbalance) {
    const std::vector<float> labels{1.0f, 0.0f, 0.0f, 0.0f};
    const auto [wp, wn] = balanced_class_weights(labels);
    EXPECT_DOUBLE_EQ(wp, 4.0 / 2.0);
    EXPECT_DOUBLE_EQ(wn, 4.0 / 6.0);
}

TEST(TrainerTest, ClassWeightsDegenerateCases) {
    const std::vector<float> all_neg{0.0f, 0.0f};
    const auto [wp, wn] = balanced_class_weights(all_neg);
    EXPECT_DOUBLE_EQ(wp, 1.0);
    EXPECT_DOUBLE_EQ(wn, 1.0);
}

TEST(TrainerTest, OutputBiasInitMatchesPrior) {
    // 10% positives -> bias = log(0.1/0.9).
    labeled_data train = make_toy_data(200, 8, 0.1);
    auto net = make_toy_model(9);
    train_config tc;
    tc.max_epochs = 1;
    tc.early_stop_patience = 0;
    fit(*net, train, labeled_data{tensor({0, 2}), {}}, tc);
    // After one epoch the bias has moved, so instead verify via a fresh
    // model with 0 epochs... max_epochs must be >0; use lr ~ 0.
    auto net2 = make_toy_model(9);
    train_config tc2;
    tc2.max_epochs = 1;
    tc2.learning_rate = 1e-12;
    tc2.early_stop_patience = 0;
    const double p = train.positive_fraction();
    fit(*net2, train, labeled_data{tensor({0, 2}), {}}, tc2);
    const auto params = net2->parameters();
    const parameter* out_bias = params.back();
    ASSERT_EQ(out_bias->value.size(), 1u);
    EXPECT_NEAR(out_bias->value[0], std::log(p / (1.0 - p)), 0.05);
}

TEST(TrainerTest, GatherRowsSelects) {
    tensor t({3, 2}, {1, 2, 3, 4, 5, 6});
    const std::vector<std::size_t> idx{2, 0};
    const tensor g = gather_rows(t, idx);
    EXPECT_EQ(g.shape(), (shape_t{2, 2}));
    EXPECT_FLOAT_EQ(g.at({0, 0}), 5.0f);
    EXPECT_FLOAT_EQ(g.at({1, 1}), 2.0f);
}

TEST(TrainerTest, GatherRowsRangeChecked) {
    tensor t({2, 2});
    const std::vector<std::size_t> idx{5};
    EXPECT_THROW(gather_rows(t, idx), std::invalid_argument);
}

TEST(TrainerTest, SnapshotRestoreRoundTrip) {
    auto net = make_toy_model(10);
    const std::vector<tensor> snap = snapshot_parameters(*net);
    for (parameter* p : net->parameters()) p->value.fill(0.0f);
    restore_parameters(*net, snap);
    const auto params = net->parameters();
    for (std::size_t i = 0; i < params.size(); ++i) {
        for (std::size_t j = 0; j < params[i]->value.size(); ++j) {
            EXPECT_FLOAT_EQ(params[i]->value[j], snap[i][j]);
        }
    }
}

TEST(TrainerTest, TrainingIsSeedDeterministic) {
    const labeled_data train = make_toy_data(100, 11);
    auto n1 = make_toy_model(12);
    auto n2 = make_toy_model(12);
    train_config tc;
    tc.max_epochs = 5;
    tc.shuffle_seed = 77;
    fit(*n1, train, {}, tc);
    fit(*n2, train, {}, tc);
    const auto p1 = n1->parameters();
    const auto p2 = n2->parameters();
    for (std::size_t i = 0; i < p1.size(); ++i) {
        for (std::size_t j = 0; j < p1[i]->value.size(); ++j) {
            EXPECT_FLOAT_EQ(p1[i]->value[j], p2[i]->value[j]);
        }
    }
}

TEST(TrainerTest, ValidatesInputs) {
    auto net = make_toy_model(13);
    labeled_data bad;
    bad.features = tensor({2, 2});
    bad.labels = {1.0f};  // count mismatch
    EXPECT_THROW(fit(*net, bad, {}, train_config{}), std::invalid_argument);
}

TEST(TrainerTest, TrainStepMatchesFitEpochLoss) {
    // fit() is now a loop over train_step(); a hand-rolled loop over the
    // same shuffled order must reproduce fit's first-epoch loss exactly.
    const labeled_data train = make_toy_data(96, 14);
    train_config tc;
    tc.max_epochs = 1;
    tc.batch_size = 32;
    tc.use_class_weights = false;
    tc.init_output_bias = false;
    tc.shuffle_seed = 15;
    auto fitted = make_toy_model(16);
    const train_history h = fit(*fitted, train, {}, tc);

    auto manual = make_toy_model(16);
    adam optim(manual->parameters(), tc.learning_rate);
    util::rng shuffler(tc.shuffle_seed);
    std::vector<std::size_t> order(train.size());
    std::iota(order.begin(), order.end(), 0);
    shuffler.shuffle(order);
    train_step_scratch scratch;
    double epoch_loss = 0.0;
    for (std::size_t start = 0; start < order.size(); start += tc.batch_size) {
        const std::size_t count = std::min(tc.batch_size, order.size() - start);
        const std::span<const std::size_t> idx(order.data() + start, count);
        epoch_loss +=
            train_step(*manual, train, idx, 1.0, 1.0, optim, scratch) * count;
    }
    epoch_loss /= static_cast<double>(train.size());
    ASSERT_EQ(h.train_loss.size(), 1u);
    EXPECT_DOUBLE_EQ(h.train_loss[0], epoch_loss);
}

TEST(TrainerTest, TrainStepBitIdenticalAcrossThreadCountsPerBackend) {
    // The full dispatched train step — gather, forward, weighted BCE,
    // backward through gemm_tn_acc, Adam — must leave bit-identical
    // parameters for any FALLSENSE_THREADS, on every available backend.
    struct thread_guard {
        ~thread_guard() { util::set_global_threads(0); }
    } threads;
    const labeled_data data = make_toy_data(64, 17);
    std::vector<std::size_t> idx(32);
    std::iota(idx.begin(), idx.end(), 0);

    auto run = [&](std::size_t thread_count) {
        util::set_global_threads(thread_count);
        auto net = make_toy_model(18);
        adam optim(net->parameters(), 1e-3);
        train_step_scratch scratch;
        for (int step = 0; step < 3; ++step) {
            train_step(*net, data, idx, 1.3, 0.8, optim, scratch);
        }
        return snapshot_parameters(*net);
    };

    const simd_mode saved_mode = active_simd_mode();
    for (const simd_backend backend : available_simd_backends()) {
        set_simd_mode(backend == simd_backend::scalar ? simd_mode::scalar
                                                      : simd_mode::native);
        set_simd_backend_cap(backend);
        const std::vector<tensor> p1 = run(1);
        const std::vector<tensor> p4 = run(4);
        ASSERT_EQ(p1.size(), p4.size());
        for (std::size_t i = 0; i < p1.size(); ++i) {
            for (std::size_t j = 0; j < p1[i].size(); ++j) {
                EXPECT_EQ(p1[i][j], p4[i][j])
                    << simd_backend_label(backend) << " parameter " << i
                    << " element " << j;
            }
        }
    }
    set_simd_backend_cap(simd_backend::avx512);
    set_simd_mode(saved_mode);
}

}  // namespace
}  // namespace fallsense::nn
