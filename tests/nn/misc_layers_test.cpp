#include "nn/misc_layers.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fallsense::nn {
namespace {

TEST(FlattenTest, CollapsesPerSampleDims) {
    flatten layer;
    const tensor x({2, 3, 4});
    const tensor y = layer.forward(x, false);
    EXPECT_EQ(y.shape(), (shape_t{2, 12}));
}

TEST(FlattenTest, BackwardRestoresShape) {
    flatten layer;
    const tensor x({2, 3, 4});
    layer.forward(x, true);
    const tensor gx = layer.backward(tensor({2, 12}));
    EXPECT_EQ(gx.shape(), (shape_t{2, 3, 4}));
}

TEST(FlattenTest, DataOrderPreserved) {
    flatten layer;
    tensor x({1, 2, 2}, {1, 2, 3, 4});
    const tensor y = layer.forward(x, false);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(DropoutTest, InferenceIsIdentity) {
    util::rng gen(1);
    dropout layer(0.5, gen);
    const tensor x({1, 100}, std::vector<float>(100, 1.0f));
    const tensor y = layer.forward(x, /*training=*/false);
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y[i], 1.0f);
}

TEST(DropoutTest, TrainingDropsAndScales) {
    util::rng gen(2);
    dropout layer(0.5, gen);
    const tensor x({1, 1000}, std::vector<float>(1000, 1.0f));
    const tensor y = layer.forward(x, /*training=*/true);
    int dropped = 0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        if (y[i] == 0.0f) {
            ++dropped;
        } else {
            EXPECT_FLOAT_EQ(y[i], 2.0f);  // inverted dropout scaling
        }
    }
    EXPECT_NEAR(dropped, 500, 80);
}

TEST(DropoutTest, ExpectedValuePreserved) {
    util::rng gen(3);
    dropout layer(0.3, gen);
    const tensor x({1, 20000}, std::vector<float>(20000, 1.0f));
    const tensor y = layer.forward(x, true);
    EXPECT_NEAR(y.sum() / 20000.0, 1.0, 0.05);
}

TEST(DropoutTest, BackwardUsesSameMask) {
    util::rng gen(4);
    dropout layer(0.5, gen);
    const tensor x({1, 50}, std::vector<float>(50, 1.0f));
    const tensor y = layer.forward(x, true);
    const tensor gx = layer.backward(tensor({1, 50}, std::vector<float>(50, 1.0f)));
    for (std::size_t i = 0; i < 50; ++i) EXPECT_FLOAT_EQ(gx[i], y[i]);
}

TEST(DropoutTest, ZeroProbabilityIsIdentityEvenTraining) {
    util::rng gen(5);
    dropout layer(0.0, gen);
    const tensor x({1, 10}, std::vector<float>(10, 3.0f));
    const tensor y = layer.forward(x, true);
    for (std::size_t i = 0; i < 10; ++i) EXPECT_FLOAT_EQ(y[i], 3.0f);
}

TEST(DropoutTest, RejectsInvalidProbability) {
    util::rng gen(6);
    EXPECT_THROW(dropout(1.0, gen), std::invalid_argument);
    EXPECT_THROW(dropout(-0.1, gen), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::nn
