#include "nn/init.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fallsense::nn {
namespace {

TEST(InitTest, GlorotUniformRespectsLimit) {
    util::rng gen(1);
    tensor w({64, 32});
    glorot_uniform(w, 64, 32, gen);
    const double limit = std::sqrt(6.0 / (64.0 + 32.0));
    for (const float v : w.values()) {
        EXPECT_GE(v, -limit);
        EXPECT_LE(v, limit);
    }
}

TEST(InitTest, GlorotUniformSpreadIsUsed) {
    util::rng gen(2);
    tensor w({1000});
    glorot_uniform(w, 500, 500, gen);
    const double limit = std::sqrt(6.0 / 1000.0);
    double max_abs = 0.0, sum = 0.0;
    for (const float v : w.values()) {
        max_abs = std::max(max_abs, std::abs(static_cast<double>(v)));
        sum += v;
    }
    EXPECT_GT(max_abs, 0.7 * limit);            // fills the range
    EXPECT_NEAR(sum / 1000.0, 0.0, limit / 5);  // centered
}

TEST(InitTest, HeNormalVarianceMatchesFanIn) {
    util::rng gen(3);
    tensor w({20000});
    he_normal(w, 50, gen);
    double sum = 0.0, sum_sq = 0.0;
    for (const float v : w.values()) {
        sum += v;
        sum_sq += static_cast<double>(v) * v;
    }
    const double var = sum_sq / 20000.0 - std::pow(sum / 20000.0, 2);
    // Truncation at 2 sigma shrinks variance slightly below 2/fan_in.
    EXPECT_NEAR(var, 2.0 / 50.0, 0.012);
}

TEST(InitTest, HeNormalTruncatesAtTwoSigma) {
    util::rng gen(4);
    tensor w({20000});
    he_normal(w, 10, gen);
    const double two_sigma = 2.0 * std::sqrt(2.0 / 10.0);
    for (const float v : w.values()) {
        EXPECT_LE(std::abs(static_cast<double>(v)), two_sigma + 1e-6);
    }
}

TEST(InitTest, RecurrentNormalScale) {
    util::rng gen(5);
    tensor w({10000});
    recurrent_normal(w, 25, gen);
    double sum_sq = 0.0;
    for (const float v : w.values()) sum_sq += static_cast<double>(v) * v;
    EXPECT_NEAR(sum_sq / 10000.0, 1.0 / 25.0, 0.005);
}

TEST(InitTest, Validation) {
    util::rng gen(6);
    tensor w({4});
    EXPECT_THROW(glorot_uniform(w, 0, 0, gen), std::invalid_argument);
    EXPECT_THROW(he_normal(w, 0, gen), std::invalid_argument);
    EXPECT_THROW(recurrent_normal(w, 0, gen), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::nn
