// Runtime GEMM dispatch (nn/simd.hpp): mode parsing and resolution, the
// scalar-kernel determinism baseline, float tolerance between the scalar
// and vectorized kernels, and the int8 path's bit-identity across modes
// (integer accumulation is exact, so dispatch may never change a logit).
#include "nn/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "nn/dense.hpp"
#include "nn/gemm.hpp"
#include "nn/tensor.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

namespace fallsense::nn {
namespace {

/// Restore the dispatch mode on scope exit so tests compose with any
/// FALLSENSE_SIMD the suite was launched under (the CI native leg).
struct simd_mode_guard {
    simd_mode saved;
    explicit simd_mode_guard(simd_mode mode) : saved(active_simd_mode()) {
        set_simd_mode(mode);
    }
    ~simd_mode_guard() { set_simd_mode(saved); }
};

TEST(SimdTest, ParseAcceptsTheTwoModes) {
    EXPECT_EQ(parse_simd_mode("scalar"), simd_mode::scalar);
    EXPECT_EQ(parse_simd_mode("native"), simd_mode::native);
    EXPECT_FALSE(parse_simd_mode("avx2").has_value());
    EXPECT_FALSE(parse_simd_mode("").has_value());
    EXPECT_FALSE(parse_simd_mode("Scalar").has_value());
}

TEST(SimdTest, ModeNamesRoundTrip) {
    EXPECT_EQ(parse_simd_mode(simd_mode_name(simd_mode::scalar)), simd_mode::scalar);
    EXPECT_EQ(parse_simd_mode(simd_mode_name(simd_mode::native)), simd_mode::native);
}

TEST(SimdTest, BackendNameMatchesAvailability) {
    const std::string backend = simd_backend_name();
    if (simd_native_available()) {
        EXPECT_NE(backend, "scalar");
    } else {
        EXPECT_EQ(backend, "scalar");
    }
}

TEST(SimdTest, RequestedNativeDegradesWhenUnavailable) {
    simd_mode_guard guard(simd_mode::native);
    if (simd_native_available()) {
        EXPECT_EQ(active_simd_mode(), simd_mode::native);
    } else {
        EXPECT_EQ(active_simd_mode(), simd_mode::scalar);
    }
    set_simd_mode(simd_mode::scalar);
    EXPECT_EQ(active_simd_mode(), simd_mode::scalar);
}

/// gemm_nn in a given mode over deterministic inputs.
std::vector<float> gemm_result(simd_mode mode, std::size_t m, std::size_t n, std::size_t k) {
    simd_mode_guard guard(mode);
    util::rng gen(99);
    std::vector<float> a(m * k);
    std::vector<float> b(k * n);
    for (float& v : a) v = static_cast<float>(gen.uniform(-1.0, 1.0));
    for (float& v : b) v = static_cast<float>(gen.uniform(-1.0, 1.0));
    std::vector<float> c(m * n);
    gemm_nn(m, n, k, a.data(), b.data(), c.data(), /*accumulate=*/false);
    return c;
}

TEST(SimdTest, ScalarModeIsDeterministic) {
    // The scalar kernels are the golden baseline: repeat runs bit-equal.
    const auto first = gemm_result(simd_mode::scalar, 13, 21, 37);
    const auto second = gemm_result(simd_mode::scalar, 13, 21, 37);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i], second[i]);
}

TEST(SimdTest, NativeGemmMatchesScalarWithinTolerance) {
    if (!simd_native_available()) GTEST_SKIP() << "no vector backend on this host";
    // Odd n exercises the masked / scalar column tails; m > 4 exercises
    // both the quad and single-row kernels.  FMA rounds once where the
    // scalar kernels round twice, so equality is to tolerance, not bits.
    const auto scalar = gemm_result(simd_mode::scalar, 13, 21, 37);
    const auto native = gemm_result(simd_mode::native, 13, 21, 37);
    ASSERT_EQ(scalar.size(), native.size());
    for (std::size_t i = 0; i < scalar.size(); ++i) {
        EXPECT_NEAR(native[i], scalar[i], 1e-4 * (1.0 + std::abs(scalar[i])))
            << "element " << i;
    }
}

TEST(SimdTest, NativeDenseForwardMatchesScalarWithinTolerance) {
    if (!simd_native_available()) GTEST_SKIP() << "no vector backend on this host";
    util::rng gen(7);
    dense l(23, 11, gen);  // 11 outputs: the 8-lane strip plus a tail
    tensor x({5, 23});
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = static_cast<float>(gen.uniform(-1.0, 1.0));
    }
    tensor scalar_y, native_y;
    {
        simd_mode_guard guard(simd_mode::scalar);
        scalar_y = l.forward(x, false);
    }
    {
        simd_mode_guard guard(simd_mode::native);
        native_y = l.forward(x, false);
    }
    ASSERT_EQ(scalar_y.size(), native_y.size());
    for (std::size_t i = 0; i < scalar_y.size(); ++i) {
        EXPECT_NEAR(native_y[i], scalar_y[i], 1e-4 * (1.0 + std::abs(scalar_y[i])));
    }
}

TEST(SimdTest, Int8ScoringIsBitIdenticalAcrossModes) {
    // Int8 accumulators are exact int32 sums, so the vector axpy must
    // reproduce the scalar kernel bit for bit — dispatch may change
    // latency, never a logit.  (Without a vector backend both modes run
    // the scalar kernel and the check is trivially true.)
    serve::scorer_spec spec;
    spec.backend = serve::scorer_backend::int8;
    spec.window_samples = 20;
    spec.seed = 3;

    const std::size_t elems = 20 * core::k_feature_channels;
    constexpr std::size_t k_count = 17;  // odd: exercises the axpy tails
    std::vector<float> windows(k_count * elems);
    util::rng gen(31);
    for (float& v : windows) v = static_cast<float>(gen.uniform(-1.2, 1.2));

    std::vector<float> scalar_out(k_count);
    std::vector<float> native_out(k_count);
    {
        simd_mode_guard guard(simd_mode::scalar);
        serve::make_scorer(spec)->score(windows, k_count, elems, scalar_out);
    }
    {
        simd_mode_guard guard(simd_mode::native);
        serve::make_scorer(spec)->score(windows, k_count, elems, native_out);
    }
    for (std::size_t i = 0; i < k_count; ++i) {
        EXPECT_EQ(native_out[i], scalar_out[i]) << "window " << i;
    }
}

}  // namespace
}  // namespace fallsense::nn
