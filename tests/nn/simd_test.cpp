// Runtime GEMM dispatch (nn/simd.hpp): mode/backend parsing and
// resolution, the scalar-kernel determinism baseline, float tolerance
// between the scalar and vectorized kernels, the cross-backend "one native
// golden surface" contract, the fused bias+activation epilogue's
// bit-identity with the unfused op sequence, and the int8 path's
// bit-identity across modes and backends (integer accumulation is exact,
// so dispatch may never change a logit).
#include "nn/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/gemm.hpp"
#include "nn/misc_layers.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "nn/tensor.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fallsense::nn {
namespace {

/// Restore the dispatch mode on scope exit so tests compose with any
/// FALLSENSE_SIMD the suite was launched under (the CI native leg).
struct simd_mode_guard {
    simd_mode saved;
    explicit simd_mode_guard(simd_mode mode) : saved(active_simd_mode()) {
        set_simd_mode(mode);
    }
    ~simd_mode_guard() { set_simd_mode(saved); }
};

/// Pin native-mode resolution to one backend; restores the uncapped
/// default (the best probed tier) on exit.
struct simd_backend_cap_guard {
    explicit simd_backend_cap_guard(simd_backend cap) { set_simd_backend_cap(cap); }
    ~simd_backend_cap_guard() { set_simd_backend_cap(simd_backend::avx512); }
};

/// Force the epilogue-fusion planner flag, restoring the prior value.
struct fusion_guard {
    bool saved;
    explicit fusion_guard(bool on) : saved(epilogue_fusion_enabled()) {
        set_epilogue_fusion(on);
    }
    ~fusion_guard() { set_epilogue_fusion(saved); }
};

/// Restores the default pool size even when an assertion fails mid-test.
struct thread_guard {
    ~thread_guard() { util::set_global_threads(0); }
};

TEST(SimdTest, ParseAcceptsTheTwoModes) {
    EXPECT_EQ(parse_simd_mode("scalar"), simd_mode::scalar);
    EXPECT_EQ(parse_simd_mode("native"), simd_mode::native);
    EXPECT_FALSE(parse_simd_mode("avx2").has_value());
    EXPECT_FALSE(parse_simd_mode("").has_value());
    EXPECT_FALSE(parse_simd_mode("Scalar").has_value());
}

TEST(SimdTest, ModeNamesRoundTrip) {
    EXPECT_EQ(parse_simd_mode(simd_mode_name(simd_mode::scalar)), simd_mode::scalar);
    EXPECT_EQ(parse_simd_mode(simd_mode_name(simd_mode::native)), simd_mode::native);
}

TEST(SimdTest, BackendNameMatchesAvailability) {
    const std::string backend = simd_backend_name();
    if (simd_native_available()) {
        EXPECT_NE(backend, "scalar");
    } else {
        EXPECT_EQ(backend, "scalar");
    }
}

TEST(SimdTest, RequestedNativeDegradesWhenUnavailable) {
    simd_mode_guard guard(simd_mode::native);
    if (simd_native_available()) {
        EXPECT_EQ(active_simd_mode(), simd_mode::native);
    } else {
        EXPECT_EQ(active_simd_mode(), simd_mode::scalar);
    }
    set_simd_mode(simd_mode::scalar);
    EXPECT_EQ(active_simd_mode(), simd_mode::scalar);
}

/// gemm_nn in a given mode over deterministic inputs.
std::vector<float> gemm_result(simd_mode mode, std::size_t m, std::size_t n, std::size_t k) {
    simd_mode_guard guard(mode);
    util::rng gen(99);
    std::vector<float> a(m * k);
    std::vector<float> b(k * n);
    for (float& v : a) v = static_cast<float>(gen.uniform(-1.0, 1.0));
    for (float& v : b) v = static_cast<float>(gen.uniform(-1.0, 1.0));
    std::vector<float> c(m * n);
    gemm_nn(m, n, k, a.data(), b.data(), c.data(), /*accumulate=*/false);
    return c;
}

TEST(SimdTest, ScalarModeIsDeterministic) {
    // The scalar kernels are the golden baseline: repeat runs bit-equal.
    const auto first = gemm_result(simd_mode::scalar, 13, 21, 37);
    const auto second = gemm_result(simd_mode::scalar, 13, 21, 37);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i], second[i]);
}

TEST(SimdTest, NativeGemmMatchesScalarWithinTolerance) {
    if (!simd_native_available()) GTEST_SKIP() << "no vector backend on this host";
    // Odd n exercises the masked / scalar column tails; m > 4 exercises
    // both the quad and single-row kernels.  FMA rounds once where the
    // scalar kernels round twice, so equality is to tolerance, not bits.
    const auto scalar = gemm_result(simd_mode::scalar, 13, 21, 37);
    const auto native = gemm_result(simd_mode::native, 13, 21, 37);
    ASSERT_EQ(scalar.size(), native.size());
    for (std::size_t i = 0; i < scalar.size(); ++i) {
        EXPECT_NEAR(native[i], scalar[i], 1e-4 * (1.0 + std::abs(scalar[i])))
            << "element " << i;
    }
}

TEST(SimdTest, NativeDenseForwardMatchesScalarWithinTolerance) {
    if (!simd_native_available()) GTEST_SKIP() << "no vector backend on this host";
    util::rng gen(7);
    dense l(23, 11, gen);  // 11 outputs: the 8-lane strip plus a tail
    tensor x({5, 23});
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = static_cast<float>(gen.uniform(-1.0, 1.0));
    }
    tensor scalar_y, native_y;
    {
        simd_mode_guard guard(simd_mode::scalar);
        scalar_y = l.forward(x, false);
    }
    {
        simd_mode_guard guard(simd_mode::native);
        native_y = l.forward(x, false);
    }
    ASSERT_EQ(scalar_y.size(), native_y.size());
    for (std::size_t i = 0; i < scalar_y.size(); ++i) {
        EXPECT_NEAR(native_y[i], scalar_y[i], 1e-4 * (1.0 + std::abs(scalar_y[i])));
    }
}

TEST(SimdBackendTest, ParseBackendAcceptsCanonicalLabels) {
    EXPECT_EQ(parse_simd_backend("scalar"), simd_backend::scalar);
    EXPECT_EQ(parse_simd_backend("neon"), simd_backend::neon);
    EXPECT_EQ(parse_simd_backend("avx2-fma"), simd_backend::avx2_fma);
    EXPECT_EQ(parse_simd_backend("avx512"), simd_backend::avx512);
    EXPECT_FALSE(parse_simd_backend("avx2").has_value());
    EXPECT_FALSE(parse_simd_backend("AVX512").has_value());
    EXPECT_FALSE(parse_simd_backend("").has_value());
}

TEST(SimdBackendTest, BackendLabelsRoundTrip) {
    for (const simd_backend b : {simd_backend::scalar, simd_backend::neon,
                                 simd_backend::avx2_fma, simd_backend::avx512}) {
        EXPECT_EQ(parse_simd_backend(simd_backend_label(b)), b);
    }
}

TEST(SimdBackendTest, AvailableBackendsStartWithScalarWorstFirst) {
    const std::vector<simd_backend> backends = available_simd_backends();
    ASSERT_FALSE(backends.empty());
    EXPECT_EQ(backends.front(), simd_backend::scalar);
    for (std::size_t i = 1; i < backends.size(); ++i) {
        EXPECT_LT(static_cast<int>(backends[i - 1]), static_cast<int>(backends[i]));
    }
    if (simd_native_available()) {
        // The probe name reports the best tier, which must be listed last.
        EXPECT_EQ(std::string(simd_backend_label(backends.back())), simd_backend_name());
    } else {
        EXPECT_EQ(backends.size(), 1u);
    }
}

TEST(SimdBackendTest, CapResolvesToEveryAvailableBackend) {
    simd_mode_guard mode(simd_mode::native);
    for (const simd_backend b : available_simd_backends()) {
        simd_backend_cap_guard cap(b);
        EXPECT_EQ(active_simd_backend(), b);
        EXPECT_EQ(std::string(active_simd_backend_name()), simd_backend_label(b));
    }
}

TEST(SimdBackendTest, ScalarModeIgnoresBackendCap) {
    simd_mode_guard mode(simd_mode::scalar);
    simd_backend_cap_guard cap(simd_backend::avx512);
    EXPECT_EQ(active_simd_backend(), simd_backend::scalar);
    EXPECT_STREQ(active_simd_backend_name(), "scalar");
}

/// gemm_nn with native mode pinned to `backend` over deterministic inputs.
std::vector<float> gemm_backend_result(simd_backend backend, std::size_t m, std::size_t n,
                                       std::size_t k) {
    simd_backend_cap_guard cap(backend);
    return gemm_result(backend == simd_backend::scalar ? simd_mode::scalar
                                                       : simd_mode::native,
                       m, n, k);
}

TEST(SimdBackendTest, VectorBackendsShareOneGoldenSurface) {
    // Every vector backend issues the identical per-element fmadd sequence
    // (ascending k, one rounding per step), so their float results are bit
    // for bit the same: "native" is a single golden surface.  On hosts with
    // one vector tier this degenerates to a determinism re-run.
    const std::vector<simd_backend> backends = available_simd_backends();
    if (backends.size() < 2) GTEST_SKIP() << "no vector backend on this host";
    const auto reference = gemm_backend_result(backends[1], 13, 21, 37);
    for (std::size_t bi = 1; bi < backends.size(); ++bi) {
        const auto result = gemm_backend_result(backends[bi], 13, 21, 37);
        ASSERT_EQ(result.size(), reference.size());
        for (std::size_t i = 0; i < result.size(); ++i) {
            EXPECT_EQ(result[i], reference[i])
                << "element " << i << " differs between "
                << simd_backend_label(backends[1]) << " and "
                << simd_backend_label(backends[bi]);
        }
    }
}

TEST(SimdBackendTest, PerBackendGoldensAreDeterministic) {
    // The pinned golden contract per backend: repeat runs are bit-equal.
    // Scalar is the cross-build baseline; each vector tier is additionally
    // pinned against the shared native surface above.
    for (const simd_backend b : available_simd_backends()) {
        const auto first = gemm_backend_result(b, 9, 17, 129);
        const auto second = gemm_backend_result(b, 9, 17, 129);
        ASSERT_EQ(first.size(), second.size());
        for (std::size_t i = 0; i < first.size(); ++i) {
            EXPECT_EQ(first[i], second[i]) << simd_backend_label(b) << " element " << i;
        }
    }
}

TEST(SimdBackendTest, GemmTnAccBitIdenticalAcrossThreadCountsPerBackend) {
    thread_guard threads;
    const std::size_t m = 27, n = 16, k = 2048;
    util::rng gen(57);
    std::vector<float> a(k * m), b(k * n), c0(m * n);
    for (float& v : a) v = static_cast<float>(gen.normal());
    for (float& v : b) v = static_cast<float>(gen.normal());
    for (float& v : c0) v = static_cast<float>(gen.normal());
    for (const simd_backend backend : available_simd_backends()) {
        simd_mode_guard mode(backend == simd_backend::scalar ? simd_mode::scalar
                                                             : simd_mode::native);
        simd_backend_cap_guard cap(backend);
        util::set_global_threads(1);
        std::vector<float> c1 = c0;
        gemm_tn_acc(m, n, k, a.data(), b.data(), c1.data());
        util::set_global_threads(4);
        std::vector<float> c4 = c0;
        gemm_tn_acc(m, n, k, a.data(), b.data(), c4.data());
        util::set_global_threads(0);
        for (std::size_t i = 0; i < m * n; ++i) {
            EXPECT_EQ(c1[i], c4[i])
                << simd_backend_label(backend) << " element " << i
                << " differs between 1 and 4 threads";
        }
    }
}

TEST(SimdBackendTest, GemmTnAccMatchesReferencePerBackend) {
    const std::size_t m = 12, n = 7, k = 640;
    util::rng gen(58);
    std::vector<float> a(k * m), b(k * n);
    for (float& v : a) v = static_cast<float>(gen.normal());
    for (float& v : b) v = static_cast<float>(gen.normal());
    std::vector<double> expected(m * n, 0.0);
    for (std::size_t kk = 0; kk < k; ++kk) {
        for (std::size_t i = 0; i < m; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                expected[i * n + j] +=
                    static_cast<double>(a[kk * m + i]) * b[kk * n + j];
            }
        }
    }
    for (const simd_backend backend : available_simd_backends()) {
        simd_mode_guard mode(backend == simd_backend::scalar ? simd_mode::scalar
                                                             : simd_mode::native);
        simd_backend_cap_guard cap(backend);
        std::vector<float> c(m * n, 0.0f);
        gemm_tn_acc(m, n, k, a.data(), b.data(), c.data());
        for (std::size_t i = 0; i < m * n; ++i) {
            EXPECT_NEAR(c[i], expected[i], 1e-3 * (1.0 + std::abs(expected[i])))
                << simd_backend_label(backend);
        }
    }
}

/// Apply `act` exactly as the unfused activation layers do (relu's ternary,
/// sigmoid_scalar per element).
void apply_unfused(fused_act act, std::vector<float>& c) {
    if (act == fused_act::relu) {
        for (float& v : c) v = v > 0.0f ? v : 0.0f;
    } else if (act == fused_act::sigmoid) {
        for (float& v : c) v = sigmoid_scalar(v);
    }
}

TEST(SimdFusionTest, FusedEpilogueBitIdenticalToUnfusedPerBackend) {
    // The fused kernel seeds each output row with the bias, runs the exact
    // ascending-k accumulation of the unfused kernel, and applies the
    // activation per element — so fused output must equal
    // bias-seed + gemm + separate activation bit for bit, on every backend.
    const std::size_t m = 7, n = 11, k = 33;
    util::rng gen(61);
    std::vector<float> a(m * k), b(k * n), bias(n);
    for (float& v : a) v = static_cast<float>(gen.normal());
    for (float& v : b) v = static_cast<float>(gen.normal());
    for (float& v : bias) v = static_cast<float>(gen.normal());
    for (const simd_backend backend : available_simd_backends()) {
        simd_mode_guard mode(backend == simd_backend::scalar ? simd_mode::scalar
                                                             : simd_mode::native);
        simd_backend_cap_guard cap(backend);
        for (const fused_act act :
             {fused_act::none, fused_act::relu, fused_act::sigmoid}) {
            std::vector<float> unfused(m * n);
            gemm_nn_bias_act(m, n, k, a.data(), b.data(), bias.data(),
                             fused_act::none, unfused.data());
            apply_unfused(act, unfused);
            std::vector<float> fused(m * n);
            gemm_nn_bias_act(m, n, k, a.data(), b.data(), bias.data(), act,
                             fused.data());
            for (std::size_t i = 0; i < m * n; ++i) {
                EXPECT_EQ(fused[i], unfused[i])
                    << simd_backend_label(backend) << " "
                    << fused_act_name(act) << " element " << i;
            }
        }
    }
}

TEST(SimdFusionTest, FusedBiasActMatchesNaiveReference) {
    const std::size_t m = 5, n = 9, k = 21;
    util::rng gen(62);
    std::vector<float> a(m * k), b(k * n), bias(n);
    for (float& v : a) v = static_cast<float>(gen.normal());
    for (float& v : b) v = static_cast<float>(gen.normal());
    for (float& v : bias) v = static_cast<float>(gen.normal());
    std::vector<float> c(m * n);
    gemm_nn_bias_act(m, n, k, a.data(), b.data(), bias.data(), fused_act::relu,
                     c.data());
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = bias[j];
            for (std::size_t kk = 0; kk < k; ++kk) {
                acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
            }
            const double expected = acc > 0.0 ? acc : 0.0;
            EXPECT_NEAR(c[i * n + j], expected, 1e-4 * (1.0 + std::abs(expected)));
        }
    }
}

TEST(SimdFusionTest, OnlyGemmLayersReportFusable) {
    util::rng gen(63);
    conv1d conv(3, 4, 3, gen);
    dense fc(4, 2, gen);
    maxpool1d pool(2);
    relu act;
    EXPECT_TRUE(conv.can_fuse(fused_act::relu));
    EXPECT_TRUE(conv.can_fuse(fused_act::sigmoid));
    EXPECT_TRUE(fc.can_fuse(fused_act::relu));
    // Non-GEMM layers only accept the trivial "no epilogue" request.
    EXPECT_TRUE(pool.can_fuse(fused_act::none));
    EXPECT_FALSE(pool.can_fuse(fused_act::relu));
    EXPECT_FALSE(act.can_fuse(fused_act::sigmoid));
}

TEST(SimdFusionTest, DefaultLayerRejectsFusedEpilogue) {
    maxpool1d pool(2);
    std::vector<float> in(8, 1.0f), out(4);
    EXPECT_THROW(pool.forward_into_fused(in, {4, 2}, 1, {}, out, fused_act::relu),
                 std::logic_error);
}

/// The paper's branch topology in miniature: Conv1D -> ReLU -> MaxPool ->
/// Flatten -> Dense -> ReLU -> Dense(1).  Both GEMM layers have a fusable
/// activation behind them.
std::unique_ptr<sequential> make_fusable_stack(std::uint64_t seed) {
    util::rng gen(seed);
    auto net = std::make_unique<sequential>();
    net->emplace<conv1d>(3, 8, 3, gen);
    net->emplace<relu>();
    net->emplace<maxpool1d>(2);
    net->emplace<flatten>();
    net->emplace<dense>(9 * 8, 16, gen);
    net->emplace<relu>();
    net->emplace<dense>(16, 1, gen, false);
    return net;
}

TEST(SimdFusionTest, SequentialFusionBitIdenticalToUnfusedPerBackend) {
    // Plan-time fusion absorbs the ReLU layers into the preceding GEMM
    // calls; because the fused kernel replays the exact unfused op
    // sequence, forward_into output must not change by a single bit — per
    // backend, and also versus the allocating forward() path.
    const shape_t row_shape{20, 3};
    const std::size_t batch = 5;
    tensor x({batch, 20, 3});
    util::rng gen(64);
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = static_cast<float>(gen.uniform(-1.5, 1.5));
    }
    for (const simd_backend backend : available_simd_backends()) {
        simd_mode_guard mode(backend == simd_backend::scalar ? simd_mode::scalar
                                                             : simd_mode::native);
        simd_backend_cap_guard cap(backend);
        auto net = make_fusable_stack(65);
        const tensor reference = net->forward(x, /*training=*/false);

        auto run = [&](bool fuse) {
            fusion_guard fusion(fuse);
            const std::size_t bytes = net->infer_workspace_bytes(row_shape, batch);
            std::vector<float> ws((bytes + sizeof(float) - 1) / sizeof(float));
            std::vector<float> out(batch);
            net->forward_into(std::span<const float>(x.data(), x.size()), row_shape,
                              batch, ws, out);
            return out;
        };
        const std::vector<float> fused = run(true);
        const std::vector<float> unfused = run(false);
        ASSERT_EQ(fused.size(), unfused.size());
        for (std::size_t i = 0; i < fused.size(); ++i) {
            EXPECT_EQ(fused[i], unfused[i])
                << simd_backend_label(backend) << " logit " << i;
            EXPECT_EQ(fused[i], reference[i])
                << simd_backend_label(backend) << " logit " << i << " vs forward()";
        }
    }
}

TEST(SimdFusionTest, TrainingForwardStillMaterializesReluMask) {
    // Fusion only rewires the inference plan: the training-path forward
    // keeps the explicit ReLU layer (its mask feeds backward), so gradients
    // are untouched by the fusion flag.
    fusion_guard fusion(true);
    auto net = make_fusable_stack(66);
    tensor x({2, 20, 3});
    util::rng gen(67);
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = static_cast<float>(gen.uniform(-1.0, 1.0));
    }
    const tensor y = net->forward(x, /*training=*/true);
    tensor gy(y.shape());
    gy.fill(1.0f);
    const tensor gx = net->backward(gy);  // throws if any mask is missing
    EXPECT_EQ(gx.shape(), x.shape());
}

TEST(SimdTest, Int8ScoringIsBitIdenticalAcrossModes) {
    // Int8 accumulators are exact int32 sums, so the vector axpy must
    // reproduce the scalar kernel bit for bit — dispatch may change
    // latency, never a logit.  (Without a vector backend both modes run
    // the scalar kernel and the check is trivially true.)
    serve::scorer_spec spec;
    spec.backend = serve::scorer_backend::int8;
    spec.window_samples = 20;
    spec.seed = 3;

    const std::size_t elems = 20 * core::k_feature_channels;
    constexpr std::size_t k_count = 17;  // odd: exercises the axpy tails
    std::vector<float> windows(k_count * elems);
    util::rng gen(31);
    for (float& v : windows) v = static_cast<float>(gen.uniform(-1.2, 1.2));

    std::vector<float> scalar_out(k_count);
    std::vector<float> native_out(k_count);
    {
        simd_mode_guard guard(simd_mode::scalar);
        serve::make_scorer(spec)->score(windows, k_count, elems, scalar_out);
    }
    {
        simd_mode_guard guard(simd_mode::native);
        serve::make_scorer(spec)->score(windows, k_count, elems, native_out);
    }
    for (std::size_t i = 0; i < k_count; ++i) {
        EXPECT_EQ(native_out[i], scalar_out[i]) << "window " << i;
    }

    // And per pinned backend: every vector axpy sums the same exact int32
    // products, so each tier reproduces the scalar logits bit for bit.
    for (const simd_backend backend : available_simd_backends()) {
        simd_mode_guard guard(backend == simd_backend::scalar ? simd_mode::scalar
                                                              : simd_mode::native);
        simd_backend_cap_guard cap(backend);
        std::vector<float> backend_out(k_count);
        serve::make_scorer(spec)->score(windows, k_count, elems, backend_out);
        for (std::size_t i = 0; i < k_count; ++i) {
            EXPECT_EQ(backend_out[i], scalar_out[i])
                << simd_backend_label(backend) << " window " << i;
        }
    }
}

}  // namespace
}  // namespace fallsense::nn
