// Finite-difference gradient verification for every trainable layer.
//
// For a random projection loss L = sum_i c_i * y_i the analytic backward
// pass must match (L(θ+ε) - L(θ-ε)) / 2ε for every parameter and input
// element.  This is the strongest correctness check we have for the BPTT
// implementations (LSTM, ConvLSTM2D).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/conv_lstm2d.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace fallsense::nn {
namespace {

/// Fixed random projection making the layer output a scalar loss.
struct projection {
    std::vector<float> coeffs;

    explicit projection(std::size_t n, util::rng& gen) {
        coeffs.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            coeffs.push_back(static_cast<float>(gen.uniform(-1.0, 1.0)));
        }
    }
    double loss(const tensor& y) const {
        double acc = 0.0;
        for (std::size_t i = 0; i < y.size(); ++i) acc += coeffs[i] * y[i];
        return acc;
    }
    tensor grad(const shape_t& shape) const {
        tensor g(shape);
        for (std::size_t i = 0; i < g.size(); ++i) g[i] = coeffs[i];
        return g;
    }
};

void fill_random(tensor& t, util::rng& gen, double scale = 0.5) {
    for (float& v : t.values()) v = static_cast<float>(gen.normal(0.0, scale));
}

/// Check analytic vs numeric gradients for a layer on a given input.
void check_layer_gradients(layer& l, tensor input, double tolerance = 2e-2) {
    util::rng gen(99);
    const tensor y0 = l.forward(input, true);
    projection proj(y0.size(), gen);

    // Analytic gradients.
    for (parameter* p : l.parameters()) p->zero_grad();
    l.forward(input, true);
    const tensor grad_input = l.backward(proj.grad(y0.shape()));

    constexpr float eps = 1e-3f;
    // Parameters: sample a subset of indices to keep runtime bounded.
    for (parameter* p : l.parameters()) {
        const std::size_t stride = std::max<std::size_t>(1, p->value.size() / 24);
        for (std::size_t i = 0; i < p->value.size(); i += stride) {
            const float saved = p->value[i];
            p->value[i] = saved + eps;
            const double lp = proj.loss(l.forward(input, true));
            p->value[i] = saved - eps;
            const double lm = proj.loss(l.forward(input, true));
            p->value[i] = saved;
            const double numeric = (lp - lm) / (2.0 * eps);
            const double analytic = p->grad[i];
            const double denom = std::max({std::abs(numeric), std::abs(analytic), 1.0});
            EXPECT_NEAR(analytic / denom, numeric / denom, tolerance)
                << p->name << "[" << i << "]";
        }
    }
    // Input gradient.
    const std::size_t stride = std::max<std::size_t>(1, input.size() / 24);
    for (std::size_t i = 0; i < input.size(); i += stride) {
        const float saved = input[i];
        input[i] = saved + eps;
        const double lp = proj.loss(l.forward(input, true));
        input[i] = saved - eps;
        const double lm = proj.loss(l.forward(input, true));
        input[i] = saved;
        const double numeric = (lp - lm) / (2.0 * eps);
        const double analytic = grad_input[i];
        const double denom = std::max({std::abs(numeric), std::abs(analytic), 1.0});
        EXPECT_NEAR(analytic / denom, numeric / denom, tolerance) << "input[" << i << "]";
    }
}

TEST(GradientCheck, Dense) {
    util::rng gen(1);
    dense layer(5, 4, gen);
    tensor x({3, 5});
    fill_random(x, gen);
    check_layer_gradients(layer, std::move(x));
}

TEST(GradientCheck, Conv1d) {
    util::rng gen(2);
    conv1d layer(3, 4, 3, gen);
    tensor x({2, 8, 3});
    fill_random(x, gen);
    check_layer_gradients(layer, std::move(x));
}

TEST(GradientCheck, Lstm) {
    util::rng gen(3);
    lstm layer(4, 5, gen);
    tensor x({2, 6, 4});
    fill_random(x, gen);
    check_layer_gradients(layer, std::move(x));
}

TEST(GradientCheck, ConvLstm2d) {
    util::rng gen(4);
    conv_lstm2d layer(1, 3, 3, gen);
    tensor x({2, 4, 3, 3, 1});
    fill_random(x, gen);
    check_layer_gradients(layer, std::move(x));
}

TEST(GradientCheck, SequentialComposition) {
    // Dense -> ReLU -> Dense through the sequential container: the chain
    // rule must compose.  ReLU kinks can break finite differences exactly at
    // zero, so inputs are kept away from the kink.
    util::rng gen(5);
    sequential net;
    net.emplace<dense>(4, 6, gen, true, "d0");
    net.emplace<relu>();
    net.emplace<dense>(6, 2, gen, false, "d1");

    tensor x({2, 4});
    for (float& v : x.values()) {
        v = static_cast<float>(gen.uniform(0.3, 1.0)) *
            (gen.bernoulli(0.5) ? 1.0f : -1.0f);
    }

    projection proj(4, gen);
    const tensor y0 = net.forward(x, true);
    for (parameter* p : net.parameters()) p->zero_grad();
    net.forward(x, true);
    net.backward(proj.grad(y0.shape()));

    constexpr float eps = 1e-3f;
    for (parameter* p : net.parameters()) {
        const std::size_t stride = std::max<std::size_t>(1, p->value.size() / 12);
        for (std::size_t i = 0; i < p->value.size(); i += stride) {
            const float saved = p->value[i];
            p->value[i] = saved + eps;
            const double lp = proj.loss(net.forward(x, true));
            p->value[i] = saved - eps;
            const double lm = proj.loss(net.forward(x, true));
            p->value[i] = saved;
            const double numeric = (lp - lm) / (2.0 * eps);
            EXPECT_NEAR(p->grad[i], numeric, 2e-2) << p->name << "[" << i << "]";
        }
    }
}

}  // namespace
}  // namespace fallsense::nn
