#include "nn/multi_branch.hpp"

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/misc_layers.hpp"
#include "nn/pooling.hpp"
#include "util/rng.hpp"

namespace fallsense::nn {
namespace {

std::unique_ptr<multi_branch_network> make_tiny_network(util::rng& gen) {
    std::vector<std::unique_ptr<sequential>> branches;
    for (int b = 0; b < 3; ++b) {
        auto branch = std::make_unique<sequential>();
        branch->emplace<conv1d>(3, 4, 3, gen, "b" + std::to_string(b) + ".conv");
        branch->emplace<relu>();
        branch->emplace<maxpool1d>(2);
        branch->emplace<flatten>();
        branches.push_back(std::move(branch));
    }
    auto trunk = std::make_unique<sequential>();
    // window 10 -> conv 8 -> pool 4 -> 4*4=16 per branch, 48 concat.
    trunk->emplace<dense>(48, 8, gen, true, "t.d0");
    trunk->emplace<relu>();
    trunk->emplace<dense>(8, 1, gen, false, "t.logit");
    return std::make_unique<multi_branch_network>(std::vector<std::size_t>{3, 3, 3},
                                                  std::move(branches), std::move(trunk));
}

TEST(MultiBranchTest, ForwardShape) {
    util::rng gen(1);
    auto net = make_tiny_network(gen);
    const tensor x({5, 10, 9});
    const tensor y = net->forward(x, false);
    EXPECT_EQ(y.shape(), (shape_t{5, 1}));
}

TEST(MultiBranchTest, OutputShapeHelperAgrees) {
    util::rng gen(2);
    auto net = make_tiny_network(gen);
    EXPECT_EQ(net->output_shape({10, 9}), (shape_t{1}));
}

TEST(MultiBranchTest, ChannelSplitIsFaithful) {
    // Zero out branch 0's conv weights: changing channels 0-2 must not
    // change the output; changing channels 3-5 must.
    util::rng gen(3);
    auto net = make_tiny_network(gen);
    auto& conv0 = static_cast<conv1d&>(net->branch(0).layer_at(0));
    conv0.weight().value.fill(0.0f);
    conv0.bias().value.fill(0.0f);

    util::rng dg(5);
    tensor x({1, 10, 9});
    for (float& v : x.values()) v = static_cast<float>(dg.normal());
    const tensor y_base = net->forward(x, false);

    tensor x_mod_g0 = x;
    for (std::size_t t = 0; t < 10; ++t) x_mod_g0.at({0, t, 1}) += 10.0f;
    const tensor y_g0 = net->forward(x_mod_g0, false);
    EXPECT_FLOAT_EQ(y_g0[0], y_base[0]);

    tensor x_mod_g1 = x;
    for (std::size_t t = 0; t < 10; ++t) x_mod_g1.at({0, t, 4}) += 10.0f;
    const tensor y_g1 = net->forward(x_mod_g1, false);
    EXPECT_NE(y_g1[0], y_base[0]);
}

TEST(MultiBranchTest, BackwardProducesInputShapedGradient) {
    util::rng gen(4);
    auto net = make_tiny_network(gen);
    const tensor x({2, 10, 9});
    net->forward(x, true);
    const tensor gx = net->backward(tensor({2, 1}, {1.0f, 1.0f}));
    EXPECT_EQ(gx.shape(), (shape_t{2, 10, 9}));
}

TEST(MultiBranchTest, ParameterAggregation) {
    util::rng gen(5);
    auto net = make_tiny_network(gen);
    // 3 branches x (conv w + b) + trunk (2 dense x 2) = 10 parameters.
    EXPECT_EQ(net->parameters().size(), 10u);
}

TEST(MultiBranchTest, RejectsChannelMismatch) {
    util::rng gen(6);
    auto net = make_tiny_network(gen);
    EXPECT_THROW(net->forward(tensor({1, 10, 8}), false), std::invalid_argument);
}

TEST(MultiBranchTest, GradientFlowsToBranchWeights) {
    util::rng gen(7);
    auto net = make_tiny_network(gen);
    util::rng dg(8);
    tensor x({4, 10, 9});
    for (float& v : x.values()) v = static_cast<float>(dg.normal());
    for (parameter* p : net->parameters()) p->zero_grad();
    net->forward(x, true);
    net->backward(tensor({4, 1}, {1, 1, 1, 1}));
    // Every branch conv weight should have received some gradient.
    for (std::size_t b = 0; b < 3; ++b) {
        auto& conv = static_cast<conv1d&>(net->branch(b).layer_at(0));
        EXPECT_GT(conv.weight().grad.squared_norm(), 0.0) << "branch " << b;
    }
}

TEST(MultiBranchTest, CloneForwardsBitIdenticallyAndIndependently) {
    // clone() (the serving layer's per-shard replica mechanism) must copy
    // every branch and trunk parameter exactly and share no state: the
    // clone forwards to the same bits, and mutating the source afterwards
    // leaves the clone untouched.
    util::rng gen(10);
    auto net = make_tiny_network(gen);
    util::rng dg(11);
    tensor x({3, 10, 9});
    for (float& v : x.values()) v = static_cast<float>(dg.normal());
    const tensor y_source = net->forward(x, false);

    const auto copy = net->clone();
    const tensor y_clone = copy->forward(x, false);
    ASSERT_EQ(y_clone.shape(), y_source.shape());
    for (std::size_t i = 0; i < y_source.size(); ++i) {
        EXPECT_EQ(y_clone[i], y_source[i]) << "row " << i;  // bitwise
    }

    auto& conv0 = static_cast<conv1d&>(net->branch(0).layer_at(0));
    conv0.weight().value.fill(0.0f);
    conv0.bias().value.fill(0.0f);
    const tensor y_clone_after = copy->forward(x, false);
    for (std::size_t i = 0; i < y_source.size(); ++i) {
        EXPECT_EQ(y_clone_after[i], y_source[i]) << "row " << i;
    }
}

TEST(MultiBranchTest, ConstructionValidation) {
    util::rng gen(9);
    auto trunk = std::make_unique<sequential>();
    trunk->emplace<dense>(4, 1, gen);
    EXPECT_THROW(multi_branch_network({}, {}, std::move(trunk)), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::nn
