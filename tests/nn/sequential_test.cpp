#include "nn/sequential.hpp"

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/misc_layers.hpp"
#include "util/rng.hpp"

namespace fallsense::nn {
namespace {

TEST(SequentialTest, ForwardChainsLayers) {
    util::rng gen(1);
    sequential net;
    auto& d = net.emplace<dense>(2, 2, gen);
    net.emplace<relu>();
    d.weight().value = tensor({2, 2}, {1, -1, 1, -1});
    d.bias().value = tensor({2}, {0.0f, 0.0f});
    const tensor x({1, 2}, {1.0f, 2.0f});
    const tensor y = net.forward(x, false);
    EXPECT_FLOAT_EQ(y[0], 3.0f);
    EXPECT_FLOAT_EQ(y[1], 0.0f);  // relu clipped -3
}

TEST(SequentialTest, ParametersAggregateInOrder) {
    util::rng gen(2);
    sequential net;
    net.emplace<dense>(4, 8, gen, true, "a");
    net.emplace<relu>();
    net.emplace<dense>(8, 2, gen, true, "b");
    const auto params = net.parameters();
    ASSERT_EQ(params.size(), 4u);
    EXPECT_EQ(params[0]->name, "a.weight");
    EXPECT_EQ(params[2]->name, "b.weight");
}

TEST(SequentialTest, OutputShapePropagates) {
    util::rng gen(3);
    sequential net;
    net.emplace<flatten>();
    net.emplace<dense>(12, 5, gen);
    EXPECT_EQ(net.output_shape({3, 4}), (shape_t{5}));
}

TEST(SequentialTest, ParameterCount) {
    util::rng gen(4);
    sequential net;
    net.emplace<dense>(10, 4, gen);
    EXPECT_EQ(net.parameter_count(), 10u * 4u + 4u);
}

TEST(SequentialTest, LayerAccess) {
    util::rng gen(5);
    sequential net;
    net.emplace<dense>(2, 2, gen);
    net.emplace<relu>();
    EXPECT_EQ(net.layer_count(), 2u);
    EXPECT_EQ(net.layer_at(0).kind(), layer_kind::dense);
    EXPECT_EQ(net.layer_at(1).kind(), layer_kind::relu);
    EXPECT_THROW(net.layer_at(2), std::invalid_argument);
}

TEST(SequentialTest, AddRejectsNull) {
    sequential net;
    EXPECT_THROW(net.add(nullptr), std::invalid_argument);
}

TEST(SequentialTest, SummaryMentionsLayers) {
    util::rng gen(6);
    sequential net;
    net.emplace<dense>(2, 3, gen);
    net.emplace<relu>();
    const std::string s = net.summary();
    EXPECT_NE(s.find("dense(2 -> 3)"), std::string::npos);
    EXPECT_NE(s.find("relu"), std::string::npos);
}

}  // namespace
}  // namespace fallsense::nn
