#include "nn/tensor.hpp"

#include <gtest/gtest.h>

namespace fallsense::nn {
namespace {

TEST(TensorTest, ShapeVolume) {
    EXPECT_EQ(shape_volume({}), 1u);
    EXPECT_EQ(shape_volume({3}), 3u);
    EXPECT_EQ(shape_volume({2, 3, 4}), 24u);
    EXPECT_EQ(shape_volume({2, 0, 4}), 0u);
}

TEST(TensorTest, ShapeToString) {
    EXPECT_EQ(shape_to_string({2, 20, 9}), "[2 x 20 x 9]");
    EXPECT_EQ(shape_to_string({}), "[]");
}

TEST(TensorTest, DefaultIsEmpty) {
    tensor t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.rank(), 0u);
}

TEST(TensorTest, ZeroInitialized) {
    tensor t({2, 3});
    EXPECT_EQ(t.size(), 6u);
    for (std::size_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(TensorTest, ConstructFromValues) {
    tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
    EXPECT_FLOAT_EQ(t.at({1, 0}), 3.0f);
}

TEST(TensorTest, ConstructRejectsSizeMismatch) {
    EXPECT_THROW(tensor({2, 2}, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(TensorTest, FullFills) {
    const tensor t = tensor::full({3}, 2.5f);
    EXPECT_FLOAT_EQ(t[0], 2.5f);
    EXPECT_FLOAT_EQ(t[2], 2.5f);
}

TEST(TensorTest, MultiIndexRowMajorOrder) {
    tensor t({2, 3});
    t.at({1, 2}) = 7.0f;
    EXPECT_FLOAT_EQ(t[5], 7.0f);
    t.at({0, 1}) = 3.0f;
    EXPECT_FLOAT_EQ(t[1], 3.0f);
}

TEST(TensorTest, BoundsChecking) {
    tensor t({2, 3});
    EXPECT_THROW(t[6], std::invalid_argument);
    EXPECT_THROW(t.at({2, 0}), std::invalid_argument);
    EXPECT_THROW(t.at({0}), std::invalid_argument);  // rank mismatch
    EXPECT_THROW(t.dim(2), std::invalid_argument);
}

TEST(TensorTest, ReshapePreservesData) {
    tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
    const tensor r = t.reshaped({3, 2});
    EXPECT_FLOAT_EQ(r.at({2, 1}), 6.0f);
    EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(TensorTest, ElementwiseArithmetic) {
    tensor a({2}, {1.0f, 2.0f});
    const tensor b({2}, {10.0f, 20.0f});
    const tensor sum = a + b;
    EXPECT_FLOAT_EQ(sum[1], 22.0f);
    const tensor diff = b - a;
    EXPECT_FLOAT_EQ(diff[0], 9.0f);
    a *= 3.0f;
    EXPECT_FLOAT_EQ(a[1], 6.0f);
}

TEST(TensorTest, ArithmeticShapeMismatchThrows) {
    tensor a({2});
    const tensor b({3});
    EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(TensorTest, SumAndNorm) {
    const tensor t({3}, {1.0f, -2.0f, 3.0f});
    EXPECT_DOUBLE_EQ(t.sum(), 2.0);
    EXPECT_DOUBLE_EQ(t.squared_norm(), 14.0);
}

TEST(TensorTest, FromValuesMakes1D) {
    const tensor t = tensor::from_values({1.0f, 2.0f, 3.0f});
    EXPECT_EQ(t.shape(), (shape_t{3}));
}

}  // namespace
}  // namespace fallsense::nn
