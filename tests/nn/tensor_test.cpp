#include "nn/tensor.hpp"

#include <gtest/gtest.h>

namespace fallsense::nn {
namespace {

TEST(TensorTest, ShapeVolume) {
    EXPECT_EQ(shape_volume({}), 1u);
    EXPECT_EQ(shape_volume({3}), 3u);
    EXPECT_EQ(shape_volume({2, 3, 4}), 24u);
    EXPECT_EQ(shape_volume({2, 0, 4}), 0u);
}

TEST(TensorTest, ShapeToString) {
    EXPECT_EQ(shape_to_string({2, 20, 9}), "[2 x 20 x 9]");
    EXPECT_EQ(shape_to_string({}), "[]");
}

TEST(TensorTest, DefaultIsEmpty) {
    tensor t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.rank(), 0u);
}

TEST(TensorTest, ZeroInitialized) {
    tensor t({2, 3});
    EXPECT_EQ(t.size(), 6u);
    for (std::size_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(TensorTest, ConstructFromValues) {
    tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
    EXPECT_FLOAT_EQ(t.at({1, 0}), 3.0f);
}

TEST(TensorTest, ConstructRejectsSizeMismatch) {
    EXPECT_THROW(tensor({2, 2}, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(TensorTest, FullFills) {
    const tensor t = tensor::full({3}, 2.5f);
    EXPECT_FLOAT_EQ(t[0], 2.5f);
    EXPECT_FLOAT_EQ(t[2], 2.5f);
}

TEST(TensorTest, MultiIndexRowMajorOrder) {
    tensor t({2, 3});
    t.at({1, 2}) = 7.0f;
    EXPECT_FLOAT_EQ(t[5], 7.0f);
    t.at({0, 1}) = 3.0f;
    EXPECT_FLOAT_EQ(t[1], 3.0f);
}

TEST(TensorTest, BoundsChecking) {
    tensor t({2, 3});
    EXPECT_THROW(t[6], std::invalid_argument);
    EXPECT_THROW(t.at({2, 0}), std::invalid_argument);
    EXPECT_THROW(t.at({0}), std::invalid_argument);  // rank mismatch
    EXPECT_THROW(t.dim(2), std::invalid_argument);
}

TEST(TensorTest, ReshapePreservesData) {
    tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
    const tensor r = t.reshaped({3, 2});
    EXPECT_FLOAT_EQ(r.at({2, 1}), 6.0f);
    EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(TensorTest, ElementwiseArithmetic) {
    tensor a({2}, {1.0f, 2.0f});
    const tensor b({2}, {10.0f, 20.0f});
    const tensor sum = a + b;
    EXPECT_FLOAT_EQ(sum[1], 22.0f);
    const tensor diff = b - a;
    EXPECT_FLOAT_EQ(diff[0], 9.0f);
    a *= 3.0f;
    EXPECT_FLOAT_EQ(a[1], 6.0f);
}

TEST(TensorTest, ArithmeticShapeMismatchThrows) {
    tensor a({2});
    const tensor b({3});
    EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(TensorTest, SumAndNorm) {
    const tensor t({3}, {1.0f, -2.0f, 3.0f});
    EXPECT_DOUBLE_EQ(t.sum(), 2.0);
    EXPECT_DOUBLE_EQ(t.squared_norm(), 14.0);
}

TEST(TensorTest, FromValuesMakes1D) {
    const tensor t = tensor::from_values({1.0f, 2.0f, 3.0f});
    EXPECT_EQ(t.shape(), (shape_t{3}));
}

TEST(TensorTest, ShapeInlineAndHeapRanks) {
    // shape_t stores up to six dims inline; higher ranks spill to the heap
    // transparently.  Both paths must copy, compare, and iterate alike.
    shape_t inline_shape{2, 3, 4};
    EXPECT_EQ(inline_shape.size(), 3u);
    shape_t deep;
    for (std::size_t d = 1; d <= 9; ++d) deep.push_back(d);
    EXPECT_EQ(deep.size(), 9u);
    EXPECT_EQ(deep[8], 9u);
    shape_t deep_copy = deep;
    EXPECT_EQ(deep_copy, deep);
    shape_t moved = std::move(deep_copy);
    EXPECT_EQ(moved, deep);
    std::size_t product = 1;
    for (const std::size_t d : moved) product *= d;
    EXPECT_EQ(product, 362880u);
    EXPECT_NE(moved, inline_shape);
    // Count-constructor zero-fills (the deserializer mutates in place).
    shape_t counted(4);
    EXPECT_EQ(counted.size(), 4u);
    for (std::size_t i = 0; i < counted.size(); ++i) {
        EXPECT_EQ(counted[i], 0u);
        counted[i] = i + 1;
    }
    EXPECT_EQ(counted, (shape_t{1, 2, 3, 4}));
}

TEST(TensorTest, BufferPoolRecyclesStorage) {
    // A destroyed tensor donates its buffer to the thread-local pool; the
    // next same-size acquisition reuses it (zero-filled).  Skipped when the
    // pool is disabled via FALLSENSE_TENSOR_POOL.
    const float* first = nullptr;
    {
        tensor t({16, 16});
        t.fill(3.5f);
        first = t.data();
    }
    tensor reuse({16, 16});
    if (reuse.data() == first) {
        for (std::size_t i = 0; i < reuse.size(); ++i) {
            ASSERT_EQ(reuse[i], 0.0f) << "recycled buffer must be re-zeroed";
        }
    }
    // Whether or not the buffer came back from the pool, semantics hold.
    EXPECT_EQ(reuse.size(), 256u);
}

TEST(TensorTest, MoveAndCopyKeepPoolSemantics) {
    tensor a({4, 4});
    a.fill(2.0f);
    tensor b = a;  // pooled copy
    EXPECT_NE(b.data(), a.data());
    EXPECT_EQ(b.at({1, 1}), 2.0f);
    tensor c = std::move(a);
    EXPECT_EQ(c.at({2, 2}), 2.0f);
    b = std::move(c);  // move-assign swaps; old buffer recycles via c's dtor
    EXPECT_EQ(b.at({3, 3}), 2.0f);
    tensor d;
    d = b;  // copy-assign
    EXPECT_EQ(d.at({0, 0}), 2.0f);
    d = d;  // self-assignment is a no-op
    EXPECT_EQ(d.at({0, 0}), 2.0f);
}

}  // namespace
}  // namespace fallsense::nn
