#include "mcu/deployment.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "core/models.hpp"
#include "quant/cnn_spec.hpp"
#include "util/rng.hpp"

namespace fallsense::mcu {
namespace {

quant::quantized_cnn make_model(std::uint64_t seed) {
    auto net = core::build_fallsense_cnn(20, seed);
    const quant::cnn_spec spec = quant::extract_cnn_spec(*net, 20);
    util::rng gen(seed + 1);
    nn::tensor calibration({16, 20, 9});
    for (float& v : calibration.values()) v = static_cast<float>(gen.normal());
    return quant::quantized_cnn(spec, calibration);
}

TEST(DeploymentTest, BlobStartsWithMagic) {
    const auto blob = serialize_deployment_blob(make_model(1));
    ASSERT_GE(blob.size(), 4u);
    EXPECT_EQ(std::memcmp(blob.data(), "FSQ1", 4), 0);
}

TEST(DeploymentTest, BlobHeaderEncodesDimensions) {
    const auto blob = serialize_deployment_blob(make_model(2));
    std::uint32_t time_steps = 0, channels = 0, branches = 0, trunk = 0;
    std::memcpy(&time_steps, blob.data() + 4, 4);
    std::memcpy(&channels, blob.data() + 8, 4);
    std::memcpy(&branches, blob.data() + 12, 4);
    std::memcpy(&trunk, blob.data() + 16, 4);
    EXPECT_EQ(time_steps, 20u);
    EXPECT_EQ(channels, 9u);
    EXPECT_EQ(branches, 3u);
    EXPECT_EQ(trunk, 3u);
}

TEST(DeploymentTest, BlobSizeDominatedByWeights) {
    const quant::quantized_cnn model = make_model(3);
    const auto blob = serialize_deployment_blob(model);
    EXPECT_GT(blob.size(), model.weight_bytes());
    // Metadata overhead stays small relative to weights.
    EXPECT_LT(blob.size(), model.weight_bytes() + model.bias_bytes() + 4096);
}

TEST(DeploymentTest, BlobDeterministic) {
    const auto a = serialize_deployment_blob(make_model(4));
    const auto b = serialize_deployment_blob(make_model(4));
    EXPECT_EQ(a, b);
}

TEST(DeploymentTest, LoaderRoundTripPreservesInference) {
    const quant::quantized_cnn original = make_model(6);
    const auto blob = serialize_deployment_blob(original);
    const quant::quantized_cnn loaded = deserialize_deployment_blob(blob);

    util::rng gen(99);
    nn::tensor seg({20, 9});
    for (float& v : seg.values()) v = static_cast<float>(gen.normal());
    // The loaded graph must be bit-identical in behavior.
    EXPECT_FLOAT_EQ(loaded.predict_logit(seg.values()), original.predict_logit(seg.values()));
    EXPECT_EQ(loaded.weight_bytes(), original.weight_bytes());
    EXPECT_EQ(loaded.time_steps(), original.time_steps());
    EXPECT_EQ(loaded.input_channels(), original.input_channels());
}

TEST(DeploymentTest, LoaderRejectsBadMagic) {
    auto blob = serialize_deployment_blob(make_model(7));
    blob[0] = 'X';
    EXPECT_THROW(deserialize_deployment_blob(blob), std::runtime_error);
}

TEST(DeploymentTest, LoaderRejectsTruncation) {
    const auto blob = serialize_deployment_blob(make_model(8));
    for (const std::size_t keep :
         {std::size_t{5}, std::size_t{20}, blob.size() / 2, blob.size() - 1}) {
        const std::span<const std::uint8_t> cut(blob.data(), keep);
        EXPECT_THROW(deserialize_deployment_blob(cut), std::runtime_error) << keep;
    }
}

TEST(DeploymentTest, LoaderRejectsTrailingBytes) {
    auto blob = serialize_deployment_blob(make_model(9));
    blob.push_back(0);
    EXPECT_THROW(deserialize_deployment_blob(blob), std::runtime_error);
}

TEST(DeploymentTest, LoaderRejectsImplausibleHeader) {
    auto blob = serialize_deployment_blob(make_model(10));
    // Corrupt the time-steps field with a huge value.
    const std::uint32_t huge = 0x7fffffff;
    std::memcpy(blob.data() + 4, &huge, 4);
    EXPECT_THROW(deserialize_deployment_blob(blob), std::runtime_error);
}

TEST(DeploymentTest, LoaderRejectsInconsistentChannels) {
    auto blob = serialize_deployment_blob(make_model(11));
    // Header says 9 channels; claim 8 instead.
    const std::uint32_t wrong = 8;
    std::memcpy(blob.data() + 8, &wrong, 4);
    EXPECT_THROW(deserialize_deployment_blob(blob), std::runtime_error);
}

TEST(DeploymentTest, CArrayRendering) {
    const std::vector<std::uint8_t> blob{0x01, 0xff, 0x10};
    const std::string c = render_c_array(blob, "model_blob");
    EXPECT_NE(c.find("const unsigned char model_blob[3]"), std::string::npos);
    EXPECT_NE(c.find("1, 255, 16"), std::string::npos);
    EXPECT_NE(c.find("model_blob_len = 3"), std::string::npos);
}

TEST(DeploymentTest, CArrayOfRealModelParses) {
    const auto blob = serialize_deployment_blob(make_model(5));
    const std::string c = render_c_array(blob, "net");
    // Sanity: one decimal literal per byte (count commas + 1 per line group).
    std::size_t commas = 0;
    for (const char ch : c) commas += (ch == ',') ? 1 : 0;
    EXPECT_EQ(commas, blob.size() - 1);
}

}  // namespace
}  // namespace fallsense::mcu
