#include "mcu/cost_model.hpp"

#include <gtest/gtest.h>

#include "core/models.hpp"
#include "quant/cnn_spec.hpp"

namespace fallsense::mcu {
namespace {

quant::quantized_cnn make_model(std::size_t window, std::uint64_t seed) {
    auto net = core::build_fallsense_cnn(window, seed);
    const quant::cnn_spec spec = quant::extract_cnn_spec(*net, window);
    util::rng gen(seed + 1);
    nn::tensor calibration({32, window, 9});
    for (float& v : calibration.values()) v = static_cast<float>(gen.normal());
    return quant::quantized_cnn(spec, calibration);
}

TEST(CostModelTest, InferenceLatencyInPaperEnvelope) {
    // The paper's 400 ms model runs in 4 ms +- 3 ms on the STM32F722.
    const quant::quantized_cnn model = make_model(40, 1);
    const latency_estimate est = estimate_inference(model, stm32f722());
    EXPECT_GT(est.milliseconds, 1.0);
    EXPECT_LT(est.milliseconds, 7.0);
}

TEST(CostModelTest, FusionLatencyNearPaperValue) {
    // Sensor fusion for a 40-sample window: paper reports ~3 ms.
    const latency_estimate est = estimate_fusion(40, stm32f722());
    EXPECT_GT(est.milliseconds, 2.0);
    EXPECT_LT(est.milliseconds, 4.0);
}

TEST(CostModelTest, LatencyScalesWithWindow) {
    const quant::quantized_cnn small = make_model(20, 2);
    const quant::quantized_cnn large = make_model(40, 2);
    const double t_small = estimate_inference(small, stm32f722()).milliseconds;
    const double t_large = estimate_inference(large, stm32f722()).milliseconds;
    EXPECT_GT(t_large, t_small);
}

TEST(CostModelTest, LatencyScalesInverselyWithClock) {
    const quant::quantized_cnn model = make_model(40, 3);
    device_spec slow = stm32f722();
    slow.clock_hz /= 2.0;
    const double t_fast = estimate_inference(model, stm32f722()).milliseconds;
    const double t_slow = estimate_inference(model, slow).milliseconds;
    EXPECT_NEAR(t_slow, 2.0 * t_fast, 1e-9);
}

TEST(CostModelTest, FusionScalesWithSamples) {
    const double t20 = estimate_fusion(20, stm32f722()).milliseconds;
    const double t40 = estimate_fusion(40, stm32f722()).milliseconds;
    EXPECT_NEAR(t40, 2.0 * t20, 1e-9);
    EXPECT_THROW(estimate_fusion(0, stm32f722()), std::invalid_argument);
}

TEST(CostModelTest, JitterSimulationStatsSane) {
    const quant::quantized_cnn model = make_model(40, 4);
    util::rng gen(42);
    const latency_stats stats = simulate_latency(model, stm32f722(), 2000, gen);
    EXPECT_EQ(stats.samples, 2000u);
    const double base = estimate_inference(model, stm32f722()).milliseconds;
    EXPECT_GT(stats.mean_ms, base * 0.8);   // jitter only adds on average
    EXPECT_GT(stats.stddev_ms, 0.3);        // visible spread ...
    EXPECT_LT(stats.stddev_ms, 4.0);        // ... but bounded
    EXPECT_LE(stats.min_ms, stats.mean_ms);
    EXPECT_GE(stats.max_ms, stats.mean_ms);
}

TEST(CostModelTest, JitterDeterministicPerSeed) {
    const quant::quantized_cnn model = make_model(20, 5);
    util::rng g1(7), g2(7);
    const latency_stats a = simulate_latency(model, stm32f722(), 100, g1);
    const latency_stats b = simulate_latency(model, stm32f722(), 100, g2);
    EXPECT_DOUBLE_EQ(a.mean_ms, b.mean_ms);
    EXPECT_DOUBLE_EQ(a.max_ms, b.max_ms);
}

TEST(CostModelTest, ValidatesIterationCount) {
    const quant::quantized_cnn model = make_model(20, 6);
    util::rng gen(1);
    EXPECT_THROW(simulate_latency(model, stm32f722(), 0, gen), std::invalid_argument);
}

}  // namespace
}  // namespace fallsense::mcu
