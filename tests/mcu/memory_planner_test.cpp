#include "mcu/memory_planner.hpp"

#include <gtest/gtest.h>

#include "core/models.hpp"
#include "quant/cnn_spec.hpp"
#include "util/rng.hpp"

namespace fallsense::mcu {
namespace {

quant::quantized_cnn make_model(std::size_t window, std::uint64_t seed) {
    auto net = core::build_fallsense_cnn(window, seed);
    const quant::cnn_spec spec = quant::extract_cnn_spec(*net, window);
    util::rng gen(seed + 1);
    nn::tensor calibration({32, window, 9});
    for (float& v : calibration.values()) v = static_cast<float>(gen.normal());
    return quant::quantized_cnn(spec, calibration);
}

TEST(MemoryPlannerTest, FlashNearPaperFigure) {
    // Paper: 67.03 KiB model flash for the 400 ms configuration.
    const quant::quantized_cnn model = make_model(40, 1);
    const flash_report flash = plan_flash(model);
    EXPECT_GT(flash.total_kib(), 55.0);
    EXPECT_LT(flash.total_kib(), 80.0);
}

TEST(MemoryPlannerTest, RamNearPaperFigure) {
    // Paper: 16.87 KiB total RAM.
    const quant::quantized_cnn model = make_model(40, 2);
    const ram_report ram = plan_ram(model);
    EXPECT_GT(ram.total_kib(), 12.0);
    EXPECT_LT(ram.total_kib(), 22.0);
}

TEST(MemoryPlannerTest, TotalsAreComponentSums) {
    const quant::quantized_cnn model = make_model(40, 3);
    const flash_report flash = plan_flash(model);
    EXPECT_EQ(flash.total_bytes,
              flash.weight_bytes + flash.bias_bytes + flash.metadata_bytes);
    const ram_report ram = plan_ram(model);
    EXPECT_EQ(ram.total_bytes, ram.activation_arena_bytes + ram.input_staging_bytes +
                                   ram.runtime_bytes);
}

TEST(MemoryPlannerTest, DeploymentFitsStm32F722) {
    const quant::quantized_cnn model = make_model(40, 4);
    const deployment_plan plan = plan_deployment(model, stm32f722());
    EXPECT_TRUE(plan.fits_flash);
    EXPECT_TRUE(plan.fits_ram);
}

TEST(MemoryPlannerTest, OverBudgetDetected) {
    const quant::quantized_cnn model = make_model(40, 5);
    device_spec tiny_device = stm32f722();
    tiny_device.flash_budget_bytes = 1024;
    tiny_device.ram_budget_bytes = 1024;
    const deployment_plan plan = plan_deployment(model, tiny_device);
    EXPECT_FALSE(plan.fits_flash);
    EXPECT_FALSE(plan.fits_ram);
    EXPECT_NE(plan.summary().find("OVER BUDGET"), std::string::npos);
}

TEST(MemoryPlannerTest, SmallerWindowSmallerFootprint) {
    const quant::quantized_cnn small = make_model(20, 6);
    const quant::quantized_cnn large = make_model(40, 6);
    EXPECT_LT(plan_flash(small).total_bytes, plan_flash(large).total_bytes);
    EXPECT_LT(plan_ram(small).total_bytes, plan_ram(large).total_bytes);
}

TEST(MemoryPlannerTest, SummaryMentionsBothBudgets) {
    const quant::quantized_cnn model = make_model(40, 7);
    const deployment_plan plan = plan_deployment(model, stm32f722());
    const std::string s = plan.summary();
    EXPECT_NE(s.find("flash:"), std::string::npos);
    EXPECT_NE(s.find("ram:"), std::string::npos);
    EXPECT_NE(s.find("[fits]"), std::string::npos);
}

TEST(MemoryPlannerTest, TensorCountMatchesTopology) {
    const quant::quantized_cnn model = make_model(40, 8);
    // 1 input + 3 branches * 4 + 3 dense * 3 = 22.
    EXPECT_EQ(deployed_tensor_count(model), 22u);
}

}  // namespace
}  // namespace fallsense::mcu
